"""E3 — linear-size quorums are overkill (paper §3).

Reproduces: at N=100, p=1%, the worst-case view-change trigger quorum is
f+1 = 34 nodes, but a *sampled* quorum of five already contains at least
one correct node with ten nines of probability.
"""

from __future__ import annotations

import pytest

from repro.analysis.result import nines
from repro.quorums.committee import (
    prob_committee_contains_correct,
    required_committee_size,
)
from repro.planner.quorum_sizing import size_quorums

from conftest import print_table

N = 100
P_FAIL = 0.01
WORST_CASE_TRIGGER = 34  # f + 1 at N = 100 (paper §3)


def _sweep_sizes():
    return {k: prob_committee_contains_correct(P_FAIL, k) for k in range(1, 12)}


def test_sampled_trigger_quorum(benchmark):
    table = benchmark(_sweep_sizes)
    rows = [[str(k), f"{nines(p):.1f} nines"] for k, p in table.items()]
    print_table(
        f"E3: P(sampled quorum of k contains a correct node), N={N}, p={P_FAIL:.0%}",
        ["k", "reliability"],
        rows,
    )
    # The paper's claim: 5 nodes give ten nines, vs the f+1=34 rule.
    assert nines(table[5]) == pytest.approx(10.0)
    assert required_committee_size(P_FAIL, 10.0) == 5
    assert required_committee_size(P_FAIL, 10.0) < WORST_CASE_TRIGGER

    sizing = size_quorums(N, P_FAIL, target_nines=10.0)
    print(f"planner recommendation: {sizing.describe()}")
    assert sizing.view_change_trigger == 5
