"""P8 — the query daemon under concurrent load: coalescing and cache reuse.

Two workloads against a real :class:`repro.serve.BackgroundServer` over
loopback HTTP, at client concurrency 1 / 16 / 64:

* **burst** — every client in a round POSTs the *identical* campaign
  query while it is still in flight.  Single-flight coalescing turns the
  round into one engine execution fanned out to all clients, so
  completed queries/sec scales with the client count (the acceptance
  gate: ≥ 5x at concurrency 16 vs 1).  The engine cache-miss counter
  proves exactly one execution per round and the coalesced counter
  accounts for every other client.
* **steady** — clients hammer one warm (memoised) query.  Every answer
  is a cache hit; throughput gains here come only from overlapping
  request handling in a GIL-bound loop, so the scaling is modest — the
  honest contrast that shows *where* the daemon's concurrency win lives.

Emits ``BENCH_serve.json`` at the repo root.  Run as pytest
(``pytest benchmarks/bench_serve.py -s``) or directly
(``python benchmarks/bench_serve.py``); both write the JSON.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from pathlib import Path

import pytest

from repro.engine import QuerySet, Scenario, SimulationQuery
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec
from repro.serve import BackgroundServer, ServiceConfig

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_serve.json"

CONCURRENCIES = (1, 16, 64)
BURST_ROUNDS = 6
STEADY_SECONDS = 1.5
SPEEDUP_TARGET = 5.0

STEADY_PAYLOAD = json.dumps(
    {"grid": {"protocols": ["raft"], "sizes": [5], "probabilities": [0.01]}}
)


def _campaign_payload(seed: int) -> str:
    """One moderately expensive campaign (~0.2 s), unique per seed."""
    query = SimulationQuery(
        Scenario(
            spec=RaftSpec(3),
            fleet=uniform_fleet(3, 0.01),
            seed=seed,
            label=f"burst-{seed}",
        ),
        replicas=16,
        duration=5.0,
        commands=2,
    )
    return QuerySet.build([query]).to_json()


def _post(connection: http.client.HTTPConnection, payload: str) -> dict:
    connection.request("POST", "/v1/query", body=payload)
    response = connection.getresponse()
    return json.loads(response.read())


def _metrics(port: int) -> dict:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        connection.request("GET", "/metrics")
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def measure_burst(port: int, clients: int, *, seed_base: int) -> dict:
    """Rounds of identical in-flight campaign queries; coalescing proof.

    Each round uses a fresh seed (fresh cache key), so steady state is
    one engine execution plus ``clients - 1`` coalesced joins per round.
    """
    before = _metrics(port)
    connections = [
        http.client.HTTPConnection("127.0.0.1", port, timeout=120)
        for _ in range(clients)
    ]
    completed = [0] * clients
    barrier = threading.Barrier(clients + 1)

    def worker(slot: int) -> None:
        for round_ in range(BURST_ROUNDS):
            payload = _campaign_payload(seed_base + round_)
            barrier.wait(timeout=120)  # the whole fleet fires together
            body = _post(connections[slot], payload)
            assert body["count"] == 1
            completed[slot] += 1

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    start = time.perf_counter()
    for _ in range(BURST_ROUNDS):
        barrier.wait(timeout=120)
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    for connection in connections:
        connection.close()
    after = _metrics(port)

    executions = after["engine_cache"]["misses"] - before["engine_cache"]["misses"]
    coalesced = after["coalesced_total"] - before["coalesced_total"]
    queries = sum(completed)
    assert queries == clients * BURST_ROUNDS
    return {
        "clients": clients,
        "rounds": BURST_ROUNDS,
        "queries": queries,
        "seconds": elapsed,
        "queries_per_second": queries / elapsed,
        "engine_executions": executions,
        "coalesced": coalesced,
    }


def measure_steady(port: int, clients: int) -> dict:
    """Sustained repeats of one warm query — pure memo-hit traffic."""
    before = _metrics(port)
    completed = [0] * clients
    deadline = time.perf_counter() + STEADY_SECONDS

    def worker(slot: int) -> None:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            while time.perf_counter() < deadline:
                body = _post(connection, STEADY_PAYLOAD)
                assert body["cache_hits"] == 1
                completed[slot] += 1
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, args=(slot,)) for slot in range(clients)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    after = _metrics(port)
    queries = sum(completed)
    return {
        "clients": clients,
        "queries": queries,
        "seconds": elapsed,
        "queries_per_second": queries / elapsed,
        "cache_hits": after["engine_cache"]["hits"] - before["engine_cache"]["hits"],
    }


def measure_all() -> dict:
    with BackgroundServer(ServiceConfig(port=0, executor_workers=8)) as server:
        port = server.port
        # Warm the steady query (and the import paths) off the clock.
        warm = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        _post(warm, STEADY_PAYLOAD)
        _post(warm, _campaign_payload(9_000))
        warm.close()

        burst_rows = [
            measure_burst(port, clients, seed_base=10_000 + 100 * index)
            for index, clients in enumerate(CONCURRENCIES)
        ]
        steady_rows = [measure_steady(port, clients) for clients in CONCURRENCIES]
        final_metrics = _metrics(port)

    by_clients = {row["clients"]: row for row in burst_rows}
    speedup = (
        by_clients[16]["queries_per_second"] / by_clients[1]["queries_per_second"]
    )
    steady_by_clients = {row["clients"]: row for row in steady_rows}
    payload = {
        "burst": burst_rows,
        "burst_speedup_16_vs_1": speedup,
        "speedup_target": SPEEDUP_TARGET,
        "steady": steady_rows,
        "steady_speedup_16_vs_1": (
            steady_by_clients[16]["queries_per_second"]
            / steady_by_clients[1]["queries_per_second"]
        ),
        "engine_cache_hit_rate": final_metrics["engine_cache"]["hit_rate"],
        "coalescing_single_execution": all(
            row["engine_executions"] == row["rounds"]
            and row["coalesced"] == (row["clients"] - 1) * row["rounds"]
            for row in burst_rows
        ),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_report(payload: dict) -> None:
    print_table(
        "P8: burst workload — identical in-flight campaign queries "
        "(single-flight coalescing)",
        ["clients", "queries", "q/s", "executions", "coalesced"],
        [
            [
                str(row["clients"]),
                str(row["queries"]),
                f"{row['queries_per_second']:.1f}",
                str(row["engine_executions"]),
                str(row["coalesced"]),
            ]
            for row in payload["burst"]
        ],
    )
    print_table(
        "P8: steady workload — repeated warm cache-hit query",
        ["clients", "queries", "q/s"],
        [
            [
                str(row["clients"]),
                str(row["queries"]),
                f"{row['queries_per_second']:.1f}",
            ]
            for row in payload["steady"]
        ],
    )
    print(
        f"\nburst speedup 16 vs 1: {payload['burst_speedup_16_vs_1']:.1f}x "
        f"(target ≥ {payload['speedup_target']:.0f}x); "
        f"steady speedup 16 vs 1: {payload['steady_speedup_16_vs_1']:.1f}x; "
        f"engine cache hit rate {payload['engine_cache_hit_rate']:.3f}"
    )


@pytest.mark.bench
def test_serve_throughput_and_coalescing():
    payload = measure_all()
    _print_report(payload)
    assert payload["coalescing_single_execution"], (
        "identical in-flight queries must execute exactly once per round"
    )
    assert payload["burst_speedup_16_vs_1"] >= SPEEDUP_TARGET, (
        f"concurrency-16 repeated-query throughput is only "
        f"{payload['burst_speedup_16_vs_1']:.1f}x the single-client rate "
        f"(target ≥ {SPEEDUP_TARGET:.0f}x)"
    )


def main() -> None:
    payload = measure_all()
    _print_report(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
