"""E1 — engine throughput: one batched front door vs per-scenario loops.

Times a 500-scenario grid — mixed RaftSpec/PBFTSpec (plus the rest of the
symmetric protocol zoo) over shared cluster sizes, every protocol asked
about the *same* mixed-fault deployment per grid cell — through
:meth:`ReliabilityEngine.run` against two per-scenario alternatives:

* the public ``analyze`` loop (what a consumer writes without the engine),
* the raw scalar ``counting_reliability`` loop (the pre-engine dispatch).

The engine plans one joint-count DP per *fleet* (shared across all
protocols of that size) and reduces each spec's verdict masks against it,
so both loops recompute work the engine shares.  Results are asserted
bit-identical.  A second submission of the same grid measures the memo
cache.  Emits ``BENCH_engine.json`` at the repo root.

Run as pytest (``pytest benchmarks/bench_engine.py -s``) or directly
(``python benchmarks/bench_engine.py``); both write the JSON.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis import analyze
from repro.analysis.counting import counting_reliability
from repro.engine import ReliabilityEngine, ScenarioSet, default_engine

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_engine.json"

PROTOCOLS = ("raft", "pbft", "benor", "byz-benor")
SIZES = (11, 13, 15, 17)
PROBABILITIES = tuple(round(0.002 + 0.004 * i, 6) for i in range(25))
REPEATS = 3


def build_grid() -> ScenarioSet:
    """500 scenarios: 5 protocols × 4 shared sizes × 25 probabilities.

    ``byzantine_fraction`` makes every protocol share one mixed-fault
    fleet per (size, probability) cell — the "same deployment, every
    protocol" question the engine batches into one DP per fleet.
    """
    grid = ScenarioSet.grid(
        protocols=PROTOCOLS + ("flexraft5",),
        sizes=SIZES,
        probabilities=PROBABILITIES,
        byzantine_fraction=0.25,
    )
    assert len(grid) == 500
    return grid


def _register_flexraft5() -> None:
    """A flexible-quorum Raft variant for the grid (n -> q_per=maj+1)."""
    from repro.engine import register_spec_codec
    from repro.protocols.raft import FlexibleRaftSpec, majority

    register_spec_codec(
        "flexraft5",
        FlexibleRaftSpec,
        lambda n: FlexibleRaftSpec(n, min(n, majority(n) + 1), majority(n)),
        lambda spec: {"n": spec.n},
    )


def _warm(grid: ScenarioSet) -> None:
    """Verdict masks and NumPy dispatch paths, off the clock for all paths."""
    seen: set[int] = set()
    for scenario in grid:
        if id(scenario.spec) not in seen:
            seen.add(id(scenario.spec))
            scenario.spec.verdict_masks()
    ReliabilityEngine().run(ScenarioSet(grid.scenarios[:5]))


def _best(fn, repeats: int = REPEATS):
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, value
    return best_seconds, result


def measure_grid() -> dict:
    _register_flexraft5()
    grid = build_grid()
    _warm(grid)

    def analyze_loop():
        default_engine().cache_clear()
        return [analyze(s.spec, s.fleet) for s in grid]

    def scalar_loop():
        return [counting_reliability(s.spec, s.fleet) for s in grid]

    def engine_run():
        return ReliabilityEngine().run(grid).results

    analyze_seconds, analyze_results = _best(analyze_loop)
    scalar_seconds, scalar_results = _best(scalar_loop)
    engine_seconds, engine_results = _best(engine_run)

    assert engine_results == analyze_results == scalar_results, (
        "engine results must be bit-identical to the per-scenario loops"
    )

    # Memo cache: resubmitting the identical grid is answered from cache.
    engine = ReliabilityEngine()
    engine.run(grid)
    start = time.perf_counter()
    cached = engine.run(grid)
    cached_seconds = time.perf_counter() - start
    assert cached.results == engine_results
    assert cached.cache_hits == len(grid)

    return {
        "scenarios": len(grid),
        "protocols": list(PROTOCOLS) + ["flexraft5"],
        "sizes": list(SIZES),
        "probabilities": len(PROBABILITIES),
        "shared_fleets": True,
        "analyze_loop_seconds": analyze_seconds,
        "analyze_loop_scenarios_per_sec": len(grid) / analyze_seconds,
        "scalar_loop_seconds": scalar_seconds,
        "scalar_loop_scenarios_per_sec": len(grid) / scalar_seconds,
        "engine_seconds": engine_seconds,
        "engine_scenarios_per_sec": len(grid) / engine_seconds,
        "speedup_vs_analyze_loop": analyze_seconds / engine_seconds,
        "speedup_vs_scalar_loop": scalar_seconds / engine_seconds,
        "cached_rerun_seconds": cached_seconds,
        "cached_rerun_scenarios_per_sec": len(grid) / cached_seconds,
        "bit_identical": True,
    }


def _merge_json(section: str, payload: dict) -> None:
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.bench
def test_engine_grid_speedup():
    result = measure_grid()
    _merge_json("scenario_grid", result)
    print_table(
        f"E1: {result['scenarios']}-scenario grid, protocol zoo, sizes {SIZES}",
        ["path", "scenarios/sec"],
        [
            ["analyze() loop", f"{result['analyze_loop_scenarios_per_sec']:,.0f}"],
            ["scalar counting loop", f"{result['scalar_loop_scenarios_per_sec']:,.0f}"],
            ["engine batched run", f"{result['engine_scenarios_per_sec']:,.0f}"],
            ["engine cached rerun", f"{result['cached_rerun_scenarios_per_sec']:,.0f}"],
            ["speedup vs analyze", f"{result['speedup_vs_analyze_loop']:.1f}x"],
            ["speedup vs scalar", f"{result['speedup_vs_scalar_loop']:.1f}x"],
        ],
    )
    assert result["speedup_vs_analyze_loop"] >= 5.0, (
        f"engine only {result['speedup_vs_analyze_loop']:.1f}x over the analyze loop"
    )


def main() -> None:
    result = measure_grid()
    _merge_json("scenario_grid", result)
    print(json.dumps(json.loads(JSON_PATH.read_text()), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
