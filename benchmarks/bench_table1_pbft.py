"""T1 — reproduce Table 1: PBFT reliability at uniform p_u = 1%.

Paper row format: N, |Qeq|, |Qper|, |Qvc|, |Qvc_t|, Safe %, Live %, S&L %.
Every failure is treated as Byzantine (worst case), matching the paper.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability
from repro.faults.mixture import byzantine_fleet
from repro.protocols.pbft import PBFTSpec

from conftest import print_table

SIZES = (4, 5, 7, 8)
P_FAIL = 0.01

#: The paper's printed values, (safe%, live%) at its own precision.
PAPER = {
    4: (99.94, 99.94),
    5: (99.9990, 99.90),
    7: (99.997, 99.997),
    8: (99.99993, 99.995),
}


def _compute_table():
    rows = []
    for n in SIZES:
        spec = PBFTSpec(n)
        result = counting_reliability(spec, byzantine_fleet(n, P_FAIL))
        rows.append((n, spec, result))
    return rows


def test_table1_reproduction(benchmark):
    rows = benchmark(_compute_table)
    printable = []
    for n, spec, result in rows:
        printable.append(
            [
                str(n),
                str(spec.q_eq),
                str(spec.q_per),
                str(spec.q_vc),
                str(spec.q_vc_t),
                format_probability(result.safe.value),
                format_probability(result.live.value),
                format_probability(result.safe_and_live.value),
            ]
        )
    print_table(
        "Table 1: PBFT reliability, uniform p_u = 1% (paper vs measured)",
        ["N", "|Qeq|", "|Qper|", "|Qvc|", "|Qvc_t|", "Safe %", "Live %", "Safe and Live %"],
        printable,
    )
    for n, _spec, result in rows:
        paper_safe, paper_live = PAPER[n]
        assert result.safe.value * 100 == pytest.approx(paper_safe, abs=0.005)
        assert result.live.value * 100 == pytest.approx(paper_live, abs=0.005)
        # S&L column equals Live everywhere in Table 1.
        assert result.safe_and_live.value == pytest.approx(result.live.value, abs=1e-12)
