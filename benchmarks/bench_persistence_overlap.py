"""E6 — durability quorums are too conservative (paper §4).

Reproduces the 100-node example: with |Q_per| = 10 and p = 10% there is a
~50% chance that 10 or more nodes fail, but only a one-in-ten-billion
chance that the failures cover the most recently formed persistence
quorum.  Verified three ways: closed form, importance sampling, and the
binomial tail.
"""

from __future__ import annotations

import pytest

from repro.analysis.importance import quorum_wipeout_probability
from repro.quorums.intersection import (
    prob_failure_count_reaches,
    prob_fixed_quorum_wiped_out,
)

from conftest import print_table

N = 100
Q_PER = 10
P_FAIL = 0.10


def _closed_forms():
    p_many_failures = prob_failure_count_reaches(N, P_FAIL, Q_PER)
    p_wipeout = prob_fixed_quorum_wiped_out([P_FAIL] * Q_PER)
    return p_many_failures, p_wipeout


def test_persistence_overlap_closed_form(benchmark):
    p_many_failures, p_wipeout = benchmark(_closed_forms)
    print_table(
        "E6: N=100, |Qper|=10, p=10% (paper: ~50% and 1e-10)",
        ["event", "probability"],
        [
            [">= |Qper| failures occur", f"{p_many_failures:.3f}"],
            ["failures cover the formed quorum", f"{p_wipeout:.2e}"],
            ["ratio (conservatism of f-threshold view)", f"{p_many_failures / p_wipeout:.2e}"],
        ],
    )
    assert p_many_failures == pytest.approx(0.549, abs=0.01)
    assert p_wipeout == pytest.approx(1e-10)
    # The gap the paper highlights: nine-plus orders of magnitude.
    assert p_many_failures / p_wipeout > 1e9


def test_importance_sampler_agrees(benchmark):
    result = benchmark(
        quorum_wipeout_probability, N, Q_PER, P_FAIL, trials=200_000, seed=0
    )
    print(
        f"\nE6b: importance-sampled wipe-out = {result.violation.value:.2e} "
        f"(ESS {result.effective_sample_size:.0f}; closed form 1e-10)"
    )
    assert result.violation.value == pytest.approx(1e-10, rel=0.2)
