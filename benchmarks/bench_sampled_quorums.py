"""E8 — sampled persistence quorums, executed (paper §4).

The paper's most radical suggestion: replace majority persistence quorums
with small random samples, accepting a ``p^k`` per-slot durability risk in
exchange for ``k``-copy replication cost.  This bench runs the
:mod:`repro.sim.sampled` protocol and compares:

* measured per-slot durability under window failures vs the ``1 - p^k``
  closed form (the paper's 1e-10 example scaled to measurable rates);
* replication cost (messages per committed slot) vs majority replication.
"""

from __future__ import annotations

import pytest

from repro._rng import as_generator
from repro.quorums.committee import prob_committee_all_faulty
from repro.sim import Cluster
from repro.sim.sampled import sampled_quorum_factory, slot_survivors

from conftest import print_table

N = 20
K = 3
P_FAIL = 0.3  # inflated so a few hundred runs measure the loss rate
SLOTS_PER_RUN = 5
RUNS = 120


def _measure_durability():
    rng = as_generator(123)
    slots_total = 0
    slots_lost = 0
    for run in range(RUNS):
        cluster = Cluster(N, sampled_quorum_factory(quorum_size=K), seed=1000 + run)
        cluster.start()
        for i in range(SLOTS_PER_RUN):
            cluster.submit(f"r{run}-v{i}", at=0.2 + 0.05 * i)
        cluster.run_until(2.0)
        leader = cluster.nodes[0]
        committed_slots = list(leader.committed)
        # Window failures: each node dies independently with P_FAIL.
        victims = [node for node in range(N) if rng.random() < P_FAIL]
        for node in victims:
            cluster.nodes[node].crash()
        cluster.run_until(2.5)
        for slot in committed_slots:
            slots_total += 1
            if not slot_survivors(cluster, slot):
                slots_lost += 1
    return slots_total, slots_lost


def test_sampled_quorum_durability(benchmark):
    slots_total, slots_lost = benchmark.pedantic(_measure_durability, rounds=1, iterations=1)
    measured = slots_lost / slots_total
    predicted = prob_committee_all_faulty(P_FAIL, K)
    print_table(
        f"E8: sampled-quorum durability, N={N}, k={K}, p={P_FAIL:.0%} "
        f"({slots_total} committed slots)",
        ["quantity", "value"],
        [
            ["predicted loss (p^k)", f"{predicted:.4f}"],
            ["measured loss", f"{measured:.4f}"],
            ["paper's §4 operating point (p=10%, k=10)", f"{0.1**10:.0e}"],
        ],
    )
    # Binomial noise bound: ~600 slots at p≈2.7% -> stderr ≈ 0.7%.
    assert measured == pytest.approx(predicted, abs=0.02)


def test_replication_cost_vs_majority(benchmark):
    def measure():
        cluster = Cluster(N, sampled_quorum_factory(quorum_size=K), seed=77)
        cluster.start()
        commands = [f"c{i}" for i in range(20)]
        for i, command in enumerate(commands):
            cluster.submit(command, at=0.2 + 0.05 * i)
        cluster.run_until(4.0)
        committed = len(cluster.nodes[0].committed)
        return cluster.network.messages_sent / max(committed, 1)

    messages_per_slot = benchmark(measure)
    majority_copies = N // 2 + 1
    print(
        f"\nE8b: {messages_per_slot:.1f} messages/slot with k={K} samples "
        f"(majority replication needs >= {2 * majority_copies} for copies+acks alone)"
    )
    # Appends+acks 2k, commit notices N-1, retry slack — still far below
    # the 2*(majority) + N a majority protocol pays at N=20.
    assert messages_per_slot < 2 * majority_copies + N
