"""P7 — contract checker throughput: full-repo lint must stay under 3 s.

The self-lint test (``tests/test_contracts_self.py``) runs inside tier-1,
so the checker's wall time is paid on every ``pytest -x -q``; this
benchmark pins that cost.  It times a full lint of ``src/repro`` (all
rules, allowlists and suppressions applied, baseline compared) and a
rules-split pass to show where the time goes, then gates the end-to-end
wall time at :data:`TARGET_SECONDS`.

Emits ``BENCH_contracts.json`` at the repo root.  Run as pytest
(``pytest benchmarks/bench_contracts.py -s``) or directly
(``python benchmarks/bench_contracts.py``); both write the JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.contracts import lint_paths, registered_rules

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_contracts.json"
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "tests" / "data" / "contracts_baseline.json"

REPEATS = 5
# Raised from 2.0 when the four concurrency families (lock-guard,
# lock-order, async-hygiene, journal-durability) joined the pass — the
# per_rule split in BENCH_contracts.json shows where the budget goes.
TARGET_SECONDS = 3.0


def _best(fn, repeats: int = REPEATS):
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, value
    return best_seconds, result


def measure_all() -> dict:
    # Warm rule registration and the filesystem cache off the clock.
    warm = lint_paths([PACKAGE_ROOT], baseline=BASELINE)

    full_seconds, full = _best(lambda: lint_paths([PACKAGE_ROOT], baseline=BASELINE))
    per_rule = []
    for rule_id in sorted(registered_rules()):
        seconds, result = _best(
            lambda rid=rule_id: lint_paths([PACKAGE_ROOT], rules=[rid]), repeats=3
        )
        per_rule.append(
            {
                "rule": rule_id,
                "seconds": seconds,
                "findings": len(result.findings),
            }
        )
    payload = {
        "cpu_count": os.cpu_count() or 1,
        "files_checked": full.files_checked,
        "target_seconds": TARGET_SECONDS,
        "full_lint_seconds": full_seconds,
        "new_findings": len(full.new),
        "baselined_findings": len(full.baselined),
        "per_rule": per_rule,
        "clean": full.ok,
        "consistent_with_warm_run": [f.render() for f in full.findings]
        == [f.render() for f in warm.findings],
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_report(payload: dict) -> None:
    print_table(
        f"P7: full lint of src/repro — {payload['files_checked']} files, "
        f"{payload['new_findings']} new finding(s) "
        f"(target < {payload['target_seconds']:.1f}s)",
        ["pass", "seconds", "findings"],
        [["all rules", f"{payload['full_lint_seconds']:.3f}", str(payload["new_findings"])]]
        + [
            [row["rule"], f"{row['seconds']:.3f}", str(row["findings"])]
            for row in payload["per_rule"]
        ],
    )


@pytest.mark.bench
def test_contract_lint_wall_time():
    payload = measure_all()
    _print_report(payload)
    assert payload["clean"], "lint of src/repro is not clean — fix before timing"
    assert payload["consistent_with_warm_run"], "lint findings not deterministic"
    assert payload["full_lint_seconds"] < TARGET_SECONDS, (
        f"full-repo lint took {payload['full_lint_seconds']:.2f}s — over the "
        f"{TARGET_SECONDS:.1f}s budget tier-1 pays on every run"
    )


def main() -> None:
    payload = measure_all()
    _print_report(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
