"""I1 — Fault-plan campaign throughput: plans vs the crash-only baseline.

Three campaign workloads through the engine's ``SimulationQuery`` front
door, measured as campaigns/sec (whole audited campaigns, not replicas):

* **crash-only** — the default (plan-free) campaigns, the PR 4 baseline
  (one Raft-5 and one PBFT-4 deployment);
* **adversarial** — the PBFT-4 deployment under an embedded fault plan
  with a Byzantine adversary mix (Theorem 3.1 primary + accomplice),
  overhead reported against the PBFT crash-only baseline;
* **outage** — the Raft-5 deployment under a plan with a healed
  partition, a loss burst and a repaired correlated burst (the
  declarative outage replay), overhead against the Raft baseline.

Every workload is additionally run under a 4-worker thread policy and a
2-worker process policy, and the verdict counts are **asserted
identical** to the serial path — the jobs-invariance contract of the
per-replica spawned streams.  (The CI container is single-core, so
parallel ratios are recorded, not asserted.)

Emits ``BENCH_injection.json`` at the repo root.  Run as pytest
(``pytest benchmarks/bench_injection.py -s``) or directly
(``python benchmarks/bench_injection.py``); both write the JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import (
    ExecutionPolicy,
    ReliabilityEngine,
    Scenario,
    SimulationQuery,
)
from repro.faults.mixture import uniform_fleet
from repro.injection import (
    Adversary,
    CorrelatedBurst,
    FaultPlan,
    LossBurst,
    PartitionEvent,
)
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_injection.json"

REPLICAS = 16
DURATION = 6.0
COMMANDS = 2
SEED = 2026
REPEATS = 2

POLICIES = (
    ("serial", None),
    ("thread_jobs4", ExecutionPolicy(mode="thread", jobs=4)),
    ("process_jobs2", ExecutionPolicy(mode="process", jobs=2)),
)


def _queries() -> dict[str, SimulationQuery]:
    raft = Scenario(
        spec=RaftSpec(5), fleet=uniform_fleet(5, 0.15), seed=SEED, label="raft-5"
    )
    pbft = Scenario(
        spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.1), seed=SEED, label="pbft-4"
    )
    outage_plan = FaultPlan(
        events=(
            PartitionEvent(groups=((0, 1), (2, 3, 4)), at=2.0, heal_at=3.0),
            LossBurst(at=3.5, until=4.5, drop_probability=0.2),
            CorrelatedBurst(
                members=(0, 1), at=4.0, probability=0.5, mean_time_to_repair=1.0
            ),
        ),
        mean_time_to_repair=2.0,
    )
    adversary_plan = FaultPlan(adversary=Adversary(nodes=(0, 2)))
    common = dict(replicas=REPLICAS, duration=DURATION, commands=COMMANDS)
    # Overheads compare same-deployment pairs: outage vs the Raft crash-only
    # baseline, adversarial vs the PBFT one (Raft-vs-PBFT sim cost would
    # otherwise dominate the ratio).
    return {
        "crash_only": SimulationQuery(raft, **common),
        "crash_only_pbft": SimulationQuery(pbft, **common),
        "adversarial": SimulationQuery(pbft, faults=adversary_plan, **common),
        "outage": SimulationQuery(raft, faults=outage_plan, **common),
    }


def _counts(value) -> tuple[int, int, int, int]:
    return (
        value.safety_violations,
        value.liveness_violations,
        value.predicate_mismatches,
        value.partition_era_liveness_violations,
    )


def _best(fn, repeats: int = REPEATS):
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, value
    return best_seconds, result


def measure() -> dict:
    results: dict = {
        "replicas": REPLICAS,
        "duration": DURATION,
        "cpu_count": os.cpu_count(),
        "workloads": {},
    }
    for name, query in _queries().items():
        row: dict = {}
        baseline_counts = None
        for policy_name, policy in POLICIES:

            def run():
                return (
                    ReliabilityEngine(cache_size=0)
                    .run_query(query, policy=policy)
                    .value
                )

            seconds, value = _best(run)
            counts = _counts(value)
            if baseline_counts is None:
                baseline_counts = counts
            else:
                # jobs-invariance: plans compile per replica from spawned
                # streams, so worker count/mode can never change verdicts.
                assert counts == baseline_counts, (
                    f"{name}/{policy_name} verdicts {counts} != "
                    f"serial {baseline_counts}"
                )
            row[policy_name] = {
                "seconds": seconds,
                "campaigns_per_sec": 1.0 / seconds,
                "replicas_per_sec": REPLICAS / seconds,
            }
        row["counts"] = {
            "safety_violations": baseline_counts[0],
            "liveness_violations": baseline_counts[1],
            "predicate_mismatches": baseline_counts[2],
            "partition_era_liveness_violations": baseline_counts[3],
        }
        row["jobs_invariant"] = True
        results["workloads"][name] = row

    for name, baseline in (("adversarial", "crash_only_pbft"), ("outage", "crash_only")):
        crash = results["workloads"][baseline]["serial"]["campaigns_per_sec"]
        plan_rate = results["workloads"][name]["serial"]["campaigns_per_sec"]
        results["workloads"][name]["overhead_vs_crash_only"] = crash / plan_rate
    return results


@pytest.mark.bench
def test_fault_plan_campaign_throughput():
    results = measure()
    JSON_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    rows = []
    for name, row in results["workloads"].items():
        rows.append(
            [
                name,
                f"{row['serial']['campaigns_per_sec']:.2f}",
                f"{row['thread_jobs4']['campaigns_per_sec']:.2f}",
                f"{row.get('overhead_vs_crash_only', 1.0):.2f}x",
            ]
        )
    print_table(
        f"I1: {REPLICAS}-replica campaigns with/without fault plans",
        ["workload", "campaigns/s serial", "campaigns/s thread4", "overhead"],
        rows,
    )
    # The declarative layer must stay a thin wrapper: even the full outage
    # plan may not cost more than 3x the crash-only campaign (the sim
    # itself dominates; compilation is per-replica dict work).
    assert results["workloads"]["outage"]["overhead_vs_crash_only"] < 3.0


def main() -> None:
    results = measure()
    JSON_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(json.dumps(results, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
