"""A7 — aging fleets and the reconfiguration deadline (paper §2/§4).

"Fault probabilities evolve over time ... changing f is cumbersome as it
requires costly reconfiguration."  This bench projects a wear-out fleet's
reliability across its life, finds the window where it first misses its
nines target (the preemptive-reconfiguration deadline), and shows that
the greedy replacement policy keeps the deployment above target.
"""

from __future__ import annotations

import pytest

from repro.analysis.horizon import (
    first_subtarget_window,
    horizon_survival,
    reliability_over_horizon,
)
from repro.analysis.result import from_nines
from repro.faults.curves import WeibullCurve
from repro.faults.mixture import NodeModel
from repro.planner.reconfig import PreemptiveReconfigPolicy
from repro.protocols.raft import RaftSpec

from conftest import print_table

WINDOW = 720.0  # 30 days
TARGET_NINES = 4.0
CURVES = [WeibullCurve(shape=4.0, scale_hours=25_000.0) for _ in range(5)]


def test_aging_reliability_series(benchmark):
    points = benchmark(
        reliability_over_horizon, RaftSpec, CURVES, window_hours=WINDOW, n_windows=36
    )
    rows = [
        [f"{p.start_hours / 8766.0:.2f} yr", f"{p.safe_and_live:.8f}"]
        for p in points[::6]
    ]
    print_table("A7: 5-node Raft on wear-out hardware (Weibull k=4)", ["age", "S&L"], rows)
    values = [p.safe_and_live for p in points]
    assert all(b <= a + 1e-15 for a, b in zip(values, values[1:]))  # monotone decline
    assert values[0] > from_nines(TARGET_NINES)
    assert values[-1] < from_nines(TARGET_NINES)


def test_reconfiguration_deadline(benchmark):
    deadline = benchmark(
        first_subtarget_window,
        RaftSpec,
        CURVES,
        window_hours=WINDOW,
        target_nines=TARGET_NINES,
    )
    assert deadline is not None
    years = deadline.start_hours / 8766.0
    print(f"\nA7b: {TARGET_NINES:.0f}-nines deadline at window {deadline.window_index} "
          f"(~{years:.2f} years of age)")
    assert 0.5 < years < 3.0  # wear-out bites within the design life


def test_policy_holds_the_target(benchmark):
    def run_policy():
        policy = PreemptiveReconfigPolicy(
            RaftSpec, TARGET_NINES, NodeModel(0.001), max_replacements_per_window=2
        )
        return policy.simulate_schedule(
            list(CURVES), total_hours=36 * WINDOW, window_hours=WINDOW
        )

    decisions = benchmark(run_policy)
    acted = [d for d in decisions if d.acted]
    print(f"\nA7c: policy replaced hardware in {len(acted)} of {len(decisions)} windows; "
          f"min S&L after action {min(d.reliability_after for d in decisions):.6f}")
    assert acted  # the policy had to intervene
    # After interventions, every window ends at or near the target.
    assert min(d.reliability_after for d in decisions) >= from_nines(TARGET_NINES) - 1e-4


def test_unattended_fleet_survival_collapses(benchmark):
    survival = benchmark(
        horizon_survival, RaftSpec, CURVES, window_hours=WINDOW, n_windows=36
    )
    attended_floor = from_nines(TARGET_NINES) ** 36
    print(f"\nA7d: 3-year survival unattended {survival:.4f} vs "
          f">= {attended_floor:.4f} if the target were held every window")
    assert survival < attended_floor
