"""A2 — dynamic quorum sizing ablation (paper §4 first step).

"We can choose quorum sizes dynamically such that they overlap with high
probability."  Sweeps cluster size × nines target and reports the sampled
quorum sizes the planner picks, contrasting them with majority quorums;
also exercises the flexible (q_per, q_vc) chooser on heterogeneous fleets.
"""

from __future__ import annotations

import pytest

from repro.faults.mixture import NodeModel, heterogeneous_fleet, uniform_fleet
from repro.planner.quorum_sizing import best_flexible_pair, size_quorums
from repro.quorums.probabilistic import ProbabilisticQuorums

from conftest import print_table

P_FAIL = 0.01


def _sweep():
    table = {}
    for n in (10, 30, 50, 100):
        for target in (3.0, 6.0, 9.0):
            table[(n, target)] = size_quorums(n, P_FAIL, target)
    return table


def test_dynamic_quorum_sizes(benchmark):
    table = benchmark(_sweep)
    rows = []
    for (n, target), sizing in table.items():
        rows.append(
            [
                str(n),
                f"{target:.0f}",
                str(n // 2 + 1),
                str(sizing.sampled_quorum),
                str(sizing.sampled_quorum_correct_overlap),
                str(sizing.view_change_trigger),
            ]
        )
    print_table(
        f"A2: quorum sizes to hit a nines target (p={P_FAIL:.0%})",
        ["N", "target", "majority", "sampled", "sampled+correct", "vc-trigger"],
        rows,
    )
    for (n, target), sizing in table.items():
        system = ProbabilisticQuorums(n, sizing.sampled_quorum)
        assert system.intersection_probability() >= 1 - 10.0**-target
        # Sub-majority quorums appear at scale — the paper's O(sqrt N) point.
        if n >= 50 and target <= 6.0:
            assert sizing.sampled_quorum < n // 2 + 1
    # Monotone laws of the sweep.
    assert table[(100, 9.0)].sampled_quorum >= table[(100, 3.0)].sampled_quorum
    assert table[(100, 3.0)].sampled_quorum <= table[(10, 3.0)].sampled_quorum + 30


def test_flexible_pair_choice_heterogeneous(benchmark):
    fleet = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
    choice = benchmark(best_flexible_pair, fleet)
    print(
        f"\nA2b: best (q_per={choice.q_per}, q_vc={choice.q_vc}) on the mixed fleet "
        f"-> S&L {choice.safe_and_live:.6f}"
    )
    assert 7 < choice.q_per + choice.q_vc
    assert 7 < 2 * choice.q_vc

    uniform_choice = best_flexible_pair(uniform_fleet(7, 0.08))
    assert (uniform_choice.q_per, uniform_choice.q_vc) == (4, 4)
