"""A4 — reliability-aware leader selection (paper §4 second step).

"Probabilistic approaches can choose leaders among the most reliable
nodes ... improve tail latency [and] reduce reconfiguration delays."

Two views:

* analytic — expected in-window leader failures and annual view-change
  rates for aware vs oblivious selection on a mixed fleet;
* executable — DES Raft runs where the initial leader is the most (or
  least) reliable node and the flaky nodes crash mid-run; we count
  elections and measure commit-gap downtime.
"""

from __future__ import annotations

import pytest

from repro.faults.curves import ConstantHazard, WeibullCurve
from repro.faults.mixture import NodeModel, heterogeneous_fleet
from repro.planner.leader import (
    compare_leader_policies,
    expected_view_changes_per_year,
    rank_leaders,
    rank_leaders_by_curves,
)
from repro.sim import Cluster
from repro.sim.raft import raft_node_factory
from repro.sim.stats import leadership_stats, unavailable_windows

from conftest import print_table

MIXED = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])


def test_analytic_leader_comparison(benchmark):
    def compute():
        ranking = rank_leaders(MIXED)
        policies = compare_leader_policies(MIXED)
        curves = [ConstantHazard.from_window_probability(node.p_fail, 720.0) for node in MIXED]
        rates = {
            "aware (best node)": expected_view_changes_per_year(curves[ranking.best]),
            "oblivious (worst node)": expected_view_changes_per_year(curves[ranking.order[-1]]),
        }
        return ranking, policies, rates

    ranking, policies, rates = benchmark(compute)
    print_table(
        "A4: leader policies on the mixed 7-node fleet (4 x 8% + 3 x 1%)",
        ["policy", "P(leader fails in window)", "view changes / year"],
        [
            ["reliability-aware", f"{policies.aware_failure_probability:.3f}", f"{rates['aware (best node)']:.1f}"],
            ["oblivious (mean)", f"{policies.oblivious_failure_probability:.3f}", "-"],
            ["worst case", f"{max(MIXED.failure_probabilities):.3f}", f"{rates['oblivious (worst node)']:.1f}"],
        ],
    )
    assert policies.improvement_factor > 4.0
    assert rates["aware (best node)"] < rates["oblivious (worst node)"] / 4.0


def test_time_varying_ranking(benchmark):
    """Fault curves flip the ranking with the lease horizon (§2 point 2)."""

    def compute():
        curves = [ConstantHazard(2e-4), WeibullCurve(shape=6.0, scale_hours=4_000.0)]
        return (
            rank_leaders_by_curves(curves, horizon_hours=100.0).best,
            rank_leaders_by_curves(curves, horizon_hours=6_000.0).best,
        )

    short_best, long_best = benchmark(compute)
    print(f"\nA4b: best leader for 100h lease: node {short_best}; for 6000h lease: node {long_best}")
    assert short_best != long_best


def _run_with_leader(preferred: int, seed: int) -> tuple[int, float]:
    """DES run where `preferred` is given a head start to become leader;
    the flaky nodes (0-3) crash mid-run.  Returns (elections, downtime)."""
    cluster = Cluster(7, raft_node_factory(), seed=seed)
    # Bias the first election by crashing everyone else's timers: simplest
    # faithful mechanism is to boot the preferred node first.
    for node_id, process in enumerate(cluster.nodes):
        if node_id == preferred:
            process.start()
    cluster.run_until(0.5)  # preferred node wins an uncontested election
    for node_id, process in enumerate(cluster.nodes):
        if node_id != preferred:
            process.start()
    for flaky in (0, 1, 2):  # a bad week for the 8% nodes
        cluster.crash_at(flaky, 3.0 + 0.1 * flaky)
    at = 1.0
    for i in range(40):
        cluster.submit(f"cmd{i}", at=at)
        at += 0.2
    cluster.run_until(12.0)
    stats = leadership_stats(cluster.trace)
    gaps = unavailable_windows(cluster.trace, horizon=12.0, gap_threshold=0.25)
    downtime = sum(end - start for start, end in gaps if start > 0.5)
    return stats.elections, downtime


def test_simulated_leader_placement(benchmark):
    def compare():
        flaky_leader = _run_with_leader(preferred=0, seed=5)  # an 8% node
        reliable_leader = _run_with_leader(preferred=5, seed=5)  # a 1% node
        return flaky_leader, reliable_leader

    (flaky_elections, flaky_downtime), (reliable_elections, reliable_downtime) = benchmark(
        compare
    )
    print_table(
        "A4c: DES Raft, flaky nodes crash at t=3s",
        ["initial leader", "elections", "commit-gap downtime (s)"],
        [
            ["node 0 (p=8%, crashes)", str(flaky_elections), f"{flaky_downtime:.2f}"],
            ["node 5 (p=1%, survives)", str(reliable_elections), f"{reliable_downtime:.2f}"],
        ],
    )
    # Losing the leader forces an election + downtime; a reliable leader
    # rides out the same fault pattern.
    assert flaky_elections > reliable_elections
    assert flaky_downtime > reliable_downtime
