"""E2 — larger networks of less reliable nodes can help (paper §1/§3).

Reproduces: a 9-node cluster of p=8% spot nodes matches the 99.97% S&L of
a 3-node p=1% cluster; at the paper's 10× price gap that is a ~3.3× cost
reduction.  Also sweeps the spot-cluster size to show where the crossover
lands.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability
from repro.faults.mixture import uniform_fleet
from repro.planner.cost import RELIABLE_SKU, SPOT_SKU, DeploymentPlan, cost_ratio
from repro.planner.optimizer import equivalent_reliability_size, evaluate_plan
from repro.protocols.raft import RaftSpec

from conftest import print_table


def _sweep():
    reference = evaluate_plan(DeploymentPlan(RELIABLE_SKU, 3))
    candidates = [evaluate_plan(DeploymentPlan(SPOT_SKU, n)) for n in range(3, 14, 2)]
    match = equivalent_reliability_size(DeploymentPlan(RELIABLE_SKU, 3), SPOT_SKU)
    return reference, candidates, match


def test_cost_equivalence(benchmark):
    reference, candidates, match = benchmark(_sweep)
    rows = [
        [
            c.plan.describe(),
            format_probability(c.reliability),
            f"{c.hourly_cost:.2f}",
        ]
        for c in candidates
    ]
    print_table(
        "E2: spot-node cluster size sweep vs 3 x reliable (99.9702% S&L, $3.00/h)",
        ["plan", "Safe&Live", "$/h"],
        rows,
    )
    assert match is not None
    assert match.plan.count == 9

    savings = cost_ratio(reference.plan, match.plan)
    print(
        f"match: {match.plan.describe()} at {format_probability(match.reliability)}; "
        f"cost reduction {savings:.2f}x (paper: ~3x)"
    )
    # Shape: ~3x cheaper, reliability equal at the paper's precision.
    assert savings == pytest.approx(10.0 / 3.0)
    assert abs(match.reliability - reference.reliability) < 5e-5
    # Crossover shape: 7 spot nodes are NOT enough, 9 are.
    seven = counting_reliability(RaftSpec(7), uniform_fleet(7, SPOT_SKU.p_fail))
    assert seven.safe_and_live.value < reference.reliability - 5e-5
