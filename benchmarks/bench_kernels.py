"""K1 — vectorized kernel speedups: trials/sec and tables/sec, before vs after.

Times the pre-kernel per-trial Monte-Carlo loop (kept here as a reference
implementation) against the batched verdict-mask sampler, the 2n-pass
Birnbaum conditioning against the one-pass leave-one-out kernel, and the
paper Table 1/2 regeneration wall-time.  Emits a machine-readable
``BENCH_kernels.json`` at the repo root for the perf trajectory.

Run as pytest (``pytest benchmarks/bench_kernels.py -s``) or directly
(``python benchmarks/bench_kernels.py``); both write the JSON.
"""

from __future__ import annotations

import contextlib
import io
import json
import time
from pathlib import Path

from repro._rng import as_generator
from repro.analysis.config import FailureConfig
from repro.analysis.montecarlo import monte_carlo_reliability, sample_configuration
from repro.analysis.sensitivity import birnbaum_importance, importance_ranking
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_kernels.json"

MC_N = 25
MC_P = 0.05
MC_TRIALS_LOOP = 20_000
MC_TRIALS_BATCHED = 400_000

RANKING_N = 40
RANKING_P = 0.05


def _reference_run_trials(spec, fleet, trials: int, rng) -> tuple[int, int, int]:
    """The seed per-trial Monte-Carlo loop (with its verdict memo dict)."""
    safe_count = live_count = both_count = 0
    cache: dict[FailureConfig, tuple[bool, bool]] = {}
    for _ in range(trials):
        config = sample_configuration(fleet, rng)
        verdict = cache.get(config)
        if verdict is None:
            verdict = (spec.is_safe(config), spec.is_live(config))
            if len(cache) < 200_000:
                cache[config] = verdict
        safe, live = verdict
        safe_count += safe
        live_count += live
        both_count += safe and live
    return safe_count, live_count, both_count


def _merge_json(section: str, payload: dict) -> None:
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def measure_monte_carlo() -> dict:
    spec = RaftSpec(MC_N)
    fleet = uniform_fleet(MC_N, MC_P)

    start = time.perf_counter()
    _reference_run_trials(spec, fleet, MC_TRIALS_LOOP, as_generator(0))
    loop_seconds = time.perf_counter() - start
    loop_rate = MC_TRIALS_LOOP / loop_seconds

    monte_carlo_reliability(spec, fleet, trials=1_000, seed=0)  # warm masks/caches
    start = time.perf_counter()
    monte_carlo_reliability(spec, fleet, trials=MC_TRIALS_BATCHED, seed=0)
    batched_seconds = time.perf_counter() - start
    batched_rate = MC_TRIALS_BATCHED / batched_seconds

    return {
        "n": MC_N,
        "p_fail": MC_P,
        "loop_trials": MC_TRIALS_LOOP,
        "loop_seconds": loop_seconds,
        "loop_trials_per_sec": loop_rate,
        "batched_trials": MC_TRIALS_BATCHED,
        "batched_seconds": batched_seconds,
        "batched_trials_per_sec": batched_rate,
        "speedup": batched_rate / loop_rate,
    }


def measure_importance_ranking() -> dict:
    spec = RaftSpec(RANKING_N)
    fleet = uniform_fleet(RANKING_N, RANKING_P)
    importance_ranking(spec, fleet)  # warm masks

    start = time.perf_counter()
    importance_ranking(spec, fleet)
    one_pass_seconds = time.perf_counter() - start

    start = time.perf_counter()
    # The pre-kernel algorithm: condition the counting DP twice per node.
    per_node = [birnbaum_importance(spec, fleet, node) for node in range(RANKING_N)]
    per_node_seconds = time.perf_counter() - start
    assert len(per_node) == RANKING_N

    # O(n^3)-vs-O(n^4) scaling evidence: one-pass cost across sizes.
    scaling = {}
    for n in (15, 25, 40, 60):
        spec_n = RaftSpec(n)
        fleet_n = uniform_fleet(n, RANKING_P)
        importance_ranking(spec_n, fleet_n)  # warm masks
        start = time.perf_counter()
        importance_ranking(spec_n, fleet_n)
        scaling[n] = time.perf_counter() - start

    return {
        "n": RANKING_N,
        "one_pass_seconds": one_pass_seconds,
        "per_node_conditioning_seconds": per_node_seconds,
        "speedup": per_node_seconds / one_pass_seconds,
        "one_pass_seconds_by_n": scaling,
    }


def measure_tables() -> dict:
    from repro.cli import main as cli_main

    timings = {}
    for table in ("table1", "table2"):
        start = time.perf_counter()
        with contextlib.redirect_stdout(io.StringIO()):
            cli_main([table])
        timings[table] = time.perf_counter() - start
    total = sum(timings.values())
    return {
        "table_seconds": timings,
        "tables_per_sec": len(timings) / total,
    }


def test_batched_monte_carlo_speedup():
    result = measure_monte_carlo()
    _merge_json("monte_carlo", result)
    print_table(
        f"K1: Monte-Carlo trials/sec, Raft n={MC_N} p={MC_P:.0%}",
        ["path", "trials/sec"],
        [
            ["per-trial loop (seed)", f"{result['loop_trials_per_sec']:,.0f}"],
            ["batched kernel", f"{result['batched_trials_per_sec']:,.0f}"],
            ["speedup", f"{result['speedup']:.1f}x"],
        ],
    )
    assert result["speedup"] >= 20.0, (
        f"batched Monte-Carlo only {result['speedup']:.1f}x over the per-trial loop"
    )


def test_one_pass_importance_speedup():
    result = measure_importance_ranking()
    _merge_json("importance_ranking", result)
    print_table(
        f"K1: importance_ranking, Raft n={RANKING_N}",
        ["algorithm", "seconds"],
        [
            ["2n-pass conditioning (seed)", f"{result['per_node_conditioning_seconds']:.3f}"],
            ["one-pass kernel", f"{result['one_pass_seconds']:.3f}"],
            ["speedup", f"{result['speedup']:.1f}x"],
        ],
    )
    # The one-pass kernel must clearly beat re-conditioning the DP per node
    # (the seed algorithm's O(n^4) total); anything near parity means the
    # kernel regressed to per-node work.
    assert result["speedup"] >= 5.0


def test_table_regeneration_wall_time():
    result = measure_tables()
    _merge_json("paper_tables", result)
    print_table(
        "K1: paper table regeneration",
        ["table", "seconds"],
        [[name, f"{secs:.4f}"] for name, secs in result["table_seconds"].items()],
    )
    assert result["tables_per_sec"] > 1.0


def main() -> None:
    mc = measure_monte_carlo()
    ranking = measure_importance_ranking()
    tables = measure_tables()
    for section, payload in (
        ("monte_carlo", mc),
        ("importance_ranking", ranking),
        ("paper_tables", tables),
    ):
        _merge_json(section, payload)
    print(json.dumps(json.loads(JSON_PATH.read_text()), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
