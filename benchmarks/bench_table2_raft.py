"""T2/E1 — reproduce Table 2: Raft Safe&Live across N and p_u.

Also pins the §1 headline: Raft N=3 at p=1% is only 99.97% safe-and-live.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability, nines
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

from conftest import print_table

SIZES = (3, 5, 7, 9)
P_FAILS = (0.01, 0.02, 0.04, 0.08)

#: Paper cells (percent), in the paper's own printed precision.
PAPER = {
    (3, 0.01): 99.97, (3, 0.02): 99.88, (3, 0.04): 99.53, (3, 0.08): 98.18,
    (5, 0.01): 99.9990, (5, 0.02): 99.992, (5, 0.04): 99.94, (5, 0.08): 99.55,
    (7, 0.01): 99.99997, (7, 0.02): 99.9995, (7, 0.04): 99.992, (7, 0.08): 99.88,
    (9, 0.01): 99.999998, (9, 0.02): 99.99996, (9, 0.04): 99.9988, (9, 0.08): 99.97,
}


def _compute_table():
    table = {}
    for n in SIZES:
        spec = RaftSpec(n)
        for p in P_FAILS:
            table[(n, p)] = counting_reliability(spec, uniform_fleet(n, p))
    return table


def test_table2_reproduction(benchmark):
    table = benchmark(_compute_table)
    rows = []
    for n in SIZES:
        spec = RaftSpec(n)
        cells = [str(n), str(spec.q_per), str(spec.q_vc)]
        cells += [format_probability(table[(n, p)].safe_and_live.value) for p in P_FAILS]
        rows.append(cells)
    print_table(
        "Table 2: Raft reliability for uniform node failure p_u",
        ["N", "|Qper|", "|Qvc|"] + [f"S&L p={p:.0%}" for p in P_FAILS],
        rows,
    )
    for (n, p), paper_pct in PAPER.items():
        measured_pct = table[(n, p)].safe_and_live.value * 100
        digits = len(str(paper_pct).split(".")[1])
        # Within one unit of the paper's last printed digit (it truncates).
        assert abs(measured_pct - paper_pct) <= 10.0**-digits + 1e-12, (n, p)


def test_headline_claim_three_nines(benchmark):
    result = benchmark(
        lambda: counting_reliability(RaftSpec(3), uniform_fleet(3, 0.01))
    )
    print(
        f"\nE1: Raft N=3, p=1% -> S&L = {format_probability(result.safe_and_live.value)} "
        f"({nines(result.safe_and_live.value):.2f} nines)"
    )
    assert 3.0 <= nines(result.safe_and_live.value) < 4.0
