"""A3 — correlated faults collapse Table 2's nines (paper §2 point 3).

The paper's §3 analysis assumes independence "for simplification" and
warns that real faults cluster.  This bench quantifies the cost of that
simplification: re-runs Table 2's p=1% column under (a) a fleet-wide
rollout shock and (b) beta-binomial contagion, both calibrated to leave
per-node marginals near 1%.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability, monte_carlo_correlated
from repro.faults.correlation import (
    BetaBinomialContagion,
    CommonShockModel,
    rollout_shock,
)
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

from conftest import print_table

SHOCK_PROBABILITY = 0.002  # one bad rollout per ~500 windows
BASE_P = 0.008  # background failures; marginal ≈ 1% with the shock


def _compute():
    out = {}
    for n in (3, 5, 7, 9):
        spec = RaftSpec(n)
        fleet = uniform_fleet(n, BASE_P)
        independent = counting_reliability(spec, uniform_fleet(n, 0.01))
        shocked_model = CommonShockModel(fleet, (rollout_shock(fleet, SHOCK_PROBABILITY),))
        # Exact via the count PMF (conditioning on the shock).
        pmf = shocked_model.failure_count_pmf()
        quorum = n // 2 + 1
        shocked_live = float(pmf[: n - quorum + 1].sum())
        contagion = BetaBinomialContagion.from_marginal_and_correlation(n, 0.01, 0.15)
        contagion_live = float(contagion.failure_count_pmf()[: n - quorum + 1].sum())
        out[n] = (independent.safe_and_live.value, shocked_live, contagion_live)
    return out


def test_correlation_ablation(benchmark):
    results = benchmark(_compute)
    rows = [
        [
            str(n),
            format_probability(independent),
            format_probability(shocked),
            format_probability(contagion),
        ]
        for n, (independent, shocked, contagion) in results.items()
    ]
    print_table(
        "A3: Raft S&L at ~1% marginal failure — independence vs correlation",
        ["N", "independent (Table 2)", f"rollout shock ({SHOCK_PROBABILITY:.1%}/window)", "contagion (rho=0.15)"],
        rows,
    )
    for n, (independent, shocked, contagion) in results.items():
        # Correlation strictly hurts at every size.
        assert shocked < independent
        assert contagion < independent
    # The headline: under the shock model, adding replicas stops helping —
    # the shock kills any majority regardless of N.  Independent Table 2
    # gains ~2 nines from N=3 to N=9; the shocked column gains almost none.
    indep_gain = (1 - results[3][0]) / (1 - results[9][0])
    shocked_gain = (1 - results[3][1]) / (1 - results[9][1])
    print(f"unreliability improvement 3->9 nodes: independent {indep_gain:.0f}x, "
          f"shocked {shocked_gain:.1f}x")
    assert indep_gain > 1_000
    assert shocked_gain < 10


def test_monte_carlo_agrees_with_exact_shock_analysis(benchmark):
    n = 5
    fleet = uniform_fleet(n, BASE_P)
    model = CommonShockModel(fleet, (rollout_shock(fleet, SHOCK_PROBABILITY),))
    spec = RaftSpec(n)

    result = benchmark(
        monte_carlo_correlated, spec, model, trials=150_000, seed=11
    )
    pmf = model.failure_count_pmf()
    exact_live = float(pmf[:3].sum())
    assert result.live.ci_low - 1e-4 <= exact_live <= result.live.ci_high + 1e-4
