"""E5 — the hidden safety/liveness trade-off (paper §3).

Reproduces: with f=1, the 5-node PBFT deployment improves safety 42–60×
over the 4-node one while degrading liveness only ~1.67×; the 5-node
system is even safer than the 40%-more-expensive 7-node system.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability
from repro.faults.mixture import byzantine_fleet
from repro.protocols.pbft import PBFTSpec

from conftest import print_table


def _compute(p_fail: float):
    return {
        n: counting_reliability(PBFTSpec(n), byzantine_fleet(n, p_fail))
        for n in (4, 5, 7)
    }


def test_safety_liveness_tradeoff(benchmark):
    results = benchmark(_compute, 0.01)
    rows = [
        [
            str(n),
            format_probability(r.safe.value),
            format_probability(r.live.value),
            f"{1 - r.safe.value:.3e}",
            f"{1 - r.live.value:.3e}",
        ]
        for n, r in results.items()
    ]
    print_table(
        "E5: PBFT 4 vs 5 vs 7 nodes at p=1% (all-Byzantine)",
        ["N", "Safe %", "Live %", "P(unsafe)", "P(not live)"],
        rows,
    )
    safety_gain = (1 - results[4].safe.value) / (1 - results[5].safe.value)
    liveness_loss = (1 - results[5].live.value) / (1 - results[4].live.value)
    print(f"safety gain 5 vs 4: {safety_gain:.1f}x (paper: 42-60x)")
    print(f"liveness loss 5 vs 4: {liveness_loss:.2f}x (paper: 1.67x)")
    assert 42.0 <= safety_gain <= 70.0
    assert liveness_loss == pytest.approx(1.67, abs=0.05)
    # And the punchline: 5 nodes beat 7 on safety at 5/7 the cost.
    assert results[5].safe.value > results[7].safe.value


def test_tradeoff_shape_across_p(benchmark):
    """The 5-over-4 safety gain persists across failure probabilities."""

    def sweep():
        gains = {}
        for p in (0.005, 0.01, 0.02):
            results = _compute(p)
            gains[p] = (1 - results[4].safe.value) / (1 - results[5].safe.value)
        return gains

    gains = benchmark(sweep)
    rows = [[f"{p:.1%}", f"{g:.1f}x"] for p, g in gains.items()]
    print_table("E5b: safety gain of 5-node over 4-node PBFT vs p", ["p", "gain"], rows)
    assert all(gain > 20.0 for gain in gains.values())
    # Gain grows as nodes get more reliable (rarer double faults).
    ordered = [gains[p] for p in sorted(gains, reverse=True)]
    assert ordered == sorted(ordered)
