"""P10 — observability overhead: the disabled tracer must cost ≤ 5 %.

Three measurements of the same supervised campaign workload:

* **disabled** — no tracer installed; every instrumentation site hits the
  shared no-op ``NULL_TRACER``/``NULL_SPAN`` singletons.  This is the
  default production path and the one the 5 % gate guards.
* **enabled** — a live tracer with an in-memory exporter records the full
  span hierarchy (engine → backends → runtime shards → worker chunks).
* **exporting** — the same hierarchy streamed to a JSONL span log.

The headline number is the **disabled-path overhead fraction**: the cost
of the no-op calls the instrumentation adds to an untraced run.  Wall
clocks are too noisy to subtract two campaign timings of a ~1e-4 effect,
so the fraction is measured honestly from its parts: a microbenchmark of
one no-op span round-trip, times the span count an enabled run actually
records, divided by the disabled campaign time.  The raw disabled vs
enabled vs exporting campaign timings are also recorded for context.

Emits ``BENCH_obs.json`` at the repo root.  Run as pytest
(``pytest benchmarks/bench_obs.py -s``) or directly
(``python benchmarks/bench_obs.py``); both write the JSON.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.engine import (
    ExecutionPolicy,
    QuerySet,
    ReliabilityEngine,
    Scenario,
    SimulationQuery,
)
from repro.faults.mixture import uniform_fleet
from repro.obs import InMemoryExporter, JsonlExporter, NULL_TRACER, Tracer, use_tracer
from repro.protocols.raft import RaftSpec

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_obs.json"

OVERHEAD_LIMIT = 0.05
CAMPAIGN_REPEATS = 3
NOOP_CALLS = 200_000


def _queries() -> QuerySet:
    return QuerySet.build(
        [
            SimulationQuery(
                Scenario(
                    spec=RaftSpec(3),
                    fleet=uniform_fleet(3, 0.2),
                    seed=seed,
                    label=f"bench-{seed}",
                ),
                replicas=16,
                duration=5.0,
                commands=2,
            )
            for seed in (101, 102)
        ]
    )


def _policy() -> ExecutionPolicy:
    return ExecutionPolicy.from_jobs(2, mode="thread", timeout=30.0, retries=1)


def _campaign_seconds(tracer: Tracer | None, exporter=None) -> float:
    """One cold supervised campaign run (fresh engine, fresh memo)."""
    engine = ReliabilityEngine()
    queries = _queries()
    policy = _policy()
    if tracer is None:
        start = time.perf_counter()
        engine.run(queries, policy=policy)
        return time.perf_counter() - start
    with use_tracer(tracer):
        start = time.perf_counter()
        engine.run(queries, policy=policy)
        return time.perf_counter() - start


def measure_noop_span_cost() -> float:
    """Seconds per disabled-path span round-trip (enter/set/exit)."""
    span = NULL_TRACER.span  # the exact call instrumented code makes
    start = time.perf_counter()
    for _ in range(NOOP_CALLS):
        with span("x", a=1) as s:
            s.set("b", 2)
    return (time.perf_counter() - start) / NOOP_CALLS


def measure_all(tmp_dir: Path) -> dict:
    # Import/JIT warm-up off the clock.
    _campaign_seconds(None)

    disabled = min(_campaign_seconds(None) for _ in range(CAMPAIGN_REPEATS))

    recording = InMemoryExporter()
    enabled_tracer = Tracer.for_key(("bench-obs", "enabled"), exporter=recording)
    enabled = min(
        _campaign_seconds(enabled_tracer) for _ in range(CAMPAIGN_REPEATS)
    )
    spans_per_run = len(recording.records) // CAMPAIGN_REPEATS

    jsonl_path = tmp_dir / "bench-obs-trace.jsonl"
    exporting_tracer = Tracer.for_key(
        ("bench-obs", "exporting"), exporter=JsonlExporter(str(jsonl_path))
    )
    exporting = min(
        _campaign_seconds(exporting_tracer) for _ in range(CAMPAIGN_REPEATS)
    )
    exporting_tracer.exporter.close()

    noop_span_seconds = measure_noop_span_cost()
    # The disabled path pays one no-op round-trip per site the enabled run
    # turned into a span; everything else is untouched code.
    disabled_overhead = (noop_span_seconds * spans_per_run) / disabled

    return {
        "campaign": {
            "queries": 2,
            "replicas_each": 16,
            "mode": "thread",
            "jobs": 2,
            "repeats": CAMPAIGN_REPEATS,
        },
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "exporting_seconds": exporting,
        "enabled_overhead_fraction": (enabled - disabled) / disabled,
        "spans_per_run": spans_per_run,
        "noop_span_seconds": noop_span_seconds,
        "disabled_overhead_fraction": disabled_overhead,
        "overhead_limit": OVERHEAD_LIMIT,
    }


def _print_report(payload: dict) -> None:
    print_table(
        "P10: observability overhead — supervised campaign, 2 queries x 16 replicas",
        ["path", "seconds"],
        [
            ["tracing disabled", f"{payload['disabled_seconds']:.4f}"],
            ["tracing enabled (in-memory)", f"{payload['enabled_seconds']:.4f}"],
            ["tracing exporting (jsonl)", f"{payload['exporting_seconds']:.4f}"],
        ],
    )
    print(
        f"\nspans per enabled run: {payload['spans_per_run']}; "
        f"no-op span round-trip: {payload['noop_span_seconds'] * 1e9:.0f} ns; "
        f"disabled-path overhead: "
        f"{payload['disabled_overhead_fraction'] * 100:.4f}% "
        f"(limit {payload['overhead_limit'] * 100:.0f}%)"
    )


@pytest.mark.bench
def test_disabled_tracer_overhead(tmp_path):
    payload = measure_all(tmp_path)
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _print_report(payload)
    assert payload["spans_per_run"] > 0
    assert payload["disabled_overhead_fraction"] <= OVERHEAD_LIMIT, (
        f"disabled-tracer overhead "
        f"{payload['disabled_overhead_fraction'] * 100:.2f}% exceeds the "
        f"{OVERHEAD_LIMIT * 100:.0f}% budget"
    )


def main() -> None:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        payload = measure_all(Path(tmp))
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    _print_report(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
