"""P6 — supervised campaign runtime: dispatch overhead and recovery latency.

Times the fault-tolerant runtime (:mod:`repro.engine.runtime`) against the
bare sharded dispatcher on crash-free campaigns — the supervised loop adds
deadline tracking, retry bookkeeping and result journal hooks, and the
target is ≤5% overhead when nothing fails — and measures how quickly a
supervised process pool recovers from injected worker kills (chaos
``kill`` faults, the ``BrokenProcessPool`` requeue path).

Bit-identity is asserted throughout: the supervised tally must equal the
bare tally, and kill-recovered campaign results must equal the clean run.

Emits ``BENCH_runtime.json`` at the repo root, recording ``cpu_count``
and ``cpu_limited`` (recovery latency on a single-core container includes
serialized re-execution, so absolute numbers are only comparable on
similar hosts).

Run as pytest (``pytest benchmarks/bench_runtime.py -s``) or directly
(``python benchmarks/bench_runtime.py``); both write the JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

import pytest

from repro.analysis.kernels import monte_carlo_tally_sharded
from repro.engine import ChaosPlan, ShardFault, Supervision
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_runtime.json"

N = 25
P_FAIL = 0.05
TRIALS = 400_000
SHARD_TRIALS = 25_000  # 16 shards
SEED = 20250808
REPEATS = 5
OVERHEAD_TARGET = 0.05

SPEC = RaftSpec(N)
FLEET = uniform_fleet(N, P_FAIL)


def _best(fn, repeats: int = REPEATS):
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, value
    return best_seconds, result


def _tally(mode: str, jobs: int, supervision: Supervision | None = None, chaos=None):
    tally, _ = monte_carlo_tally_sharded(
        SPEC,
        FLEET,
        TRIALS,
        SEED,
        jobs=jobs,
        shard_trials=SHARD_TRIALS,
        mode=mode,
        supervision=supervision,
        chaos=chaos,
    )
    return tally


def measure_overhead() -> dict:
    """Supervised vs bare dispatch on crash-free campaigns (the ≤5% gate)."""
    # Warm NumPy dispatch and the verdict-mask cache off the clock.
    _tally("serial", 1)

    rows = []
    for mode, jobs in (("serial", 1), ("thread", 2)):
        bare_seconds, bare = _best(lambda m=mode, j=jobs: _tally(m, j))
        supervised_seconds, supervised = _best(
            lambda m=mode, j=jobs: _tally(
                m, j, supervision=Supervision(retries=2, timeout=60.0)
            )
        )
        assert supervised == bare, (
            f"supervised tally diverged from bare tally in {mode} mode"
        )
        rows.append(
            {
                "mode": mode,
                "jobs": jobs,
                "bare_seconds": bare_seconds,
                "supervised_seconds": supervised_seconds,
                "overhead_fraction": supervised_seconds / bare_seconds - 1.0,
            }
        )
    return {
        "trials": TRIALS,
        "shard_trials": SHARD_TRIALS,
        "shards": TRIALS // SHARD_TRIALS,
        "seed": SEED,
        "target_overhead_fraction": OVERHEAD_TARGET,
        "paths": rows,
        "max_overhead_fraction": max(row["overhead_fraction"] for row in rows),
        "supervised_bit_identical_to_bare": True,
    }


def measure_recovery() -> dict:
    """Wall-clock cost of surviving injected worker kills (process pool)."""
    clean_seconds, clean = _best(
        lambda: _tally("process", 2, supervision=Supervision(retries=2)),
        repeats=3,
    )

    def killed_run():
        with tempfile.TemporaryDirectory() as state:
            chaos = ChaosPlan(
                faults=((0, ShardFault("kill", times=1)),), state_dir=state
            )
            return _tally(
                "process", 2, supervision=Supervision(retries=2), chaos=chaos
            )

    killed_seconds, killed = _best(killed_run, repeats=3)
    assert killed == clean, "kill-recovered tally diverged from the clean tally"
    return {
        "pool": "process",
        "jobs": 2,
        "kills_injected": 1,
        "clean_seconds": clean_seconds,
        "recovered_seconds": killed_seconds,
        "recovery_latency_seconds": max(0.0, killed_seconds - clean_seconds),
        "recovered_bit_identical": True,
    }


def measure_all() -> dict:
    cpu_count = os.cpu_count() or 1
    payload = {
        "cpu_count": cpu_count,
        "cpu_limited": cpu_count < 4,
        "overhead": measure_overhead(),
        "recovery": measure_recovery(),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_report(payload: dict) -> None:
    overhead = payload["overhead"]
    print_table(
        f"P6: supervised runtime overhead, Raft n={N}, "
        f"{overhead['trials']:,} trials in {overhead['shards']} shards "
        f"({payload['cpu_count']} CPUs visible)",
        ["mode", "jobs", "bare s", "supervised s", "overhead"],
        [
            [
                row["mode"],
                str(row["jobs"]),
                f"{row['bare_seconds']:.3f}",
                f"{row['supervised_seconds']:.3f}",
                f"{row['overhead_fraction']:+.1%}",
            ]
            for row in overhead["paths"]
        ],
    )
    recovery = payload["recovery"]
    print_table(
        "P6: worker-kill recovery (process pool, 1 injected kill)",
        ["clean s", "recovered s", "recovery latency s"],
        [
            [
                f"{recovery['clean_seconds']:.3f}",
                f"{recovery['recovered_seconds']:.3f}",
                f"{recovery['recovery_latency_seconds']:.3f}",
            ]
        ],
    )


@pytest.mark.bench
def test_runtime_overhead_and_recovery():
    payload = measure_all()
    _print_report(payload)
    overhead = payload["overhead"]
    assert overhead["supervised_bit_identical_to_bare"]
    assert payload["recovery"]["recovered_bit_identical"]
    assert overhead["max_overhead_fraction"] <= OVERHEAD_TARGET, (
        f"supervised dispatch overhead {overhead['max_overhead_fraction']:.1%} "
        f"exceeds the {OVERHEAD_TARGET:.0%} target"
    )


def main() -> None:
    payload = measure_all()
    _print_report(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
