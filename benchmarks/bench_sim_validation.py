"""V1 — simulator validation: protocol runs obey the §3 predicates.

For each failure configuration class we execute full Raft / PBFT protocol
runs under seeded fault injection and check that the trace-level verdicts
(agreement, completion) match the analytical classification of Theorems
3.1 / 3.2.  This is the evidence that the probability numbers in Tables
1-2 describe the behaviour of real executions, not just of the predicates.
"""

from __future__ import annotations

import pytest

from repro.analysis.config import FailureConfig
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec
from repro.sim import Cluster, plan_from_config
from repro.sim.checker import audit_run
from repro.sim.pbft import (
    DoubleVoter,
    EquivocatingDoubleVoter,
    EquivocatingPrimary,
    mixed_pbft_factory,
    pbft_node_factory,
)
from repro.sim.raft import raft_node_factory

from conftest import print_table


def _run_raft(config: FailureConfig, seed: int) -> tuple[bool, bool]:
    cluster = Cluster(config.n, raft_node_factory(), seed=seed)
    plan_from_config(config, duration=12.0, crash_window=(0.0, 0.4), seed=seed).apply(cluster)
    cluster.start()
    commands = [f"v{i}" for i in range(4)]
    at = 1.0
    for command in commands:
        cluster.submit(command, at=at)
        at += 0.1
    cluster.run_until(12.0)
    correct = sorted(set(range(config.n)) - set(config.failed_indices))
    verdict = audit_run(cluster.trace, commands, correct_nodes=correct)
    return verdict.safe, verdict.live


def test_raft_runs_match_theorem_32(benchmark):
    spec = RaftSpec(5)
    cases = [
        FailureConfig.from_failed_indices(5, failed)
        for failed in ([], [0], [1, 3], [0, 1, 2], [0, 1, 2, 3])
    ]

    def validate():
        outcomes = []
        for i, config in enumerate(cases):
            safe, live = _run_raft(config, seed=100 + i)
            outcomes.append((config, spec.is_live(config), safe, live))
        return outcomes

    outcomes = benchmark(validate)
    rows = [
        [config.describe(), str(predicted), str(safe), str(live)]
        for config, predicted, safe, live in outcomes
    ]
    print_table(
        "V1a: Raft n=5 — predicate liveness vs simulated run verdicts",
        ["config", "Thm3.2 live", "run safe", "run live"],
        rows,
    )
    for config, predicted_live, safe, live in outcomes:
        assert safe, f"agreement violated under {config.describe()}"
        assert live == predicted_live, config.describe()


def test_pbft_runs_match_theorem_31(benchmark):
    spec = PBFTSpec(4)

    def validate():
        outcomes = {}
        # |Byz| = 1: predicted safe (1 < 2*3-4).
        factory = mixed_pbft_factory(frozenset({0}), EquivocatingPrimary)
        cluster = Cluster(4, factory, seed=7)
        cluster.start()
        cluster.submit("a", at=0.5)
        cluster.submit("b", at=0.6)
        cluster.run_until(15.0)
        verdict = audit_run(cluster.trace, ["a", "b"], correct_nodes=[1, 2, 3])
        outcomes["byz1"] = (spec.is_safe_counts(0, 1), verdict.safe)
        # |Byz| = 2: predicted unsafe.
        factory2 = mixed_pbft_factory(
            frozenset({0, 2}), DoubleVoter, primary_class=EquivocatingDoubleVoter
        )
        cluster2 = Cluster(4, factory2, seed=8)
        cluster2.start()
        cluster2.submit("c", at=0.5)
        cluster2.run_until(15.0)
        verdict2 = audit_run(cluster2.trace, ["c"], correct_nodes=[1, 3])
        outcomes["byz2"] = (spec.is_safe_counts(0, 2), verdict2.safe)
        # 2 crashes: predicted not live, still safe.
        cluster3 = Cluster(4, pbft_node_factory(), seed=9)
        cluster3.crash_at(1, 0.1)
        cluster3.crash_at(2, 0.1)
        cluster3.start()
        cluster3.submit("d", at=0.5)
        cluster3.run_until(12.0)
        verdict3 = audit_run(cluster3.trace, ["d"], correct_nodes=[0, 3])
        outcomes["crash2"] = (spec.is_live_counts(2, 0), verdict3.live, verdict3.safe)
        return outcomes

    outcomes = benchmark(validate)
    print_table(
        "V1b: PBFT n=4 — Thm 3.1 vs simulated attacks",
        ["scenario", "prediction", "run verdict"],
        [
            ["1 equivocating byz", f"safe={outcomes['byz1'][0]}", f"safe={outcomes['byz1'][1]}"],
            ["2 colluding byz", f"safe={outcomes['byz2'][0]}", f"safe={outcomes['byz2'][1]}"],
            ["2 crashes", f"live={outcomes['crash2'][0]}", f"live={outcomes['crash2'][1]}"],
        ],
    )
    assert outcomes["byz1"] == (True, True)
    assert outcomes["byz2"] == (False, False)
    predicted_live, ran_live, ran_safe = outcomes["crash2"]
    assert not predicted_live and not ran_live and ran_safe
