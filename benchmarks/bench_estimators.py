"""A1 — estimator ablation: exact vs counting DP vs MC vs importance.

Not a paper table; an ablation DESIGN.md calls out.  Shows (a) all
estimators agree, (b) the counting DP is the only exact method that
scales, and (c) importance sampling is the only sampler that resolves
deep-nines events.  Timings come from pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.analysis.counting import counting_reliability
from repro.analysis.exact import exact_reliability
from repro.analysis.importance import importance_sample_violation
from repro.analysis.montecarlo import monte_carlo_reliability
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

from conftest import print_table

FLEET_SMALL = uniform_fleet(9, 0.05)
SPEC_SMALL = RaftSpec(9)
FLEET_LARGE = uniform_fleet(101, 0.05)
SPEC_LARGE = RaftSpec(101)


def test_exact_enumeration_small(benchmark):
    result = benchmark(exact_reliability, SPEC_SMALL, FLEET_SMALL)
    assert result.method == "exact"


def test_counting_dp_small(benchmark):
    result = benchmark(counting_reliability, SPEC_SMALL, FLEET_SMALL)
    exact = exact_reliability(SPEC_SMALL, FLEET_SMALL)
    assert result.safe_and_live.value == pytest.approx(exact.safe_and_live.value, abs=1e-12)


def test_counting_dp_scales_to_101_nodes(benchmark):
    result = benchmark(counting_reliability, SPEC_LARGE, FLEET_LARGE)
    assert 0.99 < result.safe_and_live.value < 1.0


def test_monte_carlo_small(benchmark):
    result = benchmark(
        monte_carlo_reliability, SPEC_SMALL, FLEET_SMALL, trials=20_000, seed=0
    )
    exact = counting_reliability(SPEC_SMALL, FLEET_SMALL)
    assert result.live.ci_low <= exact.live.value <= result.live.ci_high


def test_importance_sampling_deep_nines(benchmark):
    fleet = uniform_fleet(9, 0.01)
    spec = RaftSpec(9)
    result = benchmark(
        importance_sample_violation, spec, fleet, predicate="live", trials=20_000, seed=1
    )
    exact_violation = 1.0 - counting_reliability(spec, fleet).live.value
    print(
        f"\nA1: importance {result.violation.value:.3e} vs exact {exact_violation:.3e} "
        f"(~1.2e-8; plain MC at 20k trials would see 0 events)"
    )
    assert result.violation.value == pytest.approx(exact_violation, rel=0.25)


def test_agreement_summary():
    """Cross-estimator agreement table (no timing; shape documentation)."""
    exact = exact_reliability(SPEC_SMALL, FLEET_SMALL)
    counting = counting_reliability(SPEC_SMALL, FLEET_SMALL)
    mc = monte_carlo_reliability(SPEC_SMALL, FLEET_SMALL, trials=50_000, seed=2)
    print_table(
        "A1: estimator agreement on Raft n=9, p=5%",
        ["estimator", "Safe&Live"],
        [
            ["exact enumeration", f"{exact.safe_and_live.value:.10f}"],
            ["counting DP", f"{counting.safe_and_live.value:.10f}"],
            ["monte-carlo (50k)", f"{mc.safe_and_live.value:.5f} ± {mc.safe_and_live.stderr:.5f}"],
        ],
    )
    assert counting.safe_and_live.value == pytest.approx(exact.safe_and_live.value, abs=1e-12)
    assert mc.safe_and_live.ci_low <= exact.safe_and_live.value <= mc.safe_and_live.ci_high
