"""P1 — multi-core sharded Monte-Carlo: worker scaling and determinism.

Times the spawned-stream sharded Monte-Carlo path (``jobs=``) against the
legacy single-stream kernel on a small benchmark grid (Raft n=25 at three
failure probabilities), from 1 to ``MAX_JOBS`` workers over both thread
and process pools, plus the engine-level :class:`ExecutionPolicy` path on
a mixed Monte-Carlo scenario set.  Beyond throughput it pins the PR's two
correctness contracts:

* ``jobs=1`` (and ``jobs`` unset) stays on the legacy single stream —
  results are asserted bit-identical to the pre-sharding baseline;
* spawned-stream results are asserted identical across every worker count
  and executor mode (the shard plan depends only on the trial budget).

Emits ``BENCH_parallel.json`` at the repo root, recording ``cpu_count``:
the ≥2x scaling expectation only applies on multi-core hosts, and the
JSON says so explicitly (``cpu_limited``) when the container has fewer
than 4 CPUs and physics rules the speedup out.

Run as pytest (``pytest benchmarks/bench_parallel.py -s``) or directly
(``python benchmarks/bench_parallel.py``); both write the JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.analysis.montecarlo import monte_carlo_reliability
from repro.engine import ExecutionPolicy, ReliabilityEngine, Scenario, ScenarioSet
from repro.faults.mixture import uniform_fleet
from repro.protocols.raft import RaftSpec

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_parallel.json"

N = 25
PROBABILITIES = (0.02, 0.05, 0.08)
TRIALS = 300_000
SEED = 20250730
MAX_JOBS = 4
REPEATS = 3


def _best(fn, repeats: int = REPEATS):
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, value
    return best_seconds, result


def _grid_cells():
    spec = RaftSpec(N)
    return [(spec, uniform_fleet(N, p)) for p in PROBABILITIES]


def measure_monte_carlo() -> dict:
    cells = _grid_cells()
    total_trials = TRIALS * len(cells)

    def run_legacy():
        return [
            monte_carlo_reliability(spec, fleet, trials=TRIALS, seed=SEED)
            for spec, fleet in cells
        ]

    def run_jobs(jobs: int, pool: str):
        return [
            monte_carlo_reliability(
                spec, fleet, trials=TRIALS, seed=SEED, jobs=jobs, pool=pool,
                sharding="spawn" if jobs == 1 else "auto",
            )
            for spec, fleet in cells
        ]

    # Warm NumPy dispatch + verdict masks off the clock.
    monte_carlo_reliability(cells[0][0], cells[0][1], trials=1000, seed=0)

    legacy_seconds, legacy_results = _best(run_legacy)

    # jobs=1 under the default ("auto") sharding stays on the legacy single
    # stream: bit-identical to the pre-sharding baseline.
    jobs1_auto = [
        monte_carlo_reliability(spec, fleet, trials=TRIALS, seed=SEED, jobs=1)
        for spec, fleet in cells
    ]
    assert jobs1_auto == legacy_results, (
        "jobs=1 must stay bit-identical to the legacy single-stream baseline"
    )

    scaling = []
    spawn_reference = None
    for pool in ("thread", "process"):
        for jobs in range(1, MAX_JOBS + 1):
            seconds, results = _best(lambda j=jobs, p=pool: run_jobs(j, p))
            if spawn_reference is None:
                spawn_reference = results
            else:
                assert results == spawn_reference, (
                    f"spawned-stream results changed at jobs={jobs} pool={pool}"
                )
            scaling.append(
                {
                    "jobs": jobs,
                    "pool": pool,
                    "seconds": seconds,
                    "trials_per_sec": total_trials / seconds,
                    "speedup_vs_legacy": legacy_seconds / seconds,
                }
            )

    best_jobs4 = max(
        (row for row in scaling if row["jobs"] == MAX_JOBS),
        key=lambda row: row["trials_per_sec"],
    )
    return {
        "n": N,
        "probabilities": list(PROBABILITIES),
        "trials_per_cell": TRIALS,
        "cells": len(cells),
        "seed": SEED,
        "legacy_trials_per_sec": total_trials / legacy_seconds,
        "legacy_seconds": legacy_seconds,
        "scaling": scaling,
        "speedup_jobs4_vs_jobs1": best_jobs4["speedup_vs_legacy"],
        "best_jobs4_pool": best_jobs4["pool"],
        "jobs1_bit_identical_to_baseline": True,
        "spawn_deterministic_across_jobs_and_pools": True,
    }


def measure_engine() -> dict:
    scenarios = ScenarioSet.build(
        Scenario(
            spec=RaftSpec(N),
            fleet=uniform_fleet(N, p),
            method="monte-carlo",
            trials=100_000,
            seed=seed,
            label=f"p={p:g}/seed={seed}",
        )
        for p in PROBABILITIES
        for seed in (1, 2, 3, 4)
    )

    def run_with(policy: ExecutionPolicy | None):
        engine = ReliabilityEngine(cache_size=0)
        if policy is None:
            return engine.run(scenarios).results
        return engine.run(scenarios, policy=policy).results

    serial_seconds, serial_results = _best(lambda: run_with(None))
    thread1 = run_with(ExecutionPolicy(mode="thread", jobs=1))
    thread4_seconds, thread4 = _best(
        lambda: run_with(ExecutionPolicy(mode="thread", jobs=MAX_JOBS))
    )
    process4_seconds, process4 = _best(
        lambda: run_with(ExecutionPolicy(mode="process", jobs=MAX_JOBS))
    )
    assert thread1 == thread4 == process4, (
        "EngineResult values must not depend on worker count or pool mode"
    )
    return {
        "scenarios": len(scenarios),
        "serial_seconds": serial_seconds,
        "serial_scenarios_per_sec": len(scenarios) / serial_seconds,
        "thread_jobs4_seconds": thread4_seconds,
        "thread_jobs4_scenarios_per_sec": len(scenarios) / thread4_seconds,
        "process_jobs4_seconds": process4_seconds,
        "process_jobs4_scenarios_per_sec": len(scenarios) / process4_seconds,
        "policy_deterministic_across_jobs": True,
    }


def measure_all() -> dict:
    cpu_count = os.cpu_count() or 1
    payload = {
        "cpu_count": cpu_count,
        "cpu_limited": cpu_count < MAX_JOBS,
        "monte_carlo": measure_monte_carlo(),
        "engine": measure_engine(),
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def _print_report(payload: dict) -> None:
    mc = payload["monte_carlo"]
    rows = [
        ["legacy single stream", "1", "-", f"{mc['legacy_trials_per_sec']:,.0f}", "1.00x"],
    ]
    for row in mc["scaling"]:
        rows.append(
            [
                "spawned-stream shards",
                str(row["jobs"]),
                row["pool"],
                f"{row['trials_per_sec']:,.0f}",
                f"{row['speedup_vs_legacy']:.2f}x",
            ]
        )
    print_table(
        f"P1: sharded Monte-Carlo, Raft n={N}, {mc['cells']}x{mc['trials_per_cell']:,} "
        f"trials ({payload['cpu_count']} CPUs visible)",
        ["path", "jobs", "pool", "trials/sec", "speedup"],
        rows,
    )
    eng = payload["engine"]
    print_table(
        f"P1: engine ExecutionPolicy, {eng['scenarios']} Monte-Carlo scenarios",
        ["policy", "scenarios/sec"],
        [
            ["serial", f"{eng['serial_scenarios_per_sec']:.2f}"],
            [f"thread jobs={MAX_JOBS}", f"{eng['thread_jobs4_scenarios_per_sec']:.2f}"],
            [f"process jobs={MAX_JOBS}", f"{eng['process_jobs4_scenarios_per_sec']:.2f}"],
        ],
    )


@pytest.mark.bench
def test_parallel_scaling():
    payload = measure_all()
    _print_report(payload)
    mc = payload["monte_carlo"]
    assert mc["jobs1_bit_identical_to_baseline"]
    assert mc["spawn_deterministic_across_jobs_and_pools"]
    assert payload["engine"]["policy_deterministic_across_jobs"]
    if payload["cpu_count"] >= MAX_JOBS:
        assert mc["speedup_jobs4_vs_jobs1"] >= 2.0, (
            f"jobs={MAX_JOBS} only {mc['speedup_jobs4_vs_jobs1']:.2f}x over jobs=1 "
            f"on {payload['cpu_count']} CPUs"
        )
    else:
        # A single-core container cannot exhibit parallel speedup; the JSON
        # records cpu_limited=true so downstream readers know why.
        assert payload["cpu_limited"]


def main() -> None:
    payload = measure_all()
    _print_report(payload)
    print(json.dumps(payload, indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
