"""Q1 — Query/Answer throughput: engine backends vs legacy per-call loops.

Two workloads from the time-domain front door:

* **Batched Markov solves** — a block of ``AvailabilityQuery`` rows over a
  handful of distinct chains (many quorum/window questions per chain)
  through :meth:`ReliabilityEngine.run`, against the legacy loop that
  called :meth:`ClusterMarkovModel.steady_state_availability` once per
  question (one CTMC solve *each*).  The engine solves each chain once
  and answers every question of that chain from the shared π —
  bit-identical by assertion.  A resubmission measures the memo cache.
* **Sharded simulation campaigns** — a seeded ``SimulationQuery`` fanned
  across ``ExecutionPolicy`` workers, against the hand-written loop every
  consumer wrote before: build a cluster, inject sampled faults, run,
  audit, per replica.  Verdict counts are asserted identical at every
  worker count (the CI container is single-core, so the parallel ratio is
  recorded, not asserted).

Emits ``BENCH_queries.json`` at the repo root.  Run as pytest
(``pytest benchmarks/bench_queries.py -s``) or directly
(``python benchmarks/bench_queries.py``); both write the JSON.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.engine import (
    AvailabilityQuery,
    ExecutionPolicy,
    QuerySet,
    ReliabilityEngine,
    Scenario,
    SimulationQuery,
)
from repro.faults.mixture import uniform_fleet
from repro.markov.builders import ClusterMarkovModel
from repro.protocols.raft import RaftSpec

from conftest import print_table

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_queries.json"

REPEATS = 3

#: Markov workload: chains × quorum questions per chain.
CHAIN_N = 79
CHAIN_RATES = (1e-5, 2e-5, 4e-5, 8e-5)
QUORUMS = tuple(range(CHAIN_N // 2 + 1, CHAIN_N + 1))  # 40 quorums per chain

#: Simulation workload.
SIM_REPLICAS = 24
SIM_DURATION = 6.0
SIM_COMMANDS = 2
SIM_SEED = 2025


def _best(fn, repeats: int = REPEATS):
    best_seconds, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds, result = elapsed, value
    return best_seconds, result


def build_markov_queries() -> QuerySet:
    scenario = Scenario(
        spec=RaftSpec(CHAIN_N), fleet=uniform_fleet(CHAIN_N, 0.01), label="markov"
    )
    queries = []
    for rate in CHAIN_RATES:
        for quorum in QUORUMS:
            queries.append(
                AvailabilityQuery(
                    scenario,
                    failure_rate_per_hour=rate,
                    repair_rate_per_hour=1.0 / 24.0,
                    quorum_size=quorum,
                )
            )
    return QuerySet.build(queries)


def measure_markov() -> dict:
    queries = build_markov_queries()

    def legacy_loop():
        values = []
        for query in queries:
            model = ClusterMarkovModel(
                query.n,
                query.failure_rate_per_hour,
                query.repair_rate_per_hour,
                repair_slots=query.repair_slots,
            )
            values.append(model.steady_state_availability(query.resolved_quorum))
        return values

    def engine_run():
        answers = ReliabilityEngine().run(queries)
        return [answer.value.availability for answer in answers]

    legacy_seconds, legacy_values = _best(legacy_loop)
    engine_seconds, engine_values = _best(engine_run)
    assert engine_values == legacy_values, (
        "engine availability answers must be bit-identical to the builder loop"
    )

    engine = ReliabilityEngine(cache_size=4096)
    engine.run(queries)
    start = time.perf_counter()
    cached = engine.run(queries)
    cached_seconds = time.perf_counter() - start
    assert cached.cache_hits == len(queries)
    assert [answer.value.availability for answer in cached] == engine_values

    return {
        "queries": len(queries),
        "chains": len(CHAIN_RATES),
        "chain_states": CHAIN_N + 1,
        "legacy_seconds": legacy_seconds,
        "legacy_queries_per_sec": len(queries) / legacy_seconds,
        "engine_seconds": engine_seconds,
        "engine_queries_per_sec": len(queries) / engine_seconds,
        "speedup_vs_legacy_loop": legacy_seconds / engine_seconds,
        "cached_rerun_seconds": cached_seconds,
        "cached_rerun_queries_per_sec": len(queries) / cached_seconds,
        "bit_identical": True,
    }


def _campaign_query() -> SimulationQuery:
    return SimulationQuery(
        Scenario(
            spec=RaftSpec(3),
            fleet=uniform_fleet(3, 0.2),
            seed=SIM_SEED,
            label="campaign",
        ),
        replicas=SIM_REPLICAS,
        duration=SIM_DURATION,
        commands=SIM_COMMANDS,
    )


def _legacy_campaign() -> tuple[int, int]:
    """The pre-query idiom: a hand-rolled per-replica loop (one shared
    spawned-stream family, same as the backend, so counts line up)."""
    from repro.analysis.kernels import spawn_shard_generators
    from repro.analysis.montecarlo import sample_configuration
    from repro.sim import Cluster, audit_run, plan_from_config
    from repro.sim.raft import raft_node_factory

    query = _campaign_query()
    scenario = query.scenario
    unsafe = stalled = 0
    for rng in spawn_shard_generators(scenario.seed, query.replicas):
        config = sample_configuration(scenario.fleet, rng)
        cluster = Cluster(scenario.fleet.n, raft_node_factory(), seed=rng)
        plan_from_config(
            config, duration=query.duration, crash_window=query.crash_window, seed=rng
        ).apply(cluster)
        cluster.start()
        commands = [f"cmd-{i}" for i in range(query.commands)]
        at = 1.0
        for command in commands:
            cluster.submit(command, at=at)
            at += 0.1
        cluster.run_until(query.duration)
        correct = sorted(set(range(scenario.fleet.n)) - set(config.failed_indices))
        verdict = audit_run(cluster.trace, commands, correct_nodes=correct)
        unsafe += not verdict.safe
        stalled += not verdict.live
    return unsafe, stalled


def measure_simulation() -> dict:
    legacy_seconds, legacy_counts = _best(_legacy_campaign, repeats=1)

    def engine_serial():
        answer = ReliabilityEngine(cache_size=0).run_query(_campaign_query())
        return answer.value

    def engine_threads():
        answer = ReliabilityEngine(cache_size=0).run_query(
            _campaign_query(), policy=ExecutionPolicy(mode="thread", jobs=4)
        )
        return answer.value

    serial_seconds, serial_value = _best(engine_serial, repeats=1)
    thread_seconds, thread_value = _best(engine_threads, repeats=1)

    serial_counts = (serial_value.safety_violations, serial_value.liveness_violations)
    thread_counts = (thread_value.safety_violations, thread_value.liveness_violations)
    assert serial_counts == thread_counts == legacy_counts, (
        "campaign verdict counts must not depend on the execution path"
    )

    return {
        "replicas": SIM_REPLICAS,
        "duration": SIM_DURATION,
        "cpu_count": os.cpu_count(),
        "legacy_seconds": legacy_seconds,
        "legacy_replicas_per_sec": SIM_REPLICAS / legacy_seconds,
        "engine_serial_seconds": serial_seconds,
        "engine_serial_replicas_per_sec": SIM_REPLICAS / serial_seconds,
        "engine_thread_jobs4_seconds": thread_seconds,
        "engine_thread_jobs4_replicas_per_sec": SIM_REPLICAS / thread_seconds,
        "thread_speedup_vs_serial": serial_seconds / thread_seconds,
        "counts_identical_across_paths": True,
        "safety_violations": legacy_counts[0],
        "liveness_violations": legacy_counts[1],
    }


def _merge_json(section: str, payload: dict) -> None:
    data = {}
    if JSON_PATH.exists():
        data = json.loads(JSON_PATH.read_text())
    data[section] = payload
    JSON_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


@pytest.mark.bench
def test_markov_query_batching():
    result = measure_markov()
    _merge_json("markov_availability", result)
    print_table(
        f"Q1a: {result['queries']} availability queries over "
        f"{result['chains']} chains ({result['chain_states']} states each)",
        ["path", "queries/sec"],
        [
            ["builder per-call loop", f"{result['legacy_queries_per_sec']:,.0f}"],
            ["engine batched run", f"{result['engine_queries_per_sec']:,.0f}"],
            ["engine cached rerun", f"{result['cached_rerun_queries_per_sec']:,.0f}"],
            ["speedup vs loop", f"{result['speedup_vs_legacy_loop']:.1f}x"],
        ],
    )
    assert result["speedup_vs_legacy_loop"] >= 2.0, (
        f"batched Markov solves only {result['speedup_vs_legacy_loop']:.1f}x "
        "over the per-call loop"
    )


@pytest.mark.bench
def test_simulation_campaign_sharding():
    result = measure_simulation()
    _merge_json("simulation_campaign", result)
    print_table(
        f"Q1b: {result['replicas']}-replica seeded campaign (raft n=3)",
        ["path", "replicas/sec"],
        [
            ["hand-rolled loop", f"{result['legacy_replicas_per_sec']:,.1f}"],
            ["engine serial", f"{result['engine_serial_replicas_per_sec']:,.1f}"],
            ["engine thread jobs=4", f"{result['engine_thread_jobs4_replicas_per_sec']:,.1f}"],
            ["thread speedup", f"{result['thread_speedup_vs_serial']:.2f}x"],
        ],
    )
    # Single-core CI cannot show wall-clock scaling; the determinism
    # contract (identical counts on every path) is asserted inside.


def main() -> None:
    _merge_json("markov_availability", measure_markov())
    _merge_json("simulation_campaign", measure_simulation())
    print(json.dumps(json.loads(JSON_PATH.read_text()), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
