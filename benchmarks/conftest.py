"""Shared helpers for the benchmark/reproduction harness.

Each ``bench_*.py`` regenerates one table, figure or quantitative claim
from the paper: the ``benchmark`` fixture times the computation, the
printed output (run with ``-s`` to see it) mirrors the paper's rows, and
assertions pin the *shape* of each result (who wins, by what factor).
"""

from __future__ import annotations

from typing import Sequence


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]) -> None:
    """Render a paper-style table to stdout."""
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    print(f"\n{title}")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
