"""E4 — Raft and PBFT underutilize reliable nodes (paper §3).

Reproduces the three-step narrative on the mixed 7-node cluster:

1. 7 × p=8% Raft: 99.88% safe-and-live;
2. replace 3 nodes with p=1% — oblivious Raft improves only to ~99.98%;
3. require every persistence quorum to include ≥1 reliable node →
   durability 99.994%.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability, predicate_probability
from repro.faults.mixture import NodeModel, heterogeneous_fleet, uniform_fleet
from repro.protocols.raft import RaftSpec
from repro.protocols.reliability_aware import (
    ObliviousDurabilityRaftSpec,
    ReliabilityAwareRaftSpec,
)

from conftest import print_table


def _compute():
    spec = RaftSpec(7)
    all_flaky = counting_reliability(spec, uniform_fleet(7, 0.08))
    mixed = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
    upgraded = counting_reliability(spec, mixed)
    d_oblivious = predicate_probability(mixed, ObliviousDurabilityRaftSpec(7).is_durable)
    pinned_spec = ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], require_pinned=1)
    d_pinned = predicate_probability(mixed, pinned_spec.is_durable)
    d_adversarial = predicate_probability(
        mixed,
        ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6], placement="adversarial").is_durable,
    )
    return all_flaky, upgraded, d_oblivious, d_pinned, d_adversarial


def test_heterogeneous_quorums(benchmark):
    all_flaky, upgraded, d_oblivious, d_pinned, d_adversarial = benchmark(_compute)
    print_table(
        "E4: reliable nodes in a 7-node Raft cluster (paper: 99.88 / ~99.98 / 99.994)",
        ["configuration", "metric", "value"],
        [
            ["7 x 8%", "safe&live", format_probability(all_flaky.safe_and_live.value)],
            ["4 x 8% + 3 x 1% (oblivious)", "safe&live", format_probability(upgraded.safe_and_live.value)],
            ["4 x 8% + 3 x 1% (oblivious)", "durability", format_probability(d_oblivious)],
            ["pinned quorums (policy)", "durability", format_probability(d_pinned)],
            ["pinned quorums (adversarial)", "durability", format_probability(d_adversarial)],
        ],
    )
    # Step 1: the baseline row of Table 2.
    assert all_flaky.safe_and_live.value * 100 == pytest.approx(99.88, abs=0.005)
    # Step 2: upgrading 3 of 7 nodes helps surprisingly little.
    assert 99.97 <= upgraded.safe_and_live.value * 100 <= 99.99
    # Step 3: the paper's 99.994% durability under pinned quorums.
    assert d_pinned * 100 == pytest.approx(99.994, abs=0.001)
    # Ordering: oblivious < adversarial-pinned < policy-pinned.
    assert d_oblivious < d_adversarial < d_pinned
