"""A5 — faults are neither purely crash nor Byzantine (paper §2 point 4).

"Most nodes fail by crashing but from time to time exhibit malicious
behavior ... corruption execution errors are much rarer (approx. 0.01% at
Google) than traditional server faults (4% Annual Failure Rate)."

This bench analyses that exact regime: nodes with 4%-AFR crash mass and a
0.01% Byzantine sliver, compared across three fault models at equal or
comparable cluster sizes:

* **Raft** (CFT) — cheap, but *any* Byzantine event voids safety;
* **PBFT** (BFT) — safe against the sliver, pays 3f+1 replication;
* **Upright** (hybrid u/r) — the paper's §5 middle road: budget one
  commission failure without pricing every fault as Byzantine.
"""

from __future__ import annotations

import pytest

from repro.analysis import counting_reliability, format_probability, nines
from repro.faults.mixture import Fleet, NodeModel
from repro.protocols.hybrid import UprightSpec
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec

from conftest import print_table

#: The paper's §2 numbers per ~1-month window: 4% AFR crash mass ≈ 0.33%
#: per window; silent corruption 0.01% annually ≈ 8.3e-6 per window.
P_CRASH = 0.0033
P_BYZ = 8.3e-6


def _node() -> NodeModel:
    return NodeModel(p_crash=P_CRASH, p_byzantine=P_BYZ)


def _compute():
    results = {}
    results["Raft n=5"] = counting_reliability(RaftSpec(5), Fleet((_node(),) * 5))
    results["PBFT n=7"] = counting_reliability(PBFTSpec(7), Fleet((_node(),) * 7))
    upright = UprightSpec(u=2, r=1)  # n = 6
    results[f"Upright n={upright.n} (u=2,r=1)"] = counting_reliability(
        upright, Fleet((_node(),) * upright.n)
    )
    return results


def test_hybrid_fault_regime(benchmark):
    results = benchmark(_compute)
    rows = [
        [
            name,
            format_probability(r.safe.value),
            format_probability(r.live.value),
            f"{nines(r.safe_and_live.value):.2f}",
        ]
        for name, r in results.items()
    ]
    print_table(
        f"A5: Google-like mixture (crash {P_CRASH:.2%}/window, Byzantine {P_BYZ:.0e})",
        ["deployment", "Safe %", "Live %", "S&L nines"],
        rows,
    )
    raft = results["Raft n=5"]
    pbft = results["PBFT n=7"]
    upright = results["Upright n=6 (u=2,r=1)"]
    # Raft's safety is capped by the Byzantine sliver: ~5 * 8.3e-6.
    assert 1 - raft.safe.value == pytest.approx(5 * P_BYZ, rel=0.05)
    # PBFT and Upright push safety far beyond the sliver.
    assert pbft.safe.value > raft.safe.value
    assert upright.safe.value > raft.safe.value
    # The hybrid's ~9 safety nines sit far beyond any liveness-driven SLO
    # (liveness caps the deployment near 6 nines), so the marginal safety
    # PBFT buys with its 7th replica is unusable headroom.
    assert nines(upright.safe.value) > nines(upright.live.value) + 2.0
    # With one node fewer than PBFT, Upright is also *more* live.
    assert upright.live.value > pbft.live.value


def test_byzantine_sliver_dominates_raft_at_scale(benchmark):
    """Adding Raft replicas cannot buy safety nines past the sliver."""

    def sweep():
        return {
            n: counting_reliability(RaftSpec(n), Fleet((_node(),) * n)).safe.value
            for n in (3, 5, 7, 9, 11)
        }

    safety = benchmark(sweep)
    rows = [[str(n), format_probability(s), f"{nines(s):.2f}"] for n, s in safety.items()]
    print_table("A5b: Raft safety vs cluster size under the Byzantine sliver",
                ["N", "Safe %", "nines"], rows)
    # Monotonically *decreasing* safety with size: more nodes, more chances
    # for a mercurial core — the inverse of the usual replication intuition.
    values = list(safety.values())
    assert all(b < a for a, b in zip(values, values[1:]))
