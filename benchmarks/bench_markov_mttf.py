"""E7 — storage-style Markov metrics for consensus clusters (paper §2/§4).

The paper argues consensus should adopt the storage community's MTTF /
MTTDL / steady-state-availability machinery.  This bench computes those
metrics for the deployments of Tables 1-2 and shows the repair-rate
sensitivity that the per-window analysis cannot express.
"""

from __future__ import annotations

import pytest

from repro.faults.afr import afr_to_hourly_rate
from repro.markov.builders import ClusterMarkovModel

from conftest import print_table

AFR = 0.08  # spot-class nodes
MTTR_HOURS = 24.0


def _compute():
    rate = afr_to_hourly_rate(AFR)
    metrics = {}
    for n in (3, 5, 7, 9):
        quorum = n // 2 + 1
        model = ClusterMarkovModel(n, rate, 1.0 / MTTR_HOURS)
        metrics[n] = {
            "mttf_liveness_years": model.mttf_liveness(quorum) / 8766.0,
            "mttdl_years": model.mttdl(quorum) / 8766.0,
            "availability": model.steady_state_availability(quorum),
        }
    return metrics


def test_markov_metrics(benchmark):
    metrics = benchmark(_compute)
    rows = [
        [
            str(n),
            f"{m['mttf_liveness_years']:.2e}",
            f"{m['mttdl_years']:.2e}",
            f"{m['availability']:.10f}",
        ]
        for n, m in metrics.items()
    ]
    print_table(
        f"E7: Markov metrics, AFR={AFR:.0%}, MTTR={MTTR_HOURS:.0f}h",
        ["N", "MTTF-liveness (yr)", "MTTDL (yr)", "steady-state availability"],
        rows,
    )
    # Shape: every metric improves with cluster size.
    for small, large in zip((3, 5, 7), (5, 7, 9)):
        assert metrics[large]["mttf_liveness_years"] > metrics[small]["mttf_liveness_years"]
        assert metrics[large]["mttdl_years"] > metrics[small]["mttdl_years"]
        assert metrics[large]["availability"] > metrics[small]["availability"]
    # For odd majority clusters the MTTDL and liveness thresholds coincide
    # (n - q + 1 == q), so the metrics are equal; never smaller.
    for m in metrics.values():
        assert m["mttdl_years"] >= m["mttf_liveness_years"]
    # With a sub-majority persistence quorum (Flexible Paxos), data loss
    # becomes strictly easier than losing liveness-by-majority.
    model = ClusterMarkovModel(5, afr_to_hourly_rate(AFR), 1.0 / MTTR_HOURS)
    assert model.mttdl(2) < model.mttf_liveness(3)


def test_repair_rate_sensitivity(benchmark):
    """Faster repair is worth more than more replicas — a §4 design lever."""

    def sweep():
        rate = afr_to_hourly_rate(AFR)
        out = {}
        for mttr in (168.0, 24.0, 4.0):
            model = ClusterMarkovModel(5, rate, 1.0 / mttr)
            out[mttr] = model.mttf_liveness(3) / 8766.0
        return out

    result = benchmark(sweep)
    rows = [[f"{mttr:.0f}h", f"{years:.2e} yr"] for mttr, years in result.items()]
    print_table("E7b: 5-node MTTF-liveness vs repair time", ["MTTR", "MTTF"], rows)
    assert result[4.0] > result[24.0] > result[168.0]
    big_slow = ClusterMarkovModel(9, afr_to_hourly_rate(AFR), 1.0 / 168.0).mttf_liveness(5)
    small_fast = ClusterMarkovModel(5, afr_to_hourly_rate(AFR), 1.0 / 4.0).mttf_liveness(3)
    assert small_fast > big_slow
