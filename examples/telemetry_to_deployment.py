#!/usr/bin/env python3
"""Scenario: from fleet telemetry to a deployment decision (paper §2/§4).

The full pipeline the paper envisions:

1. ingest a fleet's failure log (here: the synthetic substrate standing in
   for Backblaze-style drive stats);
2. fit per-model fault curves by maximum likelihood;
3. project the curves onto the next maintenance window to build a fleet
   description;
4. analyze candidate deployments, pick reliable nodes to pin, and rank
   leader candidates;
5. schedule preemptive reconfiguration as the hardware ages.

Run:  python examples/telemetry_to_deployment.py
"""

from repro.analysis import analyze, format_probability, predicate_probability
from repro.faults.mixture import NodeModel
from repro.planner.leader import rank_leaders
from repro.planner.reconfig import PreemptiveReconfigPolicy
from repro.protocols.raft import RaftSpec
from repro.protocols.reliability_aware import (
    ObliviousDurabilityRaftSpec,
    ReliabilityAwareRaftSpec,
)
from repro.telemetry import (
    fit_model_curves,
    fleet_from_telemetry,
    generate_fleet_telemetry,
)

WINDOW_HOURS = 720.0  # 30-day maintenance window
DEPLOYMENT_AGE_HOURS = 8766.0  # 1-year-old hardware


def main() -> None:
    # -- 1+2. telemetry -> fitted fault curves ---------------------------------
    print("generating 2 years of synthetic fleet telemetry...")
    telemetry = generate_fleet_telemetry(machines_per_model=250, seed=2024)
    fits = fit_model_curves(telemetry)
    print(f"{len(telemetry.records)} machines, {len(telemetry.shocks)} rollout shocks\n")
    print("fitted fault curves (per hardware model):")
    for name, fit in sorted(fits.items()):
        p_window = fit.curve.failure_probability(
            DEPLOYMENT_AGE_HOURS, DEPLOYMENT_AGE_HOURS + WINDOW_HOURS
        )
        print(
            f"  {name:<8} best fit: {fit.fit.model_name:<9} "
            f"observed AFR {fit.observed_afr:>6.1%}   window p_fail {p_window:.4f}"
        )

    # -- 3. compose a mixed deployment ------------------------------------------
    composition = [("ECO-R2", 4), ("HMS-D14", 3)]
    fleet = fleet_from_telemetry(
        telemetry,
        composition,
        window_hours=WINDOW_HOURS,
        deployment_age_hours=DEPLOYMENT_AGE_HOURS,
    )
    print(f"\ndeployment: {composition} -> p_fails "
          f"{[round(node.p_fail, 4) for node in fleet]}")

    # -- 4. analyze it ------------------------------------------------------------
    result = analyze(RaftSpec(7), fleet)
    print(f"oblivious Raft safe&live: {format_probability(result.safe_and_live.value)}")

    reliable_indices = [i for i, node in enumerate(fleet) if node.label == "HMS-D14"]
    pinned = ReliabilityAwareRaftSpec(7, pinned=reliable_indices, require_pinned=1)
    d_oblivious = predicate_probability(fleet, ObliviousDurabilityRaftSpec(7).is_durable)
    d_pinned = predicate_probability(fleet, pinned.is_durable)
    print(f"durability, oblivious quorums: {format_probability(d_oblivious)}")
    print(f"durability, pinned quorums:    {format_probability(d_pinned)}")

    ranking = rank_leaders(fleet)
    print(f"leader ranking (best first): {list(ranking.order)} "
          f"(survival {ranking.survival[0]:.4f} vs worst {ranking.survival[-1]:.4f})")

    # -- 5. preemptive reconfiguration over the hardware's life -------------------
    print("\npreemptive reconfiguration (target 4 nines, ECO-R2 fleet aging):")
    curves = [fits["ECO-R2"].curve] * 5
    policy = PreemptiveReconfigPolicy(RaftSpec, 4.0, spare=NodeModel(0.002))
    decisions = policy.simulate_schedule(
        curves, total_hours=30_000.0, window_hours=3_000.0
    )
    for decision in decisions:
        action = (
            f"replaced nodes {[r.node_index for r in decision.replacements]}"
            if decision.acted
            else "no action"
        )
        print(
            f"  t={decision.window_start_hours:>7.0f}h  "
            f"S&L {decision.reliability_before:.6f} -> {decision.reliability_after:.6f}  {action}"
        )


if __name__ == "__main__":
    main()
