#!/usr/bin/env python3
"""Scenario: plan the cheapest consensus fleet for a reliability SLO.

You operate a coordination service that must be 99.95% safe-and-live per
30-day window (≈3.3 nines).  Your cloud offers four node classes — from
pricey on-demand to spot instances that get evicted 8% of the time.  The
paper's argument (§3): with probabilistic analysis you can buy the SLO
with whatever hardware is cheapest, instead of defaulting to "3 reliable
nodes".

The planner routes through the Scenario/Engine API: the whole
(SKU × size) grid is one ScenarioSet submission, so every cluster size is
a single shared counting-DP sweep across SKUs and repeated questions hit
the engine's cache (visible below via engine cache statistics).

Run:  python examples/spot_fleet_planner.py
"""

from repro.engine import default_engine
from repro.analysis.result import format_probability, from_nines
from repro.planner import (
    DEFAULT_PRICE_BOOK,
    RELIABLE_SKU,
    SPOT_SKU,
    DeploymentPlan,
    cost_ratio,
    equivalent_reliability_size,
    find_cheapest_plan,
)

TARGET_NINES = 3.3


def main() -> None:
    print(f"SLO: {format_probability(from_nines(TARGET_NINES))} safe-and-live per window\n")
    print("Price book:")
    for sku in DEFAULT_PRICE_BOOK:
        print(
            f"  {sku.name:<18} p_fail={sku.p_fail:>5.1%}  ${sku.price_per_hour:.2f}/h  "
            f"{sku.power_watts:.0f} W"
        )

    # -- Optimize for dollars -------------------------------------------------
    outcome = find_cheapest_plan(DEFAULT_PRICE_BOOK, TARGET_NINES, sizes=range(3, 16, 2))
    assert outcome.best is not None
    print("\nCandidate frontier (sorted by $/h):")
    for cand in outcome.candidates[:8]:
        marker = " <-- cheapest feasible" if cand is outcome.best else ""
        print(
            f"  {cand.plan.describe():<55} S&L {format_probability(cand.reliability):>12}{marker}"
        )

    # -- Compare against the naive reliable-node deployment -------------------
    naive = DeploymentPlan(RELIABLE_SKU, 3)
    print(f"\nnaive plan:  {naive.describe()}")
    print(f"best plan:   {outcome.best.plan.describe()}")
    print(f"cost ratio:  {cost_ratio(naive, outcome.best.plan):.2f}x cheaper")

    # -- The paper's exact equivalence claim -----------------------------------
    match = equivalent_reliability_size(naive, SPOT_SKU)
    assert match is not None
    print(
        f"\nequivalence: {match.plan.count} spot nodes match 3 reliable nodes "
        f"({format_probability(match.reliability)} vs 99.9702%)"
    )

    # -- Or optimize for embodied carbon instead -------------------------------
    green = find_cheapest_plan(
        DEFAULT_PRICE_BOOK, TARGET_NINES, sizes=range(3, 16, 2), objective="carbon"
    )
    assert green.best is not None
    print(f"\nlowest-carbon feasible plan: {green.best.plan.describe()}")
    print(f"  (refurbished nodes carry zero embodied carbon in this price book)")

    # -- Under the hood: one engine, shared sweeps, cached repeats -------------
    engine = default_engine()
    print(
        f"\nengine: {engine.cache_hits} cache hits / "
        f"{engine.cache_misses} computed scenarios this run"
    )
    print("  (the carbon scan re-asked the dollar scan's questions: all cache hits)")


if __name__ == "__main__":
    main()
