#!/usr/bin/env python3
"""Scenario: a probability-native replicated store, end to end (paper §4).

Designs a key-value store the way the paper says future systems should be
designed — from fault curves and nines targets instead of f-thresholds:

1. size a *sampled* persistence quorum so that per-window durability meets
   an S3-style target (instead of defaulting to a majority);
2. run the sampled-quorum replication protocol on the simulator and verify
   payloads land exactly on the sampled holders;
3. stress the design with window failures and compare measured data loss
   against the closed form;
4. emit the end-to-end SLO sheet (availability + durability nines).

Run:  python examples/probability_native_store.py
"""

import numpy as np

from repro.planner.slo import slo_report
from repro.quorums.committee import prob_committee_all_faulty, required_committee_size
from repro.sim import Cluster
from repro.sim.sampled import sampled_quorum_factory, slot_survivors

POOL = 30  # node pool size
P_WINDOW = 0.08  # per-window node failure probability (spot-class)
DURABILITY_TARGET_NINES = 6.0


def main() -> None:
    # -- 1. probability-native quorum sizing -----------------------------------
    k = required_committee_size(P_WINDOW, DURABILITY_TARGET_NINES)
    majority = POOL // 2 + 1
    print(f"pool of {POOL} nodes, window failure probability {P_WINDOW:.0%}")
    print(f"target: {DURABILITY_TARGET_NINES:.0f} nines of per-window durability")
    print(f"  f-threshold design:       majority quorum of {majority} copies")
    print(f"  probability-native design: sampled quorum of {k} copies "
          f"(loss risk {prob_committee_all_faulty(P_WINDOW, k):.1e})")
    print(f"  replication cost saved:   {majority - k} copies per write\n")

    # -- 2. run the protocol -----------------------------------------------------
    cluster = Cluster(POOL, sampled_quorum_factory(quorum_size=k), seed=11)
    cluster.start()
    keys = [f"user:{i}" for i in range(25)]
    for i, key in enumerate(keys):
        cluster.submit(key, at=0.2 + 0.05 * i)
    cluster.run_until(4.0)
    leader = cluster.nodes[0]
    print(f"committed {len(leader.committed)} writes; placement check:")
    sample_slot = next(iter(leader.committed))
    print(f"  slot {sample_slot}: sampled quorum {sorted(leader.sampled_quorums[sample_slot])}, "
          f"holders {sorted(slot_survivors(cluster, sample_slot))}\n")

    # -- 3. failure-window stress test --------------------------------------------
    rng = np.random.default_rng(7)
    runs, lost, total = 60, 0, 0
    for run in range(runs):
        trial = Cluster(POOL, sampled_quorum_factory(quorum_size=k), seed=500 + run)
        trial.start()
        for i in range(5):
            trial.submit(f"w{run}-{i}", at=0.2 + 0.05 * i)
        trial.run_until(2.0)
        committed = list(trial.nodes[0].committed)
        for node in range(POOL):
            if rng.random() < P_WINDOW:
                trial.nodes[node].crash()
        trial.run_until(2.5)
        for slot in committed:
            total += 1
            lost += not slot_survivors(trial, slot)
    predicted = prob_committee_all_faulty(P_WINDOW, k)
    print(f"stress test: {total} committed writes across {runs} failure windows")
    print(f"  predicted loss rate {predicted:.2e}; observed {lost}/{total}"
          f" ({'consistent' if lost <= max(3, 10 * predicted * total) else 'INCONSISTENT'})\n")

    # -- 4. the end-to-end guarantee sheet -----------------------------------------
    report = slo_report(
        n=POOL,
        node_afr=0.3,  # spot-class annualized
        mean_time_to_repair_hours=2.0,
        election_seconds=0.0,  # fixed-leader design; leader HA out of scope
        loss_probability_per_window=predicted,
        window_hours=730.5,
    )
    print("end-to-end SLO sheet:")
    print(f"  {report.summary()}")


if __name__ == "__main__":
    main()
