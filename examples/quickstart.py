#!/usr/bin/env python3
"""Quickstart: probabilistic reliability of a consensus deployment.

Reproduces the paper's headline numbers in a dozen lines: consensus is
probabilistic whether you like it or not, and knowing the probabilities
lets you buy the same nines for a third of the price.

Run:  python examples/quickstart.py
"""

from repro import (
    PBFTSpec,
    RaftSpec,
    analyze,
    byzantine_fleet,
    format_probability,
    nines,
    uniform_fleet,
)


def main() -> None:
    # -- 1. "Raft with N=3 is only 3 nines safe and live" (§1) ----------
    result = analyze(RaftSpec(3), uniform_fleet(3, p_fail=0.01))
    print("3-node Raft, 1% node failure probability:")
    print(f"  safe:          {format_probability(result.safe.value)}")
    print(f"  live:          {format_probability(result.live.value)}")
    print(f"  safe & live:   {format_probability(result.safe_and_live.value)}"
          f"  ({nines(result.safe_and_live.value):.2f} nines)")

    # -- 2. Nine flaky nodes buy the same guarantee (§3) ----------------
    cheap = analyze(RaftSpec(9), uniform_fleet(9, p_fail=0.08))
    print("\n9-node Raft on 8%-failure spot instances:")
    print(f"  safe & live:   {format_probability(cheap.safe_and_live.value)}")
    print("  -> same nines; at 10x cheaper nodes this is a ~3.3x cost cut")

    # -- 3. PBFT's quorum sizes hide a safety/liveness dial (§3) --------
    print("\nPBFT at p=1% (every failure Byzantine):")
    for n in (4, 5, 7):
        r = analyze(PBFTSpec(n), byzantine_fleet(n, 0.01))
        print(
            f"  N={n}: safe {format_probability(r.safe.value):>12}  "
            f"live {format_probability(r.live.value):>9}"
        )
    print("  -> 5 nodes are dramatically safer than 4, and safer than 7")


if __name__ == "__main__":
    main()
