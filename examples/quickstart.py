#!/usr/bin/env python3
"""Quickstart: probabilistic reliability of a consensus deployment.

Reproduces the paper's headline numbers in a dozen lines, using the
Scenario/Engine front door: every reliability question is a `Scenario`,
batches of questions are a `ScenarioSet`, and the `ReliabilityEngine`
picks estimators, shares DP sweeps across same-size scenarios, and caches
repeated questions.

Run:  python examples/quickstart.py
"""

from repro import (
    PBFTSpec,
    RaftSpec,
    Scenario,
    ScenarioSet,
    byzantine_fleet,
    default_engine,
    format_probability,
    nines,
    uniform_fleet,
)
from repro.engine import ExecutionPolicy


def main() -> None:
    engine = default_engine()

    # -- 1. "Raft with N=3 is only 3 nines safe and live" (§1) ----------
    question = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, p_fail=0.01))
    result = engine.run_one(question).result
    print("3-node Raft, 1% node failure probability:")
    print(f"  safe:          {format_probability(result.safe.value)}")
    print(f"  live:          {format_probability(result.live.value)}")
    print(f"  safe & live:   {format_probability(result.safe_and_live.value)}"
          f"  ({nines(result.safe_and_live.value):.2f} nines)")

    # -- 2. Nine flaky nodes buy the same guarantee (§3) ----------------
    cheap = engine.run_one(
        Scenario(spec=RaftSpec(9), fleet=uniform_fleet(9, p_fail=0.08))
    ).result
    print("\n9-node Raft on 8%-failure spot instances:")
    print(f"  safe & live:   {format_probability(cheap.safe_and_live.value)}")
    print("  -> same nines; at 10x cheaper nodes this is a ~3.3x cost cut")

    # -- 3. PBFT's quorum sizes hide a safety/liveness dial (§3) --------
    # A ScenarioSet runs the whole sweep in one engine submission.
    sweep = ScenarioSet.build(
        Scenario(spec=PBFTSpec(n), fleet=byzantine_fleet(n, 0.01), label=f"N={n}")
        for n in (4, 5, 7)
    )
    print("\nPBFT at p=1% (every failure Byzantine):")
    for outcome in engine.run(sweep):
        r = outcome.result
        print(
            f"  {outcome.scenario.label}: safe {format_probability(r.safe.value):>12}  "
            f"live {format_probability(r.live.value):>9}"
        )
    print("  -> 5 nodes are dramatically safer than 4, and safer than 7")

    # -- 4. Parallel execution: same answers, every core busy -----------
    # An ExecutionPolicy fans a scenario set across worker threads or
    # processes.  Monte-Carlo trial budgets shard into SeedSequence-spawned
    # streams whose plan depends only on the budget — so the numbers below
    # are identical for jobs=1, jobs=2 or jobs=16 (only the wall-clock
    # changes).  The CLI exposes the same knob as
    # `repro-analyze sweep --n 25 --p 0.01,0.02 --jobs 4`.
    big = ScenarioSet.build(
        Scenario(
            spec=RaftSpec(25),
            fleet=uniform_fleet(25, p),
            method="monte-carlo",
            trials=60_000,
            seed=2025,
            label=f"p={p:g}",
        )
        for p in (0.25, 0.4)
    )
    policy = ExecutionPolicy(mode="thread", jobs=2)
    print("\n25-node Raft under sampled failures, sharded across 2 workers:")
    for outcome in engine.run(big, policy=policy):
        r = outcome.result
        print(
            f"  {outcome.scenario.label}: safe&live "
            f"{format_probability(r.safe_and_live.value)}  "
            f"[{outcome.provenance.describe()}]"
        )
    print("  -> worker count never changes the numbers, only the wall-clock")

    # -- 5. Time-domain queries: one QuerySet, four kinds of question ---
    # A Query couples a Scenario with a *question*.  Point reliability is
    # one kind; the same front door also answers steady-state availability
    # and MTTF/MTTDL (exact CTMC solves, batched per chain) and runs
    # seeded discrete-event simulation campaigns audited by the trace
    # checker (replicas fanned across the policy's workers; answers never
    # depend on the worker count).  One JSON file can mix all four — see
    # `repro-analyze query questions.json`.
    from repro.engine import (
        AvailabilityQuery,
        MTTFQuery,
        QuerySet,
        ReliabilityQuery,
        SimulationQuery,
    )

    deployment = Scenario(
        spec=RaftSpec(5), fleet=uniform_fleet(5, 0.05), seed=11, label="raft-5"
    )
    questions = QuerySet.build(
        [
            ReliabilityQuery(deployment),
            AvailabilityQuery.from_afr(
                deployment, afr=0.08, mttr_hours=24.0, window_hours=720.0
            ),
            MTTFQuery.from_afr(deployment, afr=0.08, mttr_hours=24.0),
            SimulationQuery(deployment, replicas=8, duration=8.0, commands=3),
        ]
    )
    print("\nOne deployment, every kind of question (one engine submission):")
    for answer in engine.run(questions):
        from repro.engine.result import describe_answer_value

        print(
            f"  {answer.kind:>12}: {describe_answer_value(answer.value)}"
            f"  [{answer.provenance.describe()}]"
        )
    print("  -> reliability, availability, MTTF and audited runs share one API")

    # -- 6. Fault plans: declare the adversary, let the engine run it ----
    # A SimulationQuery's `faults` section is a declarative FaultPlan:
    # typed events (crash-stop/recovery, partition/heal, loss and delay
    # bursts, correlated bursts) plus an adversary mix that turns
    # Byzantine outcomes into running misbehaviour classes
    # (equivocating primary, double-voters, silent replicas).  Plans are
    # plain JSON, so the same campaign can live in a query file for
    # `repro-analyze query`.  Below: the paper's Theorem 3.1 attack — two
    # colluding Byzantine nodes in a 4-node PBFT cluster — plus a rack
    # partition that heals, audited over seeded executions.
    from repro.injection import Adversary, FaultPlan, PartitionEvent

    attack = QuerySet.build(
        [
            SimulationQuery(
                Scenario(
                    spec=PBFTSpec(4), fleet=uniform_fleet(4, 0.0), seed=13,
                    label="thm-3.1 attack",
                ),
                replicas=4, duration=8.0, commands=2,
                faults=FaultPlan(adversary=Adversary(nodes=(0, 2))),
            ),
            SimulationQuery(
                Scenario(
                    spec=RaftSpec(5), fleet=uniform_fleet(5, 0.05), seed=13,
                    label="rack partition",
                ),
                replicas=4, duration=10.0, commands=3,
                # The rack uplink dies just before the clients submit
                # (t=1.0-1.2) and never recovers: the cut-off minority can
                # never learn the commits, so the stalls are attributed to
                # the partition era rather than organic failures.
                faults=FaultPlan(
                    events=(
                        PartitionEvent(groups=((0, 1), (2, 3, 4)), at=0.9),
                    ),
                    mean_time_to_repair=4.0,
                ),
            ),
        ]
    )
    print("\nFault plans: adversaries and outages as declarative campaign inputs:")
    for answer in engine.run(attack):
        value = answer.value
        print(
            f"  {answer.query.label:>15}: "
            f"unsafe {value.safety_violations}/{value.replicas}, "
            f"stalled {value.liveness_violations}/{value.replicas} "
            f"({value.partition_era_liveness_violations} partition-era)"
        )
    print("  -> the attack splits the cluster exactly where Thm 3.1 predicts;")
    print("     partition-era stalls are reported separately from organic ones")

    # -- 7. Running campaigns that survive failures ----------------------
    # Long campaigns meet real-world failures of their own: a worker
    # raises, hangs past a deadline, or dies outright.  Supervision knobs
    # on ExecutionPolicy (`timeout`, `retries`, `on_shard_failure`,
    # `checkpoint_dir` — also CLI flags on `repro-analyze query`) route
    # the fan-out through the fault-tolerant runtime.  Retries re-execute
    # the *same* spawned replica streams, so a recovered campaign is
    # bit-identical to one that never failed — provable here by injecting
    # a chaos fault into shard 1 and comparing the serialized answers.
    import json
    import tempfile

    from repro.engine import ChaosPlan, ReliabilityEngine, ShardFault

    campaign = QuerySet.build(
        [
            SimulationQuery(
                Scenario(
                    spec=RaftSpec(5), fleet=uniform_fleet(5, 0.05), seed=17,
                    label="supervised",
                ),
                replicas=8, duration=6.0, commands=2,
            )
        ]
    )

    def run_campaign(**knobs):
        # Fresh engines keep the shared answer memo out of the comparison.
        policy = ExecutionPolicy(
            mode="thread", jobs=2, shard_trials=2, timeout=30.0, **knobs
        )
        return ReliabilityEngine().run(campaign, policy=policy)[0]

    clean = run_campaign(retries=2)
    with tempfile.TemporaryDirectory() as state:
        chaos = ChaosPlan(
            faults=((1, ShardFault("raise", times=1)),), state_dir=state
        )
        recovered = run_campaign(retries=2, chaos=chaos)
    identical = json.dumps(recovered.to_dict()) == json.dumps(clean.to_dict())
    print("\nSupervised campaigns: retries replay the same replica streams:")
    print(f"  crash-free run:  [{clean.provenance.describe()}]")
    print(f"  shard 1 crashed once, retried: answers byte-identical? {identical}")

    # With `on_shard_failure="degrade"` a shard that exhausts its retries
    # is dropped instead of failing the campaign: the answer covers the
    # surviving replicas and its provenance says so (degraded answers are
    # never cached).  A `checkpoint_dir` additionally journals finished
    # shards, so a rerun pointing at the same directory — the CLI's
    # `--resume DIR` — replays them from disk and only executes the rest.
    with tempfile.TemporaryDirectory() as state:
        poison = ChaosPlan(
            faults=((2, ShardFault("raise", times=-1)),), state_dir=state
        )
        partial = run_campaign(on_shard_failure="degrade", chaos=poison)
    value = partial.value
    print("Degraded campaign: shard 2 permanently poisoned, campaign survives:")
    print(
        f"  audited {value.replicas}/8 replicas, dropped shards "
        f"{partial.provenance.dropped_shards}  [{partial.provenance.describe()}]"
    )
    with tempfile.TemporaryDirectory() as journal_dir:
        first = run_campaign(retries=1, checkpoint_dir=journal_dir)
        resumed = run_campaign(retries=1, checkpoint_dir=journal_dir)
        same = json.dumps(resumed.to_dict()) == json.dumps(first.to_dict())
    print(f"  resume from checkpoint journal: byte-identical? {same}")
    print("  -> timeouts, retries, degradation and resume never change answers")

    # -- 8. Determinism contracts: the linter that guards all of the above
    # Everything demonstrated so far leans on one invariant: answers are a
    # pure function of (inputs, seed).  `repro.contracts` checks that
    # statically — ambient RNG construction, wall-clock reads, unsorted
    # set iteration into codecs, unpicklable pool workers, cache-key field
    # drift, swallowed worker errors, half-registered query kinds.  The
    # same checker runs in tier-1 (tests/test_contracts_self.py) and from
    # the CLI: `repro-analyze lint` / `repro-analyze lint --explain RULE`.
    from textwrap import dedent

    from repro.contracts import lint_sources

    sneaky = dedent(
        """
        import numpy as np

        def estimate(spec, trials):
            rng = np.random.default_rng()   # ambient entropy!
            return rng.random(trials).mean()
        """
    )
    findings = lint_sources({"repro/analysis/new_estimator.py": sneaky})
    print("\nDeterminism contracts: what review no longer has to catch by eye:")
    for found in findings:
        print(f"  {found.render()}")
    assert lint_sources({"repro/analysis/new_estimator.py": sneaky.replace(
        "rng = np.random.default_rng()   # ambient entropy!",
        "rng = np.random.default_rng()   # repro: allow[rng-discipline] -- demo",
    )}) == [], "justified suppressions keep the lint quiet"
    print("  -> a seeded campaign cannot silently grow a hidden entropy source")

    # The concurrency families work the same way.  `lock-guard` infers,
    # per class, which attributes the lock discipline protects (whatever
    # is *written* under `with self._lock:`) and flags every lock-free
    # access — this is the rule that re-finds the engine-memo race PR 8
    # had to fix by hand (see tests/test_contracts_concurrency.py).
    racy = dedent(
        """
        import threading

        class AnswerCache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def put(self, key, value):
                with self._lock:
                    self._entries[key] = value

            def get(self, key):
                return self._entries.get(key)   # races put()!
        """
    )
    concurrency_findings = lint_sources(
        {"repro/serve/new_cache.py": racy}, rules=["lock-guard"]
    )
    print("Concurrency contracts: the race a single-threaded test never hits:")
    for found in concurrency_findings:
        print(f"  {found.render()}")
    assert [f.rule for f in concurrency_findings] == ["lock-guard"]
    fixed = racy.replace(
        "        return self._entries.get(key)   # races put()!",
        "        with self._lock:\n"
        "            return self._entries.get(key)",
    )
    assert lint_sources({"repro/serve/new_cache.py": fixed}) == []
    print("  -> guarded writes imply guarded reads, enforced before code ships")

    # -- 9. Serving queries: the engine as a long-running daemon ---------
    # Everything above is batch: the process answers and exits, taking
    # its warm caches with it.  `repro-analyze serve` keeps one engine
    # resident behind an HTTP API — the same Query/QuerySet JSON over
    # POST /v1/query, GET /healthz + /metrics, identical in-flight
    # queries coalesced into a single execution, and every campaign
    # supervised (timeouts, retries, degradation, checkpoint/resume
    # across daemon restarts).  The answers are bit-identical to the
    # batch path; BackgroundServer is the embeddable form used here and
    # in tests.
    import http.client

    from repro.serve import BackgroundServer, ServiceConfig

    request = QuerySet.build(
        [
            ReliabilityQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01),
                         label="served")
            )
        ]
    ).to_json()
    with BackgroundServer(ServiceConfig(port=0)) as server:
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=30)
        conn.request("POST", "/v1/query", body=request)
        first = json.loads(conn.getresponse().read())
        conn.request("POST", "/v1/query", body=request)  # now memo-warm
        second = json.loads(conn.getresponse().read())
        conn.request("GET", "/metrics")
        metrics = json.loads(conn.getresponse().read())
        conn.close()
    direct = default_engine().run_query(
        ReliabilityQuery(
            Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01),
                     label="served")
        )
    )
    served = first["answers"][0]["answer"]
    assert served == second["answers"][0]["answer"]
    assert served["safe_and_live"] == direct.value.safe_and_live.value
    print("\nServing queries: one warm engine behind POST /v1/query:")
    print(f"  served answer: {served['safe_and_live']:.6f} "
          f"(== batch answer? {served['safe_and_live'] == direct.value.safe_and_live.value})")
    print(f"  second request was a cache hit: {bool(second['cache_hits'])}")
    print(f"  /metrics: {metrics['queries_total']} queries, engine hit rate "
          f"{metrics['engine_cache']['hit_rate']:.2f}")
    print("  -> the daemon changes where answers come from, never what they are")

    # -- 10. Observability: a traced campaign you can open in Perfetto --
    # `repro.obs` records the full execution as nested spans — engine
    # planning, per-kind backends, the supervised runtime's per-shard
    # attempt timeline, worker chunks — and exports Chrome trace-event
    # JSON (chrome://tracing or https://ui.perfetto.dev) or a JSONL span
    # log.  Span ids derive from cache-key digests and structural
    # counters, never RNG, and tracing never touches the spawned replica
    # streams: answers are bit-identical with tracing off, on, or
    # exporting (tests/test_obs.py pins this; benchmarks/bench_obs.py
    # holds the disabled-path overhead under 5%).  The same spans come
    # from `repro-analyze query --trace run.json` and `serve --trace`.
    import tempfile

    from repro.engine import SimulationQuery
    from repro.obs import InMemoryExporter, Tracer, use_tracer, write_trace

    campaign = QuerySet.build(
        [
            SimulationQuery(
                Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.2),
                         seed=7, label="traced"),
                replicas=8, duration=5.0, commands=2,
            )
        ]
    )
    exporter = InMemoryExporter()
    tracer = Tracer.for_key(("quickstart", "traced-campaign"),
                            exporter=exporter)
    supervised = ExecutionPolicy.from_jobs(
        2, mode="thread", timeout=30.0, retries=1
    )
    with use_tracer(tracer):
        traced = ReliabilityEngine().run(campaign, policy=supervised)
    untraced = ReliabilityEngine().run(campaign, policy=supervised)
    spans = exporter.records
    shard_spans = [s for s in spans if s.name == "shard"]
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = f"{tmp}/campaign-trace.json"
        write_trace(spans, trace_path)
        events = json.loads(open(trace_path).read())["traceEvents"]
    print("\nObservability: the campaign above as a Perfetto-ready trace:")
    print(f"  spans recorded: {len(spans)} "
          f"({len(shard_spans)} shard attempts on the 'shards' track)")
    print(f"  trace id {tracer.trace_id} (sha256 of the campaign key — no RNG)")
    print(f"  chrome trace events written: {len(events)}")
    identical = json.dumps(traced[0].to_dict()) == json.dumps(
        untraced[0].to_dict()
    )
    print(f"  traced answer == untraced answer, byte for byte? {identical}")
    print("  -> you can watch every shard attempt without changing a single bit")


if __name__ == "__main__":
    main()
