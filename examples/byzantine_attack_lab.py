#!/usr/bin/env python3
"""Scenario: watch Theorem 3.1 happen — PBFT under Byzantine attack.

Drives the simulated PBFT cluster through escalating attacks *via the
engine's Query API*: each attack is a `SimulationQuery` whose embedded
`FaultPlan` declares the adversary (which nodes are Byzantine and which
misbehaviour class each runs).  The campaign answers show the exact
boundary the paper's safety conditions predict:

* 1 equivocating primary in n=4  -> agreement survives (|Byz| < 2|Q_eq|-N);
* 2 colluding Byzantine nodes    -> the correct replicas split;
* the same 2 attackers in n=7    -> bigger quorums absorb them.

Because fault plans are plain JSON, every attack below could equally live
in a query file for `repro-analyze query attacks.json`.

Run:  python examples/byzantine_attack_lab.py
"""

import json

from repro.analysis import analyze, format_probability
from repro.engine import Scenario, SimulationQuery, default_engine
from repro.faults.mixture import byzantine_fleet, uniform_fleet
from repro.injection import Adversary, FaultPlan
from repro.protocols.pbft import PBFTSpec


def attack(
    n: int, byzantine: tuple[int, ...], primary_behaviour: str, label: str
) -> None:
    spec = PBFTSpec(n)
    predicted_safe = spec.is_safe_counts(0, len(byzantine))
    plan = FaultPlan(
        adversary=Adversary(
            nodes=byzantine,
            behaviour="double-vote",
            primary_behaviour=primary_behaviour,
        ),
        sample_faults=False,  # the adversary is the whole fault model here
    )
    answer = default_engine().run_query(
        SimulationQuery(
            Scenario(spec=spec, fleet=uniform_fleet(n, 0.0), seed=99, label=label),
            replicas=1,
            duration=15.0,
            commands=1,
            faults=plan,
        )
    )
    simulated_safe = answer.value.safety_violations == 0

    print(f"{label}")
    print(f"  Theorem 3.1 prediction: safe={predicted_safe} "
          f"(|Byz|={len(byzantine)}, bound={2 * spec.q_eq - n})")
    print(f"  simulated run verdict:  safe={simulated_safe}  "
          f"[{answer.provenance.describe()}]")
    assert simulated_safe == predicted_safe, "simulator disagrees with the theorem!"
    print()


def main() -> None:
    print("== PBFT attack lab: where exactly does safety break? ==\n")
    attack(
        4,
        (0,),
        "equivocate",
        "attack 1: equivocating primary, n=4, f=1",
    )
    attack(
        4,
        (0, 2),
        "equivocate+double-vote",
        "attack 2: equivocating primary + double-voting accomplice, n=4",
    )
    attack(
        7,
        (0, 2),
        "equivocate+double-vote",
        "attack 3: the same two attackers against n=7",
    )

    print("the attack as a declarative, file-ready fault plan:")
    plan = FaultPlan(
        adversary=Adversary(nodes=(0, 2)), sample_faults=False
    )
    print(f"  {json.dumps(plan.to_dict())}\n")

    print("the probabilistic view of the same boundary (every failure Byzantine):")
    for n in (4, 7):
        for p in (0.01, 0.04):
            result = analyze(PBFTSpec(n), byzantine_fleet(n, p))
            print(
                f"  n={n}, p={p:.0%}: P(enough Byzantine nodes to run attack 2) = "
                f"{1 - result.safe.value:.2e}  "
                f"(safe {format_probability(result.safe.value)})"
            )


if __name__ == "__main__":
    main()
