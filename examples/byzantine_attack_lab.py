#!/usr/bin/env python3
"""Scenario: watch Theorem 3.1 happen — PBFT under Byzantine attack.

Runs the simulated PBFT cluster through escalating attacks and shows the
exact boundary the paper's safety conditions predict:

* 1 equivocating primary in n=4  -> agreement survives (|Byz| < 2|Q_eq|-N);
* 2 colluding Byzantine nodes    -> the correct replicas split;
* the same 2 attackers in n=7    -> bigger quorums absorb them.

Run:  python examples/byzantine_attack_lab.py
"""

from repro.analysis import analyze, format_probability
from repro.faults.mixture import byzantine_fleet
from repro.protocols.pbft import PBFTSpec
from repro.sim import Cluster, run_scenario
from repro.sim.checker import check_agreement
from repro.sim.pbft import (
    DoubleVoter,
    EquivocatingDoubleVoter,
    EquivocatingPrimary,
    mixed_pbft_factory,
)


def attack(n: int, byzantine: frozenset[int], primary_class, label: str) -> None:
    spec = PBFTSpec(n)
    predicted_safe = spec.is_safe_counts(0, len(byzantine))
    factory = mixed_pbft_factory(byzantine, DoubleVoter, primary_class=primary_class)
    cluster = Cluster(n, factory, seed=99)
    trace = run_scenario(cluster, commands=["transfer:$1M"], duration=15.0)
    correct = sorted(set(range(n)) - byzantine)
    verdict = check_agreement(trace, correct_nodes=correct)

    print(f"{label}")
    print(f"  Theorem 3.1 prediction: safe={predicted_safe} "
          f"(|Byz|={len(byzantine)}, bound={2 * spec.q_eq - n})")
    print(f"  simulated run verdict:  safe={verdict.holds}")
    for violation in verdict.violations[:2]:
        print(
            f"    !! slot {violation.slot}: node {violation.node_a} committed "
            f"{violation.value_a!r} but node {violation.node_b} committed {violation.value_b!r}"
        )
    assert verdict.holds == predicted_safe, "simulator disagrees with the theorem!"
    print()


def main() -> None:
    print("== PBFT attack lab: where exactly does safety break? ==\n")
    attack(
        4,
        frozenset({0}),
        EquivocatingPrimary,
        "attack 1: equivocating primary, n=4, f=1",
    )
    attack(
        4,
        frozenset({0, 2}),
        EquivocatingDoubleVoter,
        "attack 2: equivocating primary + double-voting accomplice, n=4",
    )
    attack(
        7,
        frozenset({0, 2}),
        EquivocatingDoubleVoter,
        "attack 3: the same two attackers against n=7",
    )

    print("the probabilistic view of the same boundary (every failure Byzantine):")
    for n in (4, 7):
        for p in (0.01, 0.04):
            result = analyze(PBFTSpec(n), byzantine_fleet(n, p))
            print(
                f"  n={n}, p={p:.0%}: P(enough Byzantine nodes to run attack 2) = "
                f"{1 - result.safe.value:.2e}  "
                f"(safe {format_probability(result.safe.value)})"
            )


if __name__ == "__main__":
    main()
