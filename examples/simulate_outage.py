#!/usr/bin/env python3
"""Scenario: replay a correlated-failure outage against real protocol code.

The paper's §2 warns that faults cluster (rollouts, rack incidents) and
that the f-threshold model hides the resulting risk.  This example builds
the same deployment twice and compares:

* the analytical view — independent vs correlated failure models, asked
  through the engine's Scenario front door;
* the campaign view — a SimulationQuery through the same engine: many
  seeded executions of the deployment, audited for agreement/progress,
  reported as violation rates with Wilson bounds;
* the executable view — a discrete-event Raft cluster suffering the
  correlated crash pattern mid-run, audited for agreement and progress;
* the detection view — a φ-accrual failure detector watching the victims'
  heartbeats.

Run:  python examples/simulate_outage.py
"""

from repro.analysis import format_probability
from repro.engine import Scenario, SimulationQuery, default_engine
from repro.faults.correlation import CommonShockModel, ShockGroup
from repro.faults.mixture import uniform_fleet
from repro.injection import CorrelatedBurst, FaultPlan, PartitionEvent
from repro.planner.detector import PhiAccrualDetector
from repro.protocols.raft import RaftSpec
from repro.sim import Cluster, audit_run
from repro.sim.raft import raft_node_factory

N = 5
P_FAIL = 0.05
RACK_SHOCK = ShockGroup(members=(0, 1, 2), probability=0.03, name="rack-0 PDU")


def analytical_comparison() -> None:
    fleet = uniform_fleet(N, P_FAIL)
    spec = RaftSpec(N)
    engine = default_engine()
    independent = engine.run_one(Scenario(spec=spec, fleet=fleet)).result
    correlated = engine.run_one(
        Scenario(
            spec=spec,
            fleet=fleet,
            correlation=CommonShockModel(fleet, (RACK_SHOCK,)),
            trials=200_000,
            seed=7,
        )
    ).result
    print("analytical view (5-node Raft, 5% node failures):")
    print(f"  independent faults:   S&L {format_probability(independent.safe_and_live.value)}")
    print(f"  + rack-0 PDU shock:   S&L {format_probability(correlated.safe_and_live.value)}"
          f"  (95% CI [{correlated.safe_and_live.ci_low:.5f}, {correlated.safe_and_live.ci_high:.5f}])")
    print("  -> one 3%-likely correlated event dominates the risk budget\n")


def campaign_view() -> None:
    """Audited executions through the engine: the same front door that
    answers the analytical question also runs the protocol for real —
    now with the rack incident itself *embedded as a fault plan*: a
    correlated burst (the PDU shock, repaired after ~3s on average) plus
    a transient rack partition while the PDU flaps."""
    plan = FaultPlan(
        events=(
            CorrelatedBurst(
                members=RACK_SHOCK.members,
                at=2.0,
                probability=RACK_SHOCK.probability,
                mean_time_to_repair=3.0,
            ),
            # The PDU flap cuts the rack off across the client submit
            # window (t=1.0-1.2), so any stall it causes is attributed to
            # the partition era.
            PartitionEvent(groups=((0, 1, 2), (3, 4)), at=0.9, heal_at=2.2),
        ),
    )
    answer = default_engine().run_query(
        SimulationQuery(
            Scenario(
                spec=RaftSpec(N),
                fleet=uniform_fleet(N, P_FAIL),
                seed=2025,
                label="raft-5 campaign",
            ),
            replicas=12,
            duration=8.0,
            commands=3,
            faults=plan,
        )
    )
    value = answer.value
    lv = value.liveness_violation_rate
    print("campaign view: 12 seeded executions via SimulationQuery + fault plan")
    print(f"  agreement violations: {value.safety_violations}/{value.replicas}")
    print(f"  stalled runs:         {value.liveness_violations}/{value.replicas}"
          f"  (rate {lv.value:.3f}, 95% CI [{lv.ci_low:.3f}, {lv.ci_high:.3f}])")
    print(f"  partition-era stalls: {value.partition_era_liveness_violations} "
          f"(commands submitted while the rack was partitioned off)")
    print(f"  predicate mismatches: {value.predicate_mismatches} "
          f"(run verdicts vs the paper's Thm 3.2 classification; repaired"
          f" bursts outrun the terminal-window model)")
    print(f"  provenance:           {answer.provenance.describe()}\n")


def executable_replay() -> None:
    print("executable replay: rack-0 loses nodes 0,1,2 at t=2.0s")
    cluster = Cluster(N, raft_node_factory(), seed=42)
    for node in RACK_SHOCK.members:
        cluster.crash_at(node, 2.0)
    # Repair crew brings the rack back 6 seconds later.
    for node in RACK_SHOCK.members:
        cluster.recover_at(node, 8.0)
    cluster.start()
    commands = [f"order-{i}" for i in range(12)]
    at = 0.5
    for command in commands:
        cluster.submit(command, at=at)
        at += 0.5
    cluster.run_until(20.0)

    verdict = audit_run(cluster.trace, commands, correct_nodes=range(N))
    print(f"  agreement held:  {verdict.safe}")
    print(f"  all committed:   {verdict.live} (after the rack recovered)")
    elections = cluster.trace.events_of_kind("election")
    print(f"  elections fought during the outage: {len(elections)}")
    stalled = [
        c.value for c in cluster.trace.commits if 2.0 <= c.time <= 8.0 and c.node_id == 3
    ]
    print(f"  commits reaching node 3 mid-outage: {len(stalled)} "
          f"(quorum was 2/5 — progress impossible)\n")


def detection_view() -> None:
    print("detection view: phi-accrual watching node 0's heartbeats")
    import numpy as np

    rng = np.random.default_rng(3)
    detector = PhiAccrualDetector(threshold=8.0)
    t = 0.0
    while t < 2.0:  # healthy heartbeats every ~30ms (network jitter) until the shock
        detector.heartbeat(t)
        t += float(rng.uniform(0.02, 0.04))
    for silence in (0.05, 0.1, 0.3, 1.0):
        level = detector.level(2.0 + silence)
        print(
            f"  {silence*1000:>5.0f} ms silent: phi={level.phi:>6.2f}  "
            f"suspected={level.suspected}  P(false alarm)={level.false_positive_probability:.2e}"
        )
    print(f"  time to suspicion at phi>=8: "
          f"{detector.time_to_suspicion()*1000:.0f} ms of silence")


def main() -> None:
    analytical_comparison()
    campaign_view()
    executable_replay()
    detection_view()


if __name__ == "__main__":
    main()
