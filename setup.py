"""Setup shim: enables legacy editable installs where `wheel` is absent.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
