"""Result types: probability estimates with uncertainty, formatted as *nines*.

The paper argues guarantees should be reported the way S3 reports
durability — "nines" (§1, §2).  :class:`Estimate` carries a probability
plus (for sampling estimators) a confidence interval; :class:`ReliabilityResult`
bundles the three quantities the paper tabulates: Safe%, Live% and
Safe&Live%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


def nines(probability: float) -> float:
    """Number of nines in ``probability``: ``-log10(1 - p)``.

    ``0.999`` → 3.0; ``1.0`` → ``inf``.  Values below 0 are clamped.
    """
    if probability >= 1.0:
        return math.inf
    complement = 1.0 - probability
    return -math.log10(complement) if complement < 1.0 else 0.0


def from_nines(n: float) -> float:
    """Inverse of :func:`nines`: probability with ``n`` nines."""
    if math.isinf(n):
        return 1.0
    return 1.0 - 10.0 ** (-n)


def format_probability(probability: float, *, max_digits: int = 10) -> str:
    """Render a probability as a percentage with paper-style precision.

    Shows enough digits after the leading 99... run to distinguish values
    like ``99.9990%`` from ``99.90%`` (mirrors the tables in §3).
    """
    if probability >= 1.0 - 1e-12:
        # Indistinguishable from certainty at double precision.
        return "100%"
    if probability <= 0.0:
        return "0%"
    leading_nines = max(0, int(nines(probability)))
    digits = min(max(2, leading_nines), max_digits)
    return f"{probability * 100:.{digits}f}%"


@dataclass(frozen=True)
class Estimate:
    """A probability with optional sampling uncertainty.

    Exact methods leave ``stderr``/CI as ``None``; Monte-Carlo style
    estimators attach a standard error and a 95% confidence interval.
    """

    value: float
    stderr: Optional[float] = None
    ci_low: Optional[float] = None
    ci_high: Optional[float] = None

    @classmethod
    def exact(cls, value: float) -> "Estimate":
        return cls(value=value)

    @property
    def nines(self) -> float:
        """Nines of reliability of the point estimate."""
        return nines(self.value)

    @property
    def is_exact(self) -> bool:
        return self.stderr is None

    def contains(self, probability: float) -> bool:
        """True when ``probability`` lies inside the CI (or equals an exact value)."""
        if self.is_exact or self.ci_low is None or self.ci_high is None:
            return math.isclose(self.value, probability, rel_tol=1e-12, abs_tol=1e-15)
        return self.ci_low <= probability <= self.ci_high

    def __str__(self) -> str:
        if self.is_exact:
            return format_probability(self.value)
        return f"{format_probability(self.value)} ± {self.stderr:.2e}"


@dataclass(frozen=True)
class ReliabilityResult:
    """Safe / Live / Safe&Live probabilities for one (protocol, fleet) pair.

    ``method`` records which estimator produced the numbers ("counting",
    "exact", "monte-carlo", "importance"), and ``detail`` carries
    method-specific metadata such as trial counts.
    """

    protocol: str
    n: int
    safe: Estimate
    live: Estimate
    safe_and_live: Estimate
    method: str
    detail: str = ""

    def row(self) -> dict[str, str]:
        """Formatted table row matching the paper's column layout."""
        return {
            "protocol": self.protocol,
            "N": str(self.n),
            "Safe %": format_probability(self.safe.value),
            "Live %": format_probability(self.live.value),
            "Safe and Live %": format_probability(self.safe_and_live.value),
        }

    def __str__(self) -> str:
        return (
            f"{self.protocol}(n={self.n}) safe={format_probability(self.safe.value)} "
            f"live={format_probability(self.live.value)} "
            f"safe&live={format_probability(self.safe_and_live.value)} [{self.method}]"
        )
