"""Multi-window reliability horizons (paper §2: fault likelihood evolves).

The §3 analysis is per-window.  Deployments live for years, fault curves
age, and operators repair between windows.  This module chains per-window
analyses into horizon-level statements:

* :func:`reliability_over_horizon` — the time series of per-window
  Safe&Live as the fleet ages along its fault curves (the "when does my
  deployment drop below target?" curve);
* :func:`horizon_survival` — P(no bad window over the whole horizon),
  under either the repair model (failed nodes replaced between windows,
  making windows independent) or the no-repair model (failures
  accumulate);
* :func:`first_subtarget_window` — the preemptive-reconfiguration deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.analysis.counting import counting_reliability
from repro.analysis.result import from_nines
from repro.errors import InvalidConfigurationError
from repro.faults.curves import FaultCurve
from repro.faults.mixture import Fleet, NodeModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

SpecFactory = Callable[[int], "ProtocolSpec"]


@dataclass(frozen=True)
class WindowPoint:
    """One window's projected reliability."""

    window_index: int
    start_hours: float
    safe_and_live: float


def fleet_for_window(
    curves: Sequence[FaultCurve], start_hours: float, window_hours: float
) -> Fleet:
    """Project aging fault curves onto one analysis window."""
    if window_hours <= 0:
        raise InvalidConfigurationError("window must be positive")
    return Fleet(
        tuple(
            NodeModel(p_crash=c.failure_probability(start_hours, start_hours + window_hours))
            for c in curves
        )
    )


def reliability_over_horizon(
    spec_factory: SpecFactory,
    curves: Sequence[FaultCurve],
    *,
    window_hours: float,
    n_windows: int,
) -> list[WindowPoint]:
    """Per-window Safe&Live series as the hardware ages.

    Each point conditions on the fleet having been kept at full strength
    (failures repaired with like-for-like hardware of the same age) — the
    standard rolling-window view an SRE dashboard would show.

    The whole horizon is submitted to the reliability engine as one
    :class:`~repro.engine.ScenarioSet` (each scenario stamped with its
    window), landing in a single shared counting-DP sweep; per-window
    values are bit-identical to evaluating each window separately.
    """
    from repro.engine import Scenario, default_engine

    if n_windows <= 0:
        raise InvalidConfigurationError("n_windows must be positive")
    spec = spec_factory(len(curves))
    starts = [index * window_hours for index in range(n_windows)]
    fleets = [fleet_for_window(curves, start, window_hours) for start in starts]
    scenarios = [
        Scenario(
            spec=spec,
            fleet=fleet,
            method="counting",
            window_hours=window_hours,
            label=f"window[{index}] @ {start:g}h",
        )
        for index, (start, fleet) in enumerate(zip(starts, fleets))
    ]
    results = default_engine().run(scenarios).results
    return [
        WindowPoint(
            window_index=index,
            start_hours=start,
            safe_and_live=result.safe_and_live.value,
        )
        for index, (start, result) in enumerate(zip(starts, results))
    ]


def horizon_survival(
    spec_factory: SpecFactory,
    curves: Sequence[FaultCurve],
    *,
    window_hours: float,
    n_windows: int,
    repair_between_windows: bool = True,
) -> float:
    """P(every window over the horizon is safe-and-live).

    With repair, windows are independent (failed hardware is replaced with
    identical-age stock before the next window) and the survival is the
    product of per-window probabilities.  Without repair, a window's
    failures persist: survival is computed on the joint event "never more
    failures than the spec tolerates", evaluated conservatively as the
    probability that cumulative failures stay within the *liveness* budget
    at every window boundary — for constant-hazard curves this reduces to
    one window of the total length, which is the closed form we use.
    """
    if n_windows <= 0:
        raise InvalidConfigurationError("n_windows must be positive")
    if repair_between_windows:
        survival = 1.0
        for point in reliability_over_horizon(
            spec_factory, curves, window_hours=window_hours, n_windows=n_windows
        ):
            survival *= point.safe_and_live
        return survival
    # No repair: failures accumulate, so the horizon behaves as one long
    # window covering [0, n_windows * window_hours].
    spec = spec_factory(len(curves))
    fleet = fleet_for_window(curves, 0.0, n_windows * window_hours)
    return counting_reliability(spec, fleet).safe_and_live.value


def first_subtarget_window(
    spec_factory: SpecFactory,
    curves: Sequence[FaultCurve],
    *,
    window_hours: float,
    target_nines: float,
    max_windows: int = 200,
) -> WindowPoint | None:
    """First window whose projected Safe&Live misses the target.

    This is the deadline a preemptive-reconfiguration policy (§4) must act
    before.  Returns ``None`` when the horizon never dips below target.
    """
    if target_nines <= 0:
        raise InvalidConfigurationError("target_nines must be positive")
    target = from_nines(target_nines)
    for point in reliability_over_horizon(
        spec_factory, curves, window_hours=window_hours, n_windows=max_windows
    ):
        if point.safe_and_live < target:
            return point
    return None


def expected_bad_windows(
    spec_factory: SpecFactory,
    curves: Sequence[FaultCurve],
    *,
    window_hours: float,
    n_windows: int,
) -> float:
    """Expected number of windows violating Safe&Live over the horizon.

    The linearity-of-expectation companion to :func:`horizon_survival`:
    useful for SLO budgeting ("how many bad maintenance windows per year
    should we plan for?").
    """
    points = reliability_over_horizon(
        spec_factory, curves, window_hours=window_hours, n_windows=n_windows
    )
    return float(sum(1.0 - p.safe_and_live for p in points))


def annualized_downtime_minutes(
    window_unreliability: float, *, window_hours: float
) -> float:
    """Translate per-window violation mass into minutes/year of exposure.

    Interprets a violated window as unavailable for its whole duration —
    deliberately conservative, matching the paper's observation that
    recovery time, not just violation probability, drives end-to-end
    availability (§4 "End-to-end guarantees").
    """
    if not 0.0 <= window_unreliability <= 1.0:
        raise InvalidConfigurationError("window_unreliability must be in [0, 1]")
    if window_hours <= 0:
        raise InvalidConfigurationError("window must be positive")
    windows_per_year = 8766.0 / window_hours
    return window_unreliability * windows_per_year * window_hours * 60.0
