"""Monte-Carlo reliability estimation (paper §3 at scale, §2 correlations).

For asymmetric predicates on large fleets — or for correlated failure
models where no polynomial exact method exists — we estimate Safe/Live
probabilities by sampling failure configurations.  Estimates carry Wilson
score confidence intervals, which behave sensibly even when the observed
violation count is zero (common when probing many-nines systems).

Sampling itself is delegated to the vectorized kernels in
:mod:`repro.analysis.kernels`: trials are drawn as chunked ``(m, n)``
uniform blocks and classified with array ops.  Because the blocks consume
the generator stream in the same (trial, node) order as the historical
per-trial loop, seeded runs reproduce the exact tallies of earlier
releases; only the wall-clock changed.

Multi-core throughput comes from the ``jobs=`` parameter: trial budgets are
split into worker-count-independent shard blocks, each sampling its own
``SeedSequence``-spawned stream, fanned over a thread or process pool and
merged in shard order.  Sharded results are deterministic in ``(trials,
seed, shard_trials)`` — never in the worker count — while the legacy
single-stream mode remains the seeded default for bit-compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.result import Estimate, ReliabilityResult
from repro.errors import InvalidConfigurationError
from repro.faults.correlation import CorrelationModel
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


def wilson_interval(successes: int, trials: int, z: float = _Z95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Preferred over the normal approximation because it stays inside
    ``[0, 1]`` and gives non-degenerate intervals at 0 or ``trials``
    successes — exactly the regimes rare-event reliability work lives in.
    """
    if trials <= 0:
        raise InvalidConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise InvalidConfigurationError(f"successes {successes} outside [0, {trials}]")
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return max(0.0, centre - margin), min(1.0, centre + margin)


def estimate_from_counts(successes: int, trials: int) -> Estimate:
    """Binomial proportion as an :class:`Estimate` with a Wilson 95% CI.

    The one construction every sampling consumer shares — the Monte-Carlo
    estimators, predicate sampling, and the engine's simulation-campaign
    violation rates — so the CI convention cannot drift between them.
    """
    phat = successes / trials
    stderr = math.sqrt(max(phat * (1 - phat), 1e-300) / trials)
    low, high = wilson_interval(successes, trials)
    return Estimate(value=phat, stderr=stderr, ci_low=low, ci_high=high)


#: Historical private alias (predates the public name).
_estimate = estimate_from_counts


def sample_configuration(fleet: Fleet, rng: np.random.Generator) -> FailureConfig:
    """Draw one configuration with independent per-node trinomial outcomes."""
    draws = rng.random(fleet.n)
    kinds = []
    for node, u in zip(fleet, draws):
        if u < node.p_crash:
            kinds.append(FaultKind.CRASH)
        elif u < node.p_crash + node.p_byzantine:
            kinds.append(FaultKind.BYZANTINE)
        else:
            kinds.append(FaultKind.CORRECT)
    return FailureConfig(tuple(kinds))


@dataclass(frozen=True)
class MonteCarloReport:
    """Raw tallies from a Monte-Carlo run (exposed for diagnostics)."""

    trials: int
    safe_count: int
    live_count: int
    both_count: int


def monte_carlo_reliability(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    trials: int = 100_000,
    seed: SeedLike = None,
    jobs: int | None = None,
    sharding: str = "auto",
    shard_trials: int | None = None,
    pool: str = "process",
) -> ReliabilityResult:
    """Estimate Safe/Live/Safe&Live by sampling independent configurations.

    Sampling runs on the batched kernel (:mod:`repro.analysis.kernels`):
    chunked ``(trials, n)`` uniform draws, vectorized trinomial
    classification, verdict-mask tallies for symmetric specs and
    unique-row dedup for asymmetric ones.

    **Execution modes.**  With ``jobs`` unset (or 1) the uniform stream is
    consumed in the same (trial, node) order as the historical per-trial
    loop, so a given seed produces exactly the tallies it always did.
    ``jobs > 1`` switches to *spawned-stream* sharding: the trial budget is
    split by :func:`repro.analysis.kernels.plan_shards` into blocks whose
    count depends only on ``(trials, shard_trials)``, each block samples an
    independent ``SeedSequence``-spawned stream, and tallies merge in shard
    order — results are identical for any worker count, but differ from the
    legacy single stream.  ``sharding`` pins the mode explicitly
    (``"legacy"``/``"spawn"``; ``"auto"`` keys off ``jobs``), and ``pool``
    picks the executor (``"thread"``/``"process"``/``"serial"``).
    """
    from repro.analysis.kernels import monte_carlo_tally_sharded, use_spawned_streams

    if fleet.n != spec.n:
        raise InvalidConfigurationError(f"fleet has {fleet.n} nodes but spec expects {spec.n}")
    if trials <= 0:
        raise InvalidConfigurationError(f"trials must be positive, got {trials}")
    if use_spawned_streams(jobs, sharding):
        tally, plan = monte_carlo_tally_sharded(
            spec,
            fleet,
            trials,
            seed,
            jobs=jobs or 1,
            shard_trials=shard_trials,
            mode=pool,
        )
        report = MonteCarloReport(trials, tally.safe, tally.live, tally.both)
        detail = (
            f"{trials} independent trials over {plan.num_shards} "
            f"spawned-stream shards, Wilson 95% CIs"
        )
    else:
        rng = as_generator(seed)
        report = _run_trials(spec, fleet, trials, rng)
        detail = f"{trials} independent trials, Wilson 95% CIs"
    return ReliabilityResult(
        protocol=spec.name,
        n=fleet.n,
        safe=_estimate(report.safe_count, trials),
        live=_estimate(report.live_count, trials),
        safe_and_live=_estimate(report.both_count, trials),
        method="monte-carlo",
        detail=detail,
    )


def _run_trials(
    spec: "ProtocolSpec", fleet: Fleet, trials: int, rng: np.random.Generator
) -> MonteCarloReport:
    """Batched trial runner; seeded streams match the old per-trial loop.

    The pre-kernel implementation memoised per-configuration verdicts in an
    unbounded-until-200k ``dict[FailureConfig, ...]``; the vectorized path
    obsoletes it — symmetric verdicts are O(1) mask lookups and asymmetric
    predicates run once per distinct sampled row via ``np.unique``.
    """
    from repro.analysis.kernels import monte_carlo_tally

    tally = monte_carlo_tally(spec, fleet, trials, rng)
    return MonteCarloReport(trials, tally.safe, tally.live, tally.both)


def monte_carlo_correlated(
    spec: "ProtocolSpec",
    model: CorrelationModel,
    *,
    trials: int = 100_000,
    seed: SeedLike = None,
    failure_kind: FaultKind = FaultKind.CRASH,
) -> ReliabilityResult:
    """Reliability under a correlated failure model (paper §2 point 3).

    The correlation model produces boolean failure vectors; every failure is
    assigned ``failure_kind`` (crash for CFT analysis, Byzantine for the
    worst-case BFT analysis).  Vectors are drawn in chunks through
    ``model.sample_many`` (one-pass vectorized for the built-in models;
    each documents whether its seeded stream matches the historical
    per-trial loop — independent draws do, shock/contagion models draw in
    blocked order) and tallied through the verdict-mask / unique-row
    kernels.
    """
    from repro.analysis.kernels import correlated_tally

    if model.n != spec.n:
        raise InvalidConfigurationError(f"model has {model.n} nodes but spec expects {spec.n}")
    if failure_kind is FaultKind.CORRECT:
        raise InvalidConfigurationError("failure_kind cannot be CORRECT")
    if trials <= 0:
        raise InvalidConfigurationError(f"trials must be positive, got {trials}")
    rng = as_generator(seed)
    tally = correlated_tally(spec, model, trials, rng, failure_kind)
    return ReliabilityResult(
        protocol=spec.name,
        n=spec.n,
        safe=_estimate(tally.safe, trials),
        live=_estimate(tally.live, trials),
        safe_and_live=_estimate(tally.both, trials),
        method="monte-carlo-correlated",
        detail=f"{trials} trials over {type(model).__name__}",
    )


def required_trials_for_ci_width(probability: float, width: float) -> int:
    """Trials needed so a 95% CI around ``probability`` has the given width.

    Planning helper: probing a 5-nines system to ±1e-6 needs ~4e7 trials,
    which tells you to reach for importance sampling instead.
    """
    if not 0.0 < probability < 1.0:
        raise InvalidConfigurationError("probability must be in (0, 1) for planning")
    if width <= 0.0:
        raise InvalidConfigurationError("width must be positive")
    variance = probability * (1.0 - probability)
    return int(math.ceil((2.0 * _Z95) ** 2 * variance / (width * width)))
