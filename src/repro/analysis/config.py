"""Failure configurations (paper §3).

The paper's analysis enumerates the ``2^N`` (or ``3^N`` once crash and
Byzantine outcomes are distinguished) *failure configurations* of a
deployment and classifies each as safe/live under a protocol's invariants.
:class:`FailureConfig` is that object: an assignment of an outcome to every
node for the analysis window.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidConfigurationError


class FaultKind(enum.Enum):
    """Outcome of one node over the analysis window."""

    CORRECT = "correct"
    CRASH = "crash"
    BYZANTINE = "byzantine"

    @property
    def is_failure(self) -> bool:
        return self is not FaultKind.CORRECT


@dataclass(frozen=True)
class FailureConfig:
    """An immutable assignment of a :class:`FaultKind` to every node.

    Index ``i`` of :attr:`kinds` is node ``i``'s outcome.  Configurations
    are hashable so analysis code can memoise predicate evaluations.
    """

    kinds: tuple[FaultKind, ...]

    def __post_init__(self) -> None:
        if not all(isinstance(k, FaultKind) for k in self.kinds):
            raise InvalidConfigurationError("kinds must all be FaultKind members")

    # -- constructors -------------------------------------------------------
    @classmethod
    def all_correct(cls, n: int) -> "FailureConfig":
        """The failure-free configuration of ``n`` nodes."""
        return cls((FaultKind.CORRECT,) * n)

    @classmethod
    def from_failed_indices(
        cls,
        n: int,
        failed: Iterable[int],
        kind: FaultKind = FaultKind.CRASH,
    ) -> "FailureConfig":
        """Configuration where ``failed`` indices have outcome ``kind``."""
        if kind is FaultKind.CORRECT:
            raise InvalidConfigurationError("failed nodes cannot have kind CORRECT")
        kinds = [FaultKind.CORRECT] * n
        for index in failed:
            if not 0 <= index < n:
                raise InvalidConfigurationError(f"node index {index} out of range for n={n}")
            kinds[index] = kind
        return cls(tuple(kinds))

    @classmethod
    def from_counts(cls, n_correct: int, n_crash: int, n_byzantine: int) -> "FailureConfig":
        """Canonical configuration with the given outcome counts.

        Nodes are laid out correct-first, then crashed, then Byzantine;
        symmetric protocol predicates only look at the counts so the layout
        is immaterial for them.
        """
        for name, value in (
            ("n_correct", n_correct),
            ("n_crash", n_crash),
            ("n_byzantine", n_byzantine),
        ):
            if value < 0:
                raise InvalidConfigurationError(f"{name} must be non-negative, got {value}")
        return cls(
            (FaultKind.CORRECT,) * n_correct
            + (FaultKind.CRASH,) * n_crash
            + (FaultKind.BYZANTINE,) * n_byzantine
        )

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    def __iter__(self) -> Iterator[FaultKind]:
        return iter(self.kinds)

    def __getitem__(self, index: int) -> FaultKind:
        return self.kinds[index]

    # -- derived views ----------------------------------------------------------
    @property
    def n(self) -> int:
        """Deployment size."""
        return len(self.kinds)

    @cached_property
    def correct_indices(self) -> frozenset[int]:
        return frozenset(i for i, k in enumerate(self.kinds) if k is FaultKind.CORRECT)

    @cached_property
    def crashed_indices(self) -> frozenset[int]:
        return frozenset(i for i, k in enumerate(self.kinds) if k is FaultKind.CRASH)

    @cached_property
    def byzantine_indices(self) -> frozenset[int]:
        return frozenset(i for i, k in enumerate(self.kinds) if k is FaultKind.BYZANTINE)

    @cached_property
    def failed_indices(self) -> frozenset[int]:
        return self.crashed_indices | self.byzantine_indices

    @property
    def num_correct(self) -> int:
        return len(self.correct_indices)

    @property
    def num_crashed(self) -> int:
        return len(self.crashed_indices)

    @property
    def num_byzantine(self) -> int:
        return len(self.byzantine_indices)

    @property
    def num_failed(self) -> int:
        return self.num_crashed + self.num_byzantine

    def is_correct(self, index: int) -> bool:
        return self.kinds[index] is FaultKind.CORRECT

    def with_kind(self, index: int, kind: FaultKind) -> "FailureConfig":
        """Return a configuration with node ``index`` reassigned to ``kind``."""
        if not 0 <= index < self.n:
            raise InvalidConfigurationError(f"node index {index} out of range for n={self.n}")
        kinds = list(self.kinds)
        kinds[index] = kind
        return FailureConfig(tuple(kinds))

    def describe(self) -> str:
        """Compact human-readable form, e.g. ``.XB.`` (correct, crash, byz, correct)."""
        symbols = {FaultKind.CORRECT: ".", FaultKind.CRASH: "X", FaultKind.BYZANTINE: "B"}
        return "".join(symbols[k] for k in self.kinds)


def config_probability(
    config: FailureConfig,
    crash_probabilities: Sequence[float],
    byzantine_probabilities: Sequence[float],
) -> float:
    """Probability of ``config`` under independent per-node outcome draws."""
    if len(crash_probabilities) != config.n or len(byzantine_probabilities) != config.n:
        raise InvalidConfigurationError("probability vectors must match configuration size")
    probability = 1.0
    for index, kind in enumerate(config.kinds):
        p_crash = crash_probabilities[index]
        p_byz = byzantine_probabilities[index]
        if kind is FaultKind.CRASH:
            probability *= p_crash
        elif kind is FaultKind.BYZANTINE:
            probability *= p_byz
        else:
            probability *= 1.0 - p_crash - p_byz
    return probability
