"""Sensitivity analysis: which node's fault curve matters most?

The paper's §3 observation that "Raft and PBFT underutilize reliable
nodes" begs the operational question: *given this deployment, which node
should I upgrade (or which spare should I deploy) to buy the most
reliability per dollar?*  The classical answer is the **Birnbaum
importance** of component ``u``:

    B_u = ∂P(system works) / ∂p_u = P(works | u correct) − P(works | u failed)

computed here exactly by conditioning the counting DP / enumeration on one
node's outcome.  The upgrade advisor combines Birnbaum importance with the
achievable Δp per node to rank concrete actions.

All-node queries (:func:`importance_ranking`, :func:`reliability_gradient`,
:func:`best_single_upgrade`) run on the one-pass leave-one-out kernel from
:mod:`repro.analysis.kernels` when the spec is symmetric: one O(n^3)
prefix/suffix sweep yields every node's conditional reliabilities, ~2n
times cheaper than re-conditioning the counting DP per node.  Asymmetric
specs keep the per-node exact-enumeration path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.counting import counting_reliability
from repro.analysis.exact import exact_reliability
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet, NodeModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

Metric = str  # "safe" | "live" | "safe_and_live"


def _metric_value(spec: "ProtocolSpec", fleet: Fleet, metric: Metric) -> float:
    result = (
        counting_reliability(spec, fleet)
        if spec.symmetric
        else exact_reliability(spec, fleet)
    )
    if metric == "safe":
        return result.safe.value
    if metric == "live":
        return result.live.value
    if metric == "safe_and_live":
        return result.safe_and_live.value
    raise InvalidConfigurationError(f"unknown metric {metric!r}")


def birnbaum_importance(
    spec: "ProtocolSpec",
    fleet: Fleet,
    node: int,
    *,
    metric: Metric = "safe_and_live",
    failure_kind: FaultKind = FaultKind.CRASH,
) -> float:
    """Exact Birnbaum importance of ``node`` for the chosen metric.

    Conditions the deployment on the node being surely correct versus
    surely failed (``failure_kind``) and differences the metric.  Larger
    values mean the system's reliability is more sensitive to this node's
    fault curve.
    """
    if not 0 <= node < fleet.n:
        raise InvalidConfigurationError(f"node {node} outside fleet of {fleet.n}")
    if failure_kind is FaultKind.CORRECT:
        raise InvalidConfigurationError("failure_kind cannot be CORRECT")
    surely_correct = fleet.replace(node, NodeModel(0.0, 0.0, label=fleet[node].label))
    failed_model = (
        NodeModel(1.0, 0.0, label=fleet[node].label)
        if failure_kind is FaultKind.CRASH
        else NodeModel(0.0, 1.0, label=fleet[node].label)
    )
    surely_failed = fleet.replace(node, failed_model)
    return _metric_value(spec, surely_correct, metric) - _metric_value(
        spec, surely_failed, metric
    )


def _all_birnbaum_scores(
    spec: "ProtocolSpec",
    fleet: Fleet,
    metric: Metric,
    failure_kind: FaultKind,
) -> list[float]:
    """Every node's Birnbaum importance — one kernel pass when symmetric."""
    if spec.symmetric:
        from repro.analysis.kernels import birnbaum_importances

        return [float(score) for score in birnbaum_importances(
            spec, fleet, metric=metric, failure_kind=failure_kind
        )]
    return [
        birnbaum_importance(spec, fleet, node, metric=metric, failure_kind=failure_kind)
        for node in range(fleet.n)
    ]


def importance_ranking(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    metric: Metric = "safe_and_live",
    failure_kind: FaultKind = FaultKind.CRASH,
) -> list[tuple[int, float]]:
    """All nodes ranked by Birnbaum importance, most critical first."""
    scores = list(enumerate(_all_birnbaum_scores(spec, fleet, metric, failure_kind)))
    scores.sort(key=lambda pair: (-pair[1], pair[0]))
    return scores


@dataclass(frozen=True)
class UpgradeOption:
    """One considered upgrade and its exact reliability effect."""

    node: int
    old_p_fail: float
    new_p_fail: float
    reliability_before: float
    reliability_after: float

    @property
    def gain(self) -> float:
        return self.reliability_after - self.reliability_before


def best_single_upgrade(
    spec: "ProtocolSpec",
    fleet: Fleet,
    replacement: NodeModel,
    *,
    metric: Metric = "safe_and_live",
) -> UpgradeOption | None:
    """The single node swap that buys the most reliability.

    Evaluates replacing each node with ``replacement`` exactly and returns
    the best strictly-improving option (``None`` when no swap helps —
    e.g. the replacement is no better than the worst node).
    """
    before = _metric_value(spec, fleet, metric)
    after_values = _replacement_metric_values(spec, fleet, replacement, metric)
    best: UpgradeOption | None = None
    for node in range(fleet.n):
        if replacement.p_fail >= fleet[node].p_fail:
            continue
        option = UpgradeOption(
            node=node,
            old_p_fail=fleet[node].p_fail,
            new_p_fail=replacement.p_fail,
            reliability_before=before,
            reliability_after=after_values(node),
        )
        if option.gain > 0 and (best is None or option.gain > best.gain):
            best = option
    return best


def _replacement_metric_values(
    spec: "ProtocolSpec", fleet: Fleet, replacement: NodeModel, metric: Metric
) -> Callable[[int], float]:
    """Lazy per-node "metric after swapping node u for replacement" values.

    Symmetric specs get all n what-ifs from one O(n^3) leave-one-out kernel
    pass; asymmetric specs fall back to per-node exact evaluation, computed
    only for the nodes actually inspected.
    """
    if spec.symmetric:
        from repro.analysis.kernels import upgrade_metric_values

        values = upgrade_metric_values(
            spec,
            fleet,
            replacement.p_crash,
            replacement.p_byzantine,
            metric=metric,
        )
        return lambda node: float(values[node])
    return lambda node: _metric_value(spec, fleet.replace(node, replacement), metric)


def greedy_upgrade_plan(
    spec: "ProtocolSpec",
    fleet: Fleet,
    replacement: NodeModel,
    budget: int,
    *,
    metric: Metric = "safe_and_live",
) -> list[UpgradeOption]:
    """Greedily spend ``budget`` node swaps, most-valuable first.

    Greedy is exact for symmetric specs on exchangeable metrics (upgrading
    the flakiest node is always optimal); for asymmetric specs it is the
    usual 1-step lookahead heuristic.
    """
    if budget < 0:
        raise InvalidConfigurationError("budget must be non-negative")
    plan: list[UpgradeOption] = []
    current = fleet
    for _ in range(budget):
        option = best_single_upgrade(spec, current, replacement, metric=metric)
        if option is None:
            break
        plan.append(option)
        current = current.replace(option.node, replacement)
    return plan


def reliability_gradient(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    metric: Metric = "safe_and_live",
) -> tuple[float, ...]:
    """∂metric/∂p_fail per node (negative Birnbaum importances).

    The exact linearisation of the deployment's reliability around the
    current fault curves — the object a probability-native control loop
    (preemptive reconfiguration, §4) steers along.
    """
    return tuple(
        -score for score in _all_birnbaum_scores(spec, fleet, metric, FaultKind.CRASH)
    )
