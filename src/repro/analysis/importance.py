"""Importance sampling for rare violation events (paper §4).

Plain Monte-Carlo cannot resolve probabilities like the paper's
"one-in-ten-billion persistence-quorum wipe-out" (§4): at p=1e-10 you would
need ~1e12 trials for a single hit.  Exponential tilting fixes this: sample
failures from *inflated* per-node probabilities ``q_u``, then reweight each
trial by the likelihood ratio ``Π (p_u/q_u)^{x_u} ((1-p_u)/(1-q_u))^{1-x_u}``.
The estimator stays unbiased while concentrating samples where violations
actually occur.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.result import Estimate
from repro.errors import EstimationError, InvalidConfigurationError
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec


@dataclass(frozen=True)
class ImportanceResult:
    """Outcome of an importance-sampled rare-event estimation.

    ``shards`` records how many spawned-stream shards produced the estimate
    (1 for the legacy single-stream mode).
    """

    violation: Estimate
    trials: int
    tilt: tuple[float, ...]
    effective_sample_size: float
    shards: int = 1

    @property
    def reliability(self) -> Estimate:
        """Complement of the violation probability, uncertainty preserved."""
        ci_low = None if self.violation.ci_high is None else 1.0 - self.violation.ci_high
        ci_high = None if self.violation.ci_low is None else 1.0 - self.violation.ci_low
        return Estimate(
            value=1.0 - self.violation.value,
            stderr=self.violation.stderr,
            ci_low=ci_low,
            ci_high=ci_high,
        )


def minimal_violating_failures(
    spec: "ProtocolSpec",
    *,
    predicate: str = "safe",
    failure_kind: FaultKind | None = None,
) -> int | None:
    """Smallest failure count that can violate ``predicate`` (symmetric specs).

    With ``failure_kind`` unset, scans counts 0..n assuming the worst split
    between crash and Byzantine outcomes; with it set, all failures take
    that kind (matching the sampler in :func:`importance_sample_violation`).
    Returns ``None`` when no count violates (e.g. Raft safety with majority
    quorums is unconditionally safe under crash failures).
    """
    if not spec.symmetric:
        raise InvalidConfigurationError("minimal_violating_failures needs a symmetric spec")
    check = _count_predicate(spec, predicate)
    for failures in range(spec.n + 1):
        if failure_kind is FaultKind.CRASH:
            splits = [(failures, 0)]
        elif failure_kind is FaultKind.BYZANTINE:
            splits = [(0, failures)]
        else:
            splits = [(failures - byz, byz) for byz in range(failures + 1)]
        if any(not check(crash, byz) for crash, byz in splits):
            return failures
    return None


def _count_predicate(spec: "ProtocolSpec", predicate: str) -> Callable[[int, int], bool]:
    if predicate == "safe":
        return spec.is_safe_counts
    if predicate == "live":
        return spec.is_live_counts
    if predicate == "safe_and_live":
        return lambda c, b: spec.is_safe_counts(c, b) and spec.is_live_counts(c, b)
    raise InvalidConfigurationError(f"unknown predicate {predicate!r}")


def default_tilt(fleet: Fleet, target_failures: int) -> tuple[float, ...]:
    """Inflate failure probabilities so ``target_failures`` become typical.

    Each node's failure probability is raised to at least
    ``target_failures / n`` (capped at 0.9), leaving already-likely failures
    untouched.  This puts the sampler's mean failure count at the violation
    boundary, which is where the variance-optimal tilt lives for threshold
    events.
    """
    if target_failures < 0:
        raise InvalidConfigurationError("target_failures must be non-negative")
    floor = min(0.9, max(target_failures, 1) / max(fleet.n, 1))
    return tuple(min(0.9, max(p, floor)) for p in fleet.failure_probabilities)


def importance_sample_violation(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    predicate: str = "safe",
    trials: int = 50_000,
    seed: SeedLike = None,
    tilt: Sequence[float] | None = None,
    failure_kind: FaultKind = FaultKind.CRASH,
    jobs: int | None = None,
    sharding: str = "auto",
    shard_trials: int | None = None,
    pool: str = "process",
) -> ImportanceResult:
    """Estimate ``P(predicate violated)`` with exponentially tilted sampling.

    ``tilt`` gives per-node sampling probabilities; when omitted it is
    derived from the smallest violating failure count.  All failures are
    assigned ``failure_kind`` (use BYZANTINE for worst-case BFT analysis).

    ``jobs > 1`` (or ``sharding="spawn"``) shards the trial budget across a
    worker pool with per-shard ``SeedSequence``-spawned streams; per-shard
    weight moments merge in shard order, so the estimate depends on
    ``(trials, seed, shard_trials)`` but never on the worker count.  The
    legacy single-stream mode stays the seeded default (bit-compatible).
    """
    if fleet.n != spec.n:
        raise InvalidConfigurationError(f"fleet has {fleet.n} nodes but spec expects {spec.n}")
    if trials <= 0:
        raise InvalidConfigurationError(f"trials must be positive, got {trials}")
    if failure_kind is FaultKind.CORRECT:
        raise InvalidConfigurationError("failure_kind cannot be CORRECT")

    p = np.array(fleet.failure_probabilities)
    if tilt is None:
        if spec.symmetric:
            k_min = minimal_violating_failures(
                spec, predicate=predicate, failure_kind=failure_kind
            )
            if k_min is None:
                # Nothing can violate the predicate: probability exactly 0.
                return ImportanceResult(
                    violation=Estimate.exact(0.0),
                    trials=0,
                    tilt=tuple(p),
                    effective_sample_size=float("inf"),
                )
            tilt_arr = np.array(default_tilt(fleet, k_min))
        else:
            tilt_arr = np.clip(p * 10.0, 0.05, 0.9)
    else:
        tilt_arr = np.asarray(tilt, dtype=float)
        if tilt_arr.shape != (fleet.n,):
            raise InvalidConfigurationError("tilt must have one probability per node")
        if np.any((tilt_arr <= 0.0) | (tilt_arr >= 1.0)):
            raise InvalidConfigurationError("tilt probabilities must lie in (0, 1)")
        if np.any((p > 0.0) & (tilt_arr == 0.0)):
            raise InvalidConfigurationError("tilt gives zero mass to a possible failure")

    checks = {
        "safe": spec.is_safe,
        "live": spec.is_live,
        "safe_and_live": spec.is_safe_and_live,
    }
    if predicate not in checks:
        raise InvalidConfigurationError(f"unknown predicate {predicate!r}")
    check = checks[predicate]

    from repro.analysis.kernels import (
        plan_shards,
        run_sharded,
        spawn_shard_generators,
        use_spawned_streams,
        verdict_masks,
    )

    log_ratio_fail = np.log(np.maximum(p, 1e-300)) - np.log(tilt_arr)
    log_ratio_ok = np.log1p(-p) - np.log1p(-tilt_arr)

    if use_spawned_streams(jobs, sharding):
        plan = plan_shards(trials, shard_trials)
        rngs = spawn_shard_generators(seed, plan.num_shards)
        if spec.symmetric:
            verdict_masks(spec)  # warm the per-spec cache outside the pool
        payloads = [
            (
                spec,
                predicate,
                check,
                tilt_arr,
                log_ratio_fail,
                log_ratio_ok,
                shard,
                rng,
                failure_kind,
            )
            for shard, rng in zip(plan.shards, rngs)
        ]
        moments = run_sharded(
            _weights_shard, payloads, jobs=jobs or 1, mode=pool
        )
        # Merge the per-shard weight moments in shard order: the estimate is
        # a pure function of the plan, independent of the worker count.
        weight_sum = weight_sq_sum = 0.0
        for shard_sum, shard_sq_sum in moments:
            weight_sum += shard_sum
            weight_sq_sum += shard_sq_sum
        mean = weight_sum / trials
        if trials > 1:
            variance = max(0.0, (weight_sq_sum - trials * mean * mean) / (trials - 1))
            stderr = math.sqrt(variance / trials)
        else:
            stderr = float("nan")
        shards = plan.num_shards
    else:
        rng = as_generator(seed)
        weights = _tilted_violation_weights(
            spec,
            predicate,
            check,
            tilt_arr,
            log_ratio_fail,
            log_ratio_ok,
            trials,
            rng,
            failure_kind,
        )
        mean = float(weights.mean())
        stderr = (
            float(weights.std(ddof=1) / math.sqrt(trials)) if trials > 1 else float("nan")
        )
        weight_sum = float(weights.sum())
        weight_sq_sum = float((weights**2).sum())
        shards = 1

    ess = weight_sum**2 / weight_sq_sum if weight_sq_sum > 0 else 0.0
    if weight_sum == 0.0:
        # No violations observed even under tilting — report a bound rather
        # than a misleading hard zero.
        upper = 3.0 / trials  # rule-of-three scaled by min weight ≈ conservative
        estimate = Estimate(value=0.0, stderr=0.0, ci_low=0.0, ci_high=upper)
        return ImportanceResult(estimate, trials, tuple(tilt_arr), 0.0, shards)
    estimate = Estimate(
        value=mean,
        stderr=stderr,
        ci_low=max(0.0, mean - 1.96 * stderr),
        ci_high=min(1.0, mean + 1.96 * stderr),
    )
    return ImportanceResult(estimate, trials, tuple(tilt_arr), ess, shards)


def _weights_shard(payload) -> tuple[float, float]:
    """Pool entry point: one shard's tilted-weight moments ``(Σw, Σw²)``."""
    (
        spec,
        predicate,
        check,
        tilt_arr,
        log_ratio_fail,
        log_ratio_ok,
        shard_trials,
        rng,
        failure_kind,
    ) = payload
    weights = _tilted_violation_weights(
        spec,
        predicate,
        check,
        tilt_arr,
        log_ratio_fail,
        log_ratio_ok,
        shard_trials,
        rng,
        failure_kind,
    )
    return float(weights.sum()), float((weights**2).sum())


def _tilted_violation_weights(
    spec: "ProtocolSpec",
    predicate: str,
    check: Callable[[FailureConfig], bool],
    tilt_arr: np.ndarray,
    log_ratio_fail: np.ndarray,
    log_ratio_ok: np.ndarray,
    trials: int,
    rng: np.random.Generator,
    failure_kind: FaultKind,
) -> np.ndarray:
    """Per-trial likelihood-ratio weights of violating tilted samples.

    Batched: failure vectors are drawn as chunked ``(m, n)`` blocks (same
    generator stream as a per-trial loop), violations are decided by
    verdict-mask lookup for symmetric specs or unique-row dedup otherwise,
    and log-weights are row-summed vectorially.
    """
    from repro.analysis.kernels import _chunk_sizes, verdict_masks

    mask = verdict_masks(spec).for_metric(predicate) if spec.symmetric else None
    weights = np.zeros(trials)
    offset = 0
    for size in _chunk_sizes(trials, spec.n):
        failed = rng.random((size, spec.n)) < tilt_arr
        if mask is not None:
            k = failed.sum(axis=1)
            zeros = np.zeros_like(k)
            holds = mask[k, zeros] if failure_kind is FaultKind.CRASH else mask[zeros, k]
        else:
            rows, inverse = np.unique(failed, axis=0, return_inverse=True)
            verdicts = np.fromiter(
                (
                    check(
                        FailureConfig(
                            tuple(failure_kind if f else FaultKind.CORRECT for f in row)
                        )
                    )
                    for row in rows
                ),
                dtype=bool,
                count=len(rows),
            )
            holds = verdicts[inverse]
        violating = ~holds
        if violating.any():
            log_weights = np.where(
                failed[violating], log_ratio_fail, log_ratio_ok
            ).sum(axis=1)
            weights[offset : offset + size][violating] = np.exp(log_weights)
        offset += size
    return weights


def quorum_wipeout_probability(
    n: int,
    quorum_size: int,
    p_fail: float,
    *,
    trials: int = 200_000,
    seed: SeedLike = None,
) -> ImportanceResult:
    """P(a *fixed* quorum of ``quorum_size`` nodes all fail) — paper §4 example.

    The closed form is ``p_fail ** quorum_size``; the importance-sampled
    estimate exists to demonstrate the machinery on an independently
    verifiable rare event (N=100, q=10, p=10% → 1e-10).
    """
    if not 0 < quorum_size <= n:
        raise InvalidConfigurationError(f"quorum size {quorum_size} invalid for n={n}")
    if not 0.0 < p_fail < 1.0:
        raise InvalidConfigurationError("p_fail must be in (0, 1)")
    rng = as_generator(seed)
    # Only the quorum members matter; tilt them to 50/50.
    q = 0.5
    log_ratio_fail = math.log(p_fail) - math.log(q)
    log_ratio_ok = math.log1p(-p_fail) - math.log1p(-q)
    weights = np.zeros(trials)
    for t in range(trials):
        failed = rng.random(quorum_size) < q
        if failed.all():
            weights[t] = math.exp(quorum_size * log_ratio_fail)
        # Trials with any survivor contribute zero.
        _ = log_ratio_ok  # documented: survivor terms never weight violations
    mean = float(weights.mean())
    stderr = float(weights.std(ddof=1) / math.sqrt(trials)) if trials > 1 else float("nan")
    ess = (weights.sum() ** 2 / (weights**2).sum()) if weights.any() else 0.0
    estimate = Estimate(
        value=mean,
        stderr=stderr,
        ci_low=max(0.0, mean - 1.96 * stderr),
        ci_high=min(1.0, mean + 1.96 * stderr),
    )
    if mean == 0.0:
        raise EstimationError("no wipe-out sampled even under tilting; increase trials")
    return ImportanceResult(estimate, trials, (q,) * quorum_size, ess)
