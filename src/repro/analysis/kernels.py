"""Vectorized estimation kernels: the array-level hot path of the engine.

The paper's pitch is that probability-native reliability analysis should be
cheap enough to run continuously — per deployment, per window, per what-if.
This module provides the batched linear-algebra primitives that make the
flexible estimator APIs in :mod:`repro.analysis` run at NumPy speed:

* **Verdict masks** — for symmetric specs, the ``(n+1) x (n+1)`` boolean
  arrays ``safe[c, b]`` / ``live[c, b]`` over crash/Byzantine count pairs.
  Computed once per spec (cached via :meth:`ProtocolSpec.verdict_masks`),
  they turn every counting aggregation into a ``(pmf * mask).sum()``
  reduction and every symmetric Monte-Carlo tally into a fancy-indexed
  lookup — predicates run ``O(n^2)`` times per *spec*, not per evaluation.

* **Batched joint-count DP** — :func:`joint_count_pmf_batch` runs the
  trinomial Poisson-binomial dynamic program for ``F`` fleets at once.
  Its elementwise update sequence is identical to the single-fleet DP in
  :func:`repro.analysis.counting.joint_count_pmf`, so per-fleet results are
  bit-identical to the scalar path.

* **Batched Monte-Carlo** — :func:`monte_carlo_tally` and friends draw
  chunked ``(trials, n)`` uniforms and classify them vectorially.  The
  uniform stream is consumed in the same (trial, node) order as the
  historical per-trial loop, so seeded tallies are unchanged.  Asymmetric
  specs get ``np.unique`` row dedup: Python predicates run once per
  *distinct* configuration, not per trial.

* **Sharded execution** — :func:`plan_shards` splits a trial budget into
  worker-count-independent shard blocks, :func:`spawn_shard_generators`
  gives each shard an independent ``SeedSequence``-spawned stream, and
  :func:`monte_carlo_tally_sharded` fans the shards over a thread or
  process pool (:func:`run_sharded`), merging tallies in shard order.
  Legacy single-stream sampling stays the seeded default for
  bit-compatibility; spawned streams engage only when parallelism is
  requested (see :func:`use_spawned_streams`).

* **One-pass Birnbaum** — :func:`loo_weighted_products` combines prefix
  count-DPs with a backward weight recursion to produce all ``n``
  leave-one-out inner products ``<pmf without node u, W>`` in a single
  ``O(n^3)`` sweep, which is what makes :func:`birnbaum_importances`
  (and the ranking / gradient / upgrade-planner APIs built on it) ~2n
  times cheaper than re-running the counting DP per node.

Ordering note: every reduction that feeds an *exact* estimator uses
:func:`masked_sum`, a sequential row-major accumulation reproducing the
historical nested-loop summation order, so exact results stay bit-identical
across the scalar, batched, and masked paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.result import Estimate, ReliabilityResult
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

#: Target number of uniform draws per Monte-Carlo chunk (~8 MB of float64).
_CHUNK_DRAWS = 1 << 20

#: Outcome codes used by the vectorized trinomial classifier.
_CODE_CORRECT, _CODE_CRASH, _CODE_BYZANTINE = 0, 1, 2
_CODE_TO_KIND = {
    _CODE_CORRECT: FaultKind.CORRECT,
    _CODE_CRASH: FaultKind.CRASH,
    _CODE_BYZANTINE: FaultKind.BYZANTINE,
}


# ---------------------------------------------------------------------------
# Verdict masks
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class VerdictMasks:
    """Count-pair truth tables of one symmetric spec's predicates.

    ``safe[c, b]`` / ``live[c, b]`` hold the predicate verdicts for ``c``
    crashes and ``b`` Byzantine nodes; entries outside the valid triangle
    ``c + b <= n`` are ``False``.  ``both`` is the elementwise AND.
    """

    n: int
    safe: np.ndarray
    live: np.ndarray
    both: np.ndarray
    valid: np.ndarray

    def for_metric(self, metric: str) -> np.ndarray:
        """The boolean mask backing one reliability metric."""
        if metric == "safe":
            return self.safe
        if metric == "live":
            return self.live
        if metric == "safe_and_live":
            return self.both
        raise InvalidConfigurationError(f"unknown metric {metric!r}")


def compute_verdict_masks(spec: "ProtocolSpec") -> VerdictMasks:
    """Evaluate a symmetric spec's count predicates over every (c, b) pair.

    ``O(n^2)`` predicate calls — done once per spec and cached by
    :func:`verdict_masks`.
    """
    if not spec.symmetric:
        raise InvalidConfigurationError(
            f"{spec.name} is not symmetric; verdict masks do not apply"
        )
    n = spec.n
    safe = np.zeros((n + 1, n + 1), dtype=bool)
    live = np.zeros((n + 1, n + 1), dtype=bool)
    valid = np.zeros((n + 1, n + 1), dtype=bool)
    for crash in range(n + 1):
        for byz in range(n + 1 - crash):
            valid[crash, byz] = True
            safe[crash, byz] = spec.is_safe_counts(crash, byz)
            live[crash, byz] = spec.is_live_counts(crash, byz)
    for mask in (safe, live, valid):
        mask.setflags(write=False)
    both = safe & live
    both.setflags(write=False)
    return VerdictMasks(n=n, safe=safe, live=live, both=both, valid=valid)


def verdict_masks(spec: "ProtocolSpec") -> VerdictMasks:
    """Cached accessor for a spec's verdict masks.

    Specs are immutable after construction, so the masks are computed once
    and stashed on the instance (``_verdict_masks_cache``).
    """
    cached = getattr(spec, "_verdict_masks_cache", None)
    if cached is None:
        cached = compute_verdict_masks(spec)
        spec._verdict_masks_cache = cached  # type: ignore[attr-defined]
    return cached


# ---------------------------------------------------------------------------
# Ordered reductions (bit-identical to the historical nested loops)
# ---------------------------------------------------------------------------
def masked_sum(pmf: np.ndarray, mask: np.ndarray) -> float:
    """Sum ``pmf`` where ``mask`` holds, in row-major sequential order.

    Reproduces the historical ``for c: for b: total += mass`` accumulation
    exactly (IEEE addition is order-sensitive), which is what keeps the
    exact estimators bit-identical to their pre-kernel values.
    """
    return float(sum(pmf[mask].tolist()))


def masked_sum_batch(pmfs: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Per-PMF masked sums for a ``(F, n+1, n+1)`` stack, order-preserving.

    Boolean indexing selects each PMF's masked entries in row-major scan
    order and the cumulative sum accumulates them strictly left to right
    (``out[i] = out[i-1] + x[i]``), so every row reproduces the exact IEEE
    addition sequence of :func:`masked_sum` — bit-identical per fleet,
    one NumPy pass for the whole batch.
    """
    selected = pmfs[:, mask]
    if selected.shape[1] == 0:
        return np.zeros(selected.shape[0])
    return np.cumsum(selected, axis=1)[:, -1]


def reliability_values(pmf: np.ndarray, masks: VerdictMasks) -> tuple[float, float, float]:
    """(P[safe], P[live], P[safe&live]) of a joint count PMF, clamped to 1."""
    return (
        min(masked_sum(pmf, masks.safe), 1.0),
        min(masked_sum(pmf, masks.live), 1.0),
        min(masked_sum(pmf, masks.both), 1.0),
    )


def reliability_values_batch(
    pmfs: np.ndarray, masks: VerdictMasks
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched :func:`reliability_values`: three clamped vectors over ``F``
    PMFs, each entry bit-identical to the scalar reduction."""
    return (
        np.minimum(masked_sum_batch(pmfs, masks.safe), 1.0),
        np.minimum(masked_sum_batch(pmfs, masks.live), 1.0),
        np.minimum(masked_sum_batch(pmfs, masks.both), 1.0),
    )


# ---------------------------------------------------------------------------
# Batched joint-count DP
# ---------------------------------------------------------------------------
def fleet_probability_matrix(fleets: Sequence[Fleet]) -> tuple[np.ndarray, np.ndarray]:
    """Stack per-node crash/Byzantine probabilities into (F, n) arrays."""
    if not fleets:
        raise InvalidConfigurationError("need at least one fleet")
    n = fleets[0].n
    if any(fleet.n != n for fleet in fleets):
        raise InvalidConfigurationError("all fleets in a batch must have the same size")
    crash = np.array([fleet.crash_probabilities for fleet in fleets], dtype=float)
    byz = np.array([fleet.byzantine_probabilities for fleet in fleets], dtype=float)
    return crash, byz


def joint_count_pmf_batch(crash: np.ndarray, byz: np.ndarray) -> np.ndarray:
    """Joint crash/Byzantine count PMFs for ``F`` fleets at once.

    ``crash`` and ``byz`` are ``(F, n)`` probability arrays; the result is
    ``(F, n+1, n+1)`` with ``out[f, c, b] = P[c crashes, b byz]`` for fleet
    ``f``.  The update sequence per fleet matches the scalar DP in
    :func:`repro.analysis.counting.joint_count_pmf` operation-for-operation
    (adding a zero-probability branch is an exact no-op), so each slice is
    bit-identical to the single-fleet result.
    """
    crash = np.asarray(crash, dtype=float)
    byz = np.asarray(byz, dtype=float)
    if crash.shape != byz.shape or crash.ndim != 2:
        raise InvalidConfigurationError("crash/byzantine arrays must share an (F, n) shape")
    fleets, n = crash.shape
    ok = np.maximum(0.0, 1.0 - crash - byz)
    # Grow the active window with the node count: after k nodes only counts
    # in [0, k] x [0, k] carry mass, so the update runs on a (k+1)^2 view
    # instead of the full (n+1)^2 grid — a ~3x flop saving at large n.
    # Outside the window every operation would produce exact zeros, so the
    # restriction leaves each entry bit-identical to the full-grid update.
    # Two ping-pong buffers avoid per-node allocation; only the window's
    # new border row/column needs zeroing each step.
    pmf = np.zeros((fleets, n + 1, n + 1))
    pmf[:, 0, 0] = 1.0
    scratch = np.empty_like(pmf)
    for node in range(n):
        k = node + 1  # entries [0, k) x [0, k) may be nonzero pre-update
        src = pmf[:, :k, :k]
        dst = scratch[:, : k + 1, : k + 1]
        dst[:, k, :] = 0.0
        dst[:, :k, k] = 0.0
        np.multiply(src, ok[:, node, None, None], out=dst[:, :k, :k])
        dst[:, 1 : k + 1, :k] += src * crash[:, node, None, None]
        dst[:, :k, 1 : k + 1] += src * byz[:, node, None, None]
        pmf, scratch = scratch, pmf
    return pmf


def counting_reliability_batch(
    spec: "ProtocolSpec", fleets: Sequence[Fleet]
) -> list[ReliabilityResult]:
    """Exact counting reliability for many same-size fleets in one DP sweep.

    The batched analogue of
    :func:`repro.analysis.counting.counting_reliability`; per-fleet values
    are bit-identical to the scalar path.
    """
    if not spec.symmetric:
        raise InvalidConfigurationError(
            f"{spec.name} is not symmetric; the counting estimator does not apply"
        )
    crash, byz = fleet_probability_matrix(list(fleets))
    if crash.shape[1] != spec.n:
        raise InvalidConfigurationError(
            f"fleets have {crash.shape[1]} nodes but spec expects {spec.n}"
        )
    masks = verdict_masks(spec)
    pmfs = joint_count_pmf_batch(crash, byz)
    results = []
    for pmf in pmfs:
        p_safe, p_live, p_both = reliability_values(pmf, masks)
        results.append(
            ReliabilityResult(
                protocol=spec.name,
                n=spec.n,
                safe=Estimate.exact(p_safe),
                live=Estimate.exact(p_live),
                safe_and_live=Estimate.exact(p_both),
                method="counting",
                detail=(
                    f"verdict-mask kernel, batch of {len(pmfs)} fleets over "
                    f"{(spec.n + 1) * (spec.n + 2) // 2} count pairs"
                ),
            )
        )
    return results


# ---------------------------------------------------------------------------
# Batched Monte-Carlo
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class BatchTally:
    """Safe/live/both hit counts accumulated over a batched sampling run."""

    trials: int
    safe: int
    live: int
    both: int


def _chunk_sizes(trials: int, n: int) -> list[int]:
    """Split ``trials`` into chunk sizes bounded by the per-chunk draw budget.

    Invariants (see the boundary tests in ``tests/test_analysis_kernels.py``):
    the sizes sum to ``trials``, every chunk is positive, and no chunk draws
    more than ``max(_CHUNK_DRAWS, n)`` uniforms.  ``trials <= chunk`` — which
    always happens for huge ``n``, where the budget only allows a handful of
    trials per chunk — yields a *single undersized chunk* rather than a
    full-plus-remainder split.  Non-positive ``trials`` yields no chunks
    (callers validate; this keeps the helper total).
    """
    if trials <= 0:
        return []
    chunk = max(1, _CHUNK_DRAWS // max(n, 1))
    if trials <= chunk:
        return [trials]
    full, rest = divmod(trials, chunk)
    return [chunk] * full + ([rest] if rest else [])


def classify_uniforms(
    uniforms: np.ndarray, crash_p: np.ndarray, byz_p: np.ndarray
) -> np.ndarray:
    """Trinomial classification of a ``(m, n)`` uniform block.

    Matches the scalar sampler: ``u < p_crash`` is a crash,
    ``p_crash <= u < p_crash + p_byzantine`` is Byzantine, else correct.
    Returns ``int8`` outcome codes.
    """
    codes = np.zeros(uniforms.shape, dtype=np.int8)
    crash = uniforms < crash_p
    byz = ~crash & (uniforms < crash_p + byz_p)
    codes[crash] = _CODE_CRASH
    codes[byz] = _CODE_BYZANTINE
    return codes


def _config_from_codes(row: np.ndarray) -> FailureConfig:
    return FailureConfig(tuple(_CODE_TO_KIND[int(code)] for code in row))


def _tally_symmetric(
    masks: VerdictMasks, crash_counts: np.ndarray, byz_counts: np.ndarray
) -> tuple[int, int, int]:
    safe = int(masks.safe[crash_counts, byz_counts].sum())
    live = int(masks.live[crash_counts, byz_counts].sum())
    both = int(masks.both[crash_counts, byz_counts].sum())
    return safe, live, both


def _tally_asymmetric(
    spec: "ProtocolSpec", codes: np.ndarray
) -> tuple[int, int, int]:
    """Dedup configurations so predicates run once per distinct row."""
    unique_rows, counts = np.unique(codes, axis=0, return_counts=True)
    safe = live = both = 0
    for row, count in zip(unique_rows, counts.tolist()):
        config = _config_from_codes(row)
        row_safe = spec.is_safe(config)
        row_live = spec.is_live(config)
        if row_safe:
            safe += count
        if row_live:
            live += count
        if row_safe and row_live:
            both += count
    return safe, live, both


def monte_carlo_tally(
    spec: "ProtocolSpec",
    fleet: Fleet,
    trials: int,
    rng: np.random.Generator,
) -> BatchTally:
    """Batched independent-trinomial Monte-Carlo tally.

    Draws chunked ``(m, n)`` uniforms — consuming the generator stream in
    the same (trial, node) order as a per-trial loop, so seeded tallies are
    reproducible and match the historical sampler exactly.  Symmetric specs
    are tallied by verdict-mask lookup on row counts; asymmetric specs go
    through :func:`np.unique` row dedup.
    """
    crash_p = np.array(fleet.crash_probabilities)
    byz_p = np.array(fleet.byzantine_probabilities)
    masks = verdict_masks(spec) if spec.symmetric else None
    safe = live = both = 0
    for size in _chunk_sizes(trials, fleet.n):
        uniforms = rng.random((size, fleet.n))
        codes = classify_uniforms(uniforms, crash_p, byz_p)
        if masks is not None:
            crash_counts = (codes == _CODE_CRASH).sum(axis=1)
            byz_counts = (codes == _CODE_BYZANTINE).sum(axis=1)
            s, l, b = _tally_symmetric(masks, crash_counts, byz_counts)
        else:
            s, l, b = _tally_asymmetric(spec, codes)
        safe += s
        live += l
        both += b
    return BatchTally(trials=trials, safe=safe, live=live, both=both)


def correlated_tally(
    spec: "ProtocolSpec",
    model,
    trials: int,
    rng: np.random.Generator,
    failure_kind: FaultKind,
) -> BatchTally:
    """Batched tally under a correlated failure model.

    ``model.sample_many`` draws whole arrays per chunk (the built-in models
    vectorize it one-pass; see :mod:`repro.faults.correlation` for each
    model's documented seeded-stream behaviour).
    """
    masks = verdict_masks(spec) if spec.symmetric else None
    code = _CODE_CRASH if failure_kind is FaultKind.CRASH else _CODE_BYZANTINE
    safe = live = both = 0
    for size in _chunk_sizes(trials, spec.n):
        failed = np.asarray(model.sample_many(size, rng), dtype=bool)
        if masks is not None:
            fail_counts = failed.sum(axis=1)
            zeros = np.zeros_like(fail_counts)
            if failure_kind is FaultKind.CRASH:
                s, l, b = _tally_symmetric(masks, fail_counts, zeros)
            else:
                s, l, b = _tally_symmetric(masks, zeros, fail_counts)
        else:
            codes = np.where(failed, np.int8(code), np.int8(_CODE_CORRECT))
            s, l, b = _tally_asymmetric(spec, codes)
        safe += s
        live += l
        both += b
    return BatchTally(trials=trials, safe=safe, live=live, both=both)


def predicate_tally(
    fleet: Fleet,
    predicate: Callable[[FailureConfig], bool],
    trials: int,
    rng: np.random.Generator,
) -> int:
    """Hits of an arbitrary configuration predicate over batched trials.

    Python predicates are opaque, so every chunk is deduped with
    :func:`np.unique` and the predicate runs once per distinct
    configuration.
    """
    crash_p = np.array(fleet.crash_probabilities)
    byz_p = np.array(fleet.byzantine_probabilities)
    hits = 0
    for size in _chunk_sizes(trials, fleet.n):
        uniforms = rng.random((size, fleet.n))
        codes = classify_uniforms(uniforms, crash_p, byz_p)
        unique_rows, counts = np.unique(codes, axis=0, return_counts=True)
        for row, count in zip(unique_rows, counts.tolist()):
            if predicate(_config_from_codes(row)):
                hits += count
    return hits


# ---------------------------------------------------------------------------
# Shard planning and multi-core execution
# ---------------------------------------------------------------------------
#: Fixed parallelism grain of a spawned-stream shard plan.  The shard count
#: is a function of the trial budget alone — never of the worker count — so
#: sharded results are identical whether 1 or 16 workers execute the plan.
_SHARD_GRAIN = 16

#: Minimum trials per shard: below this the per-shard generator/dispatch
#: overhead dominates the vectorized tally.
_MIN_SHARD_TRIALS = 4096

#: Executor modes accepted by :func:`run_sharded`.
EXECUTOR_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ShardPlan:
    """How a trial budget splits into independently-seeded shards.

    ``shards`` holds the per-shard trial counts in execution/merge order.
    The plan depends only on ``trials`` and ``shard_trials`` (both recorded),
    which is the determinism contract: worker counts and executor modes can
    vary freely without changing any sharded estimate.
    """

    trials: int
    shard_trials: int
    shards: tuple[int, ...]

    @property
    def num_shards(self) -> int:
        return len(self.shards)


def plan_shards(trials: int, shard_trials: int | None = None) -> ShardPlan:
    """Split ``trials`` into shard blocks for spawned-stream execution.

    With ``shard_trials`` unset, the plan targets :data:`_SHARD_GRAIN` equal
    shards but never shrinks a shard below :data:`_MIN_SHARD_TRIALS` — small
    budgets produce fewer (or one) shards instead of many tiny ones.
    """
    if trials <= 0:
        raise InvalidConfigurationError(f"trials must be positive, got {trials}")
    if shard_trials is None:
        shard_trials = max(_MIN_SHARD_TRIALS, -(-trials // _SHARD_GRAIN))
    elif shard_trials <= 0:
        raise InvalidConfigurationError(
            f"shard_trials must be positive, got {shard_trials}"
        )
    full, rest = divmod(trials, shard_trials)
    shards = (shard_trials,) * full + ((rest,) if rest else ())
    return ShardPlan(trials=trials, shard_trials=shard_trials, shards=shards)


def spawn_shard_sequences(seed, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent per-shard seed sequences via ``SeedSequence.spawn``.

    An ``int``/``None`` seed roots a fresh :class:`numpy.random.SeedSequence`;
    a ready-made generator spawns children off its own seed sequence (which
    advances its spawn counter — deterministic, since every sharded run
    spawns exactly the plan's shard count).  The children — not generators —
    are the retry-determinism anchor: a generator advances as it draws, but
    ``np.random.default_rng(child)`` rebuilds the *same* stream from the
    same child every time, which is how the supervised runtime re-executes
    a failed shard bit-identically.
    """
    if count <= 0:
        raise InvalidConfigurationError(f"shard count must be positive, got {count}")
    if isinstance(seed, np.random.Generator):
        seq = seed.bit_generator.seed_seq
    else:
        seq = np.random.SeedSequence(seed)
    return list(seq.spawn(count))


def spawn_shard_generators(seed, count: int) -> list[np.random.Generator]:
    """``count`` independent per-shard generators via ``SeedSequence.spawn``.

    Generator view of :func:`spawn_shard_sequences` (one per child, same
    spawn order).  Child streams are statistically independent of each
    other *and* of the legacy single stream, which is why spawned-stream
    mode is opt-in rather than the seeded default.
    """
    return [
        np.random.default_rng(child) for child in spawn_shard_sequences(seed, count)
    ]


def rebuild_shard_generators(
    children: Sequence[np.random.SeedSequence],
) -> list[np.random.Generator]:
    """Fresh generators from already-spawned ``SeedSequence`` children.

    The rebuild half of the :func:`spawn_shard_sequences` contract: callers
    that keep the children (the campaign backend, the supervised runtime's
    retry path) mint identical streams from them any number of times.
    Living here keeps generator construction inside the declared
    stream-boundary module (see ``repro.contracts``).
    """
    return [np.random.default_rng(child) for child in children]


def use_spawned_streams(jobs: int | None, sharding: str) -> bool:
    """Resolve the stream mode from a ``jobs``/``sharding`` parameter pair.

    ``"legacy"`` forces the historical single stream (and therefore serial
    execution), ``"spawn"`` forces per-shard streams, and ``"auto"`` — the
    default everywhere — keeps legacy bit-compatibility for ``jobs`` unset
    or 1 and switches to spawned streams only when parallelism is requested.
    """
    if sharding == "legacy":
        if jobs is not None and jobs > 1:
            raise InvalidConfigurationError(
                "legacy single-stream sampling is inherently serial; "
                "use sharding='spawn' (or 'auto') to run with jobs > 1"
            )
        return False
    if sharding == "spawn":
        return True
    if sharding == "auto":
        return jobs is not None and jobs > 1
    raise InvalidConfigurationError(
        f"unknown sharding mode {sharding!r}; expected 'auto', 'legacy' or 'spawn'"
    )


def run_sharded(worker, payloads: Sequence, *, jobs: int, mode: str = "process") -> list:
    """Map ``worker`` over shard payloads, preserving shard order.

    ``jobs <= 1`` (or a single payload, or ``mode='serial'``) runs in-process
    — the degenerate pool every sharded estimator uses for its determinism
    guarantee.  ``'thread'`` uses a thread pool (NumPy kernels release the
    GIL for much of the tally), ``'process'`` a fork-based process pool
    (fully parallel Python; payloads and results must pickle).  Results come
    back in payload order regardless of completion order, so merges are
    deterministic under any worker count.

    This is the *bare* dispatch — one attempt per shard, first worker
    exception propagates.  It delegates to
    :func:`repro.engine.runtime.dispatch`; callers that want timeouts,
    retries, degradation or checkpointing use
    :func:`repro.engine.runtime.run_supervised` instead (the engine
    backends route there when the :class:`~repro.engine.execution.ExecutionPolicy`
    asks for supervision).
    """
    # Lazy import: kernels sits below the engine layer, and nothing calls
    # run_sharded while the engine package is importing, so there's no cycle.
    from repro.engine.runtime import dispatch

    return dispatch(worker, payloads, jobs=jobs, mode=mode)


def merge_tallies(tallies: Sequence[BatchTally]) -> BatchTally:
    """Combine per-shard tallies (shard order; integer sums are exact)."""
    if not tallies:
        raise InvalidConfigurationError("need at least one tally to merge")
    return BatchTally(
        trials=sum(t.trials for t in tallies),
        safe=sum(t.safe for t in tallies),
        live=sum(t.live for t in tallies),
        both=sum(t.both for t in tallies),
    )


def _tally_shard(payload) -> BatchTally:
    """Process-pool entry point: one shard of a sharded Monte-Carlo tally."""
    spec, fleet, shard_trials, rng = payload
    return monte_carlo_tally(spec, fleet, shard_trials, rng)


def monte_carlo_tally_sharded(
    spec: "ProtocolSpec",
    fleet: Fleet,
    trials: int,
    seed,
    *,
    jobs: int = 1,
    shard_trials: int | None = None,
    mode: str = "process",
    supervision=None,
    chaos=None,
) -> tuple[BatchTally, ShardPlan]:
    """Spawned-stream Monte-Carlo tally, fanned out over a worker pool.

    The trial budget is split by :func:`plan_shards`, each shard draws from
    its own :func:`spawn_shard_generators` stream, and the per-shard tallies
    are merged in shard order — so the result depends on ``(trials, seed,
    shard_trials)`` but never on ``jobs`` or ``mode``.

    With ``supervision`` (a :class:`repro.engine.runtime.Supervision`) the
    fan-out runs under the fault-tolerant runtime: failed shards retry on a
    generator rebuilt from the *same* spawned child, so a retried run stays
    bit-identical to a clean one; under ``on_shard_failure='degrade'`` the
    surviving shards merge into a smaller tally (``tally.trials`` reports
    the effective count).  ``chaos`` injects worker faults for self-tests.
    """
    plan = plan_shards(trials, shard_trials)
    children = spawn_shard_sequences(seed, plan.num_shards)
    if spec.symmetric:
        verdict_masks(spec)  # warm the per-spec cache once, outside the pool
    payloads = [
        (spec, fleet, shard, np.random.default_rng(child))
        for shard, child in zip(plan.shards, children)
    ]
    if supervision is None and chaos is None:
        tallies = run_sharded(_tally_shard, payloads, jobs=jobs, mode=mode)
        return merge_tallies(tallies), plan

    from repro.engine.runtime import run_supervised

    def rebuild(index: int):
        # Thread/serial workers advance the payload generator in place, so a
        # retry must restart the stream from the original spawned child.
        return (
            spec,
            fleet,
            plan.shards[index],
            np.random.default_rng(children[index]),
        )

    tallies, _report = run_supervised(
        _tally_shard,
        payloads,
        jobs=jobs,
        mode=mode,
        supervision=supervision,
        rebuild=rebuild,
        chaos=chaos,
    )
    return merge_tallies([tally for tally in tallies if tally is not None]), plan


# ---------------------------------------------------------------------------
# One-pass leave-one-out products (Birnbaum importance et al.)
# ---------------------------------------------------------------------------
def loo_weighted_products(
    crash_p: np.ndarray, byz_p: np.ndarray, weights: Sequence[np.ndarray]
) -> np.ndarray:
    """All-nodes leave-one-out inner products in one O(n^3) sweep per weight.

    For each node ``u`` and weight matrix ``W`` this returns

        ``S[w, u] = sum_{c,b} P[counts over fleet \\ {u} = (c, b)] * W[c, b]``

    without ever materialising the ``n`` leave-one-out PMFs.  Forward pass:
    prefix count-DPs over nodes ``[0, u)``.  Backward pass: the weight
    recursion ``G_i = p_ok_i G_{i+1} + p_crash_i shift_c(G_{i+1}) +
    p_byz_i shift_b(G_{i+1})``, which folds nodes ``[u+1, n)`` *and* the
    weight into one array.  Then ``S[w, u] = <prefix_u, G_{u+1}>``.
    """
    crash_p = np.asarray(crash_p, dtype=float)
    byz_p = np.asarray(byz_p, dtype=float)
    n = crash_p.size
    if byz_p.shape != (n,):
        raise InvalidConfigurationError("crash/byzantine vectors must share a length")
    shape = (n + 1, n + 1)
    weight_stack = np.array([np.asarray(w, dtype=float) for w in weights])
    if weight_stack.shape[1:] != shape:
        raise InvalidConfigurationError(f"weights must each have shape {shape}")
    ok_p = np.maximum(0.0, 1.0 - crash_p - byz_p)

    # Backward weight recursion: suffix[i] = G_i stacked over all weights.
    suffix = np.empty((n + 1,) + weight_stack.shape)
    suffix[n] = weight_stack
    for i in range(n - 1, -1, -1):
        nxt = suffix[i + 1]
        cur = nxt * ok_p[i]
        cur[:, :-1, :] += nxt[:, 1:, :] * crash_p[i]
        cur[:, :, :-1] += nxt[:, :, 1:] * byz_p[i]
        suffix[i] = cur

    # Forward prefix DP, streaming the inner products.
    out = np.empty((weight_stack.shape[0], n))
    prefix = np.zeros(shape)
    prefix[0, 0] = 1.0
    for u in range(n):
        out[:, u] = np.tensordot(suffix[u + 1], prefix, axes=([1, 2], [0, 1]))
        updated = prefix * ok_p[u]
        updated[1:, :] += prefix[:-1, :] * crash_p[u]
        updated[:, 1:] += prefix[:, :-1] * byz_p[u]
        prefix = updated
    return out


def _shift_weight(weight: np.ndarray, kind: FaultKind) -> np.ndarray:
    """Weight seen by a leave-one-out PMF when the held-out node fails."""
    shifted = np.zeros_like(weight)
    if kind is FaultKind.CRASH:
        shifted[:-1, :] = weight[1:, :]
    else:
        shifted[:, :-1] = weight[:, 1:]
    return shifted


def birnbaum_importances(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    metric: str = "safe_and_live",
    failure_kind: FaultKind = FaultKind.CRASH,
) -> np.ndarray:
    """Birnbaum importance of every node in a single O(n^3) pass.

    ``B_u = P(metric | u correct) - P(metric | u failed)`` for all ``u``,
    via :func:`loo_weighted_products` with the metric's verdict mask and its
    failure-shifted companion — ~2n times cheaper than conditioning the
    counting DP per node.  Symmetric specs only.
    """
    if fleet.n != spec.n:
        raise InvalidConfigurationError(
            f"fleet has {fleet.n} nodes but spec expects {spec.n}"
        )
    if failure_kind is FaultKind.CORRECT:
        raise InvalidConfigurationError("failure_kind cannot be CORRECT")
    masks = verdict_masks(spec)
    weight = masks.for_metric(metric).astype(float)
    crash_p = np.array(fleet.crash_probabilities)
    byz_p = np.array(fleet.byzantine_probabilities)
    products = loo_weighted_products(
        crash_p, byz_p, (weight, _shift_weight(weight, failure_kind))
    )
    correct, failed = products
    return np.minimum(correct, 1.0) - np.minimum(failed, 1.0)


def upgrade_metric_values(
    spec: "ProtocolSpec",
    fleet: Fleet,
    replacement_crash: float,
    replacement_byz: float,
    *,
    metric: str = "safe_and_live",
) -> np.ndarray:
    """Metric value after swapping each node for a replacement, one pass.

    ``out[u]`` is the exact metric of ``fleet.replace(u, replacement)``:
    the leave-one-out PMF of node ``u`` combined with the replacement's
    trinomial step, evaluated against the metric mask — all ``n`` what-ifs
    in O(n^3) instead of n separate counting DPs.
    """
    masks = verdict_masks(spec)
    weight = masks.for_metric(metric).astype(float)
    crash_p = np.array(fleet.crash_probabilities)
    byz_p = np.array(fleet.byzantine_probabilities)
    products = loo_weighted_products(
        crash_p,
        byz_p,
        (
            weight,
            _shift_weight(weight, FaultKind.CRASH),
            _shift_weight(weight, FaultKind.BYZANTINE),
        ),
    )
    ok = max(0.0, 1.0 - replacement_crash - replacement_byz)
    values = ok * products[0] + replacement_crash * products[1] + replacement_byz * products[2]
    return np.minimum(values, 1.0)
