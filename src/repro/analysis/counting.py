"""Exact counting estimator for symmetric protocol predicates (paper §3).

For protocols whose safe/live predicates depend only on *how many* nodes
crashed / turned Byzantine — which covers Raft (Thm 3.2) and PBFT (Thm 3.1)
— the aggregation over all ``3^N`` configurations collapses to a sum over
the joint count distribution ``P(#crash = c, #byz = b)``.  With independent
per-node outcomes that joint distribution is a *multivariate
Poisson-binomial*, computable by an ``O(N^3)`` dynamic program even for
heterogeneous fleets.  This is the estimator behind every table cell in
the paper.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.analysis.result import Estimate, ReliabilityResult
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec


def poisson_binomial_pmf(probabilities: Sequence[float]) -> np.ndarray:
    """PMF of the number of successes among independent Bernoulli trials.

    Standard convolution DP: ``O(n^2)`` time, numerically stable for the
    probabilities seen in reliability work (no subtractions).
    """
    p = np.asarray(probabilities, dtype=float)
    if p.ndim != 1:
        raise InvalidConfigurationError("probabilities must be a 1-D sequence")
    if np.any((p < 0.0) | (p > 1.0)):
        raise InvalidConfigurationError("probabilities must lie in [0, 1]")
    pmf = np.zeros(p.size + 1)
    pmf[0] = 1.0
    for i, pi in enumerate(p):
        # After node i, counts range over [0, i+1]; update in reverse so we
        # read pre-update values.
        pmf[1 : i + 2] = pmf[1 : i + 2] * (1.0 - pi) + pmf[0 : i + 1] * pi
        pmf[0] *= 1.0 - pi
    return pmf


def joint_count_pmf(fleet: Fleet) -> np.ndarray:
    """Joint PMF ``P[c, b]`` of crash and Byzantine counts for a fleet.

    Trinomial extension of the Poisson-binomial DP: each node contributes
    one of (correct, crash, Byzantine).  Returns an ``(n+1, n+1)`` array
    whose entries for ``c + b > n`` are zero.
    """
    n = fleet.n
    pmf = np.zeros((n + 1, n + 1))
    pmf[0, 0] = 1.0
    for node in fleet:
        p_crash, p_byz = node.p_crash, node.p_byzantine
        p_ok = max(0.0, 1.0 - p_crash - p_byz)
        updated = pmf * p_ok
        if p_crash > 0.0:
            updated[1:, :] += pmf[:-1, :] * p_crash
        if p_byz > 0.0:
            updated[:, 1:] += pmf[:, :-1] * p_byz
        pmf = updated
    return pmf


def aggregate_counts(
    fleet: Fleet, predicate: Callable[[int, int], bool]
) -> float:
    """Total probability of configurations whose counts satisfy ``predicate``.

    The predicate is evaluated only on count pairs carrying probability
    mass; the reduction itself is the ordered masked sum from
    :mod:`repro.analysis.kernels`, bit-identical to the historical loop.
    """
    from repro.analysis.kernels import masked_sum

    pmf = joint_count_pmf(fleet)
    mask = pmf > 0.0
    for crash, byz in np.argwhere(mask):
        mask[crash, byz] = predicate(int(crash), int(byz))
    return float(min(masked_sum(pmf, mask), 1.0))


def counting_reliability(spec: "ProtocolSpec", fleet: Fleet) -> ReliabilityResult:
    """Exact Safe/Live/Safe&Live probabilities via the counting DP.

    Requires a symmetric spec; raises :class:`InvalidConfigurationError`
    otherwise (use the exact enumerator or Monte-Carlo for asymmetric
    protocols).  Predicates are read from the spec's cached verdict masks
    (:mod:`repro.analysis.kernels`), so repeated evaluations — horizon
    sweeps, what-if batches, importance conditioning — pay zero predicate
    calls; values are bit-identical to the historical predicate loop.
    """
    from repro.analysis.kernels import reliability_values, verdict_masks

    if not spec.symmetric:
        raise InvalidConfigurationError(
            f"{spec.name} is not symmetric; the counting estimator does not apply"
        )
    if fleet.n != spec.n:
        raise InvalidConfigurationError(
            f"fleet has {fleet.n} nodes but spec expects {spec.n}"
        )
    pmf = joint_count_pmf(fleet)
    n = fleet.n
    p_safe, p_live, p_both = reliability_values(pmf, verdict_masks(spec))
    return ReliabilityResult(
        protocol=spec.name,
        n=n,
        safe=Estimate.exact(p_safe),
        live=Estimate.exact(p_live),
        safe_and_live=Estimate.exact(p_both),
        method="counting",
        detail=f"joint count DP over {(n + 1) * (n + 2) // 2} count pairs",
    )


def binomial_tail(n: int, p: float, at_most: int) -> float:
    """``P(X <= at_most)`` for ``X ~ Binomial(n, p)`` — closed-form oracle.

    Used by tests to cross-check the DP against an independent
    implementation (scipy's regularised incomplete beta).
    """
    from scipy import stats

    if at_most < 0:
        return 0.0
    if at_most >= n:
        return 1.0
    return float(stats.binom.cdf(at_most, n, p))
