"""Probability of arbitrary configuration predicates.

The paper's probability-native ideas introduce metrics beyond Safe/Live —
e.g. *durability* of committed data under pinned quorums (§3).  These
helpers aggregate any ``FailureConfig -> bool`` predicate over the
configuration distribution, exactly (small fleets) or by sampling.
"""

from __future__ import annotations

from typing import Callable

from repro._rng import SeedLike, as_generator
from repro.analysis.config import FailureConfig
from repro.analysis.exact import DEFAULT_MAX_CONFIGS, enumerate_configurations
from repro.analysis.montecarlo import _estimate
from repro.analysis.result import Estimate
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet

Predicate = Callable[[FailureConfig], bool]


def predicate_probability(
    fleet: Fleet,
    predicate: Predicate,
    *,
    max_configs: int = DEFAULT_MAX_CONFIGS,
) -> float:
    """Exact probability that a sampled configuration satisfies ``predicate``."""
    total = 0.0
    for config, probability in enumerate_configurations(fleet, max_configs=max_configs):
        if probability > 0.0 and predicate(config):
            total += probability
    return min(total, 1.0)


def monte_carlo_predicate(
    fleet: Fleet,
    predicate: Predicate,
    *,
    trials: int = 100_000,
    seed: SeedLike = None,
) -> Estimate:
    """Sampled estimate (with Wilson CI) of a predicate's probability.

    Trials are drawn through the batched sampling kernel (same seeded
    uniform stream as the historical per-trial loop) and deduped so the
    Python predicate runs once per distinct configuration.
    """
    from repro.analysis.kernels import predicate_tally

    if trials <= 0:
        raise InvalidConfigurationError(f"trials must be positive, got {trials}")
    rng = as_generator(seed)
    hits = predicate_tally(fleet, predicate, trials, rng)
    return _estimate(hits, trials)
