"""Exact enumeration over failure configurations (paper §3).

The reference estimator: walk every reachable configuration (up to ``3^N``
once crash/Byzantine are distinguished; outcomes with zero probability are
pruned), evaluate the protocol predicates, and sum the probabilities of the
safe / live configurations.  Exponential, so guarded by a state budget —
it exists to (a) handle *asymmetric* predicates exactly at small N and
(b) cross-validate the polynomial counting estimator.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.result import Estimate, ReliabilityResult
from repro.errors import EstimationError, InvalidConfigurationError
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

#: Refuse enumerations beyond this many configurations (≈ 4 million).
DEFAULT_MAX_CONFIGS = 1 << 22


def _outcome_choices(fleet: Fleet) -> list[list[tuple[FaultKind, float]]]:
    """Per-node outcome/probability lists with zero-probability pruning."""
    choices: list[list[tuple[FaultKind, float]]] = []
    for node in fleet:
        node_choices = []
        if node.p_correct > 0.0:
            node_choices.append((FaultKind.CORRECT, node.p_correct))
        if node.p_crash > 0.0:
            node_choices.append((FaultKind.CRASH, node.p_crash))
        if node.p_byzantine > 0.0:
            node_choices.append((FaultKind.BYZANTINE, node.p_byzantine))
        if not node_choices:
            raise InvalidConfigurationError("node has no outcome with positive probability")
        choices.append(node_choices)
    return choices


def configuration_count(fleet: Fleet) -> int:
    """Number of positive-probability configurations the fleet induces."""
    count = 1
    for node_choices in _outcome_choices(fleet):
        count *= len(node_choices)
    return count


def enumerate_configurations(
    fleet: Fleet, *, max_configs: int = DEFAULT_MAX_CONFIGS
) -> Iterator[tuple[FailureConfig, float]]:
    """Yield every positive-probability ``(configuration, probability)`` pair.

    Raises :class:`EstimationError` when the configuration count exceeds
    ``max_configs`` — callers should fall back to Monte-Carlo.
    """
    total = configuration_count(fleet)
    if total > max_configs:
        raise EstimationError(
            f"{total} configurations exceed the exact-enumeration budget of {max_configs}"
        )
    choices = _outcome_choices(fleet)

    def recurse(index: int, kinds: list[FaultKind], probability: float) -> Iterator[tuple[FailureConfig, float]]:
        if index == len(choices):
            yield FailureConfig(tuple(kinds)), probability
            return
        for kind, p in choices[index]:
            kinds.append(kind)
            yield from recurse(index + 1, kinds, probability * p)
            kinds.pop()

    yield from recurse(0, [], 1.0)


def exact_reliability(
    spec: "ProtocolSpec", fleet: Fleet, *, max_configs: int = DEFAULT_MAX_CONFIGS
) -> ReliabilityResult:
    """Safe/Live/Safe&Live probabilities by full enumeration.

    Works for any spec — symmetric or not — but is exponential in ``n``.
    """
    if fleet.n != spec.n:
        raise InvalidConfigurationError(f"fleet has {fleet.n} nodes but spec expects {spec.n}")
    p_safe = p_live = p_both = 0.0
    states = 0
    for config, probability in enumerate_configurations(fleet, max_configs=max_configs):
        states += 1
        if probability == 0.0:
            continue
        safe = spec.is_safe(config)
        live = spec.is_live(config)
        if safe:
            p_safe += probability
        if live:
            p_live += probability
        if safe and live:
            p_both += probability
    return ReliabilityResult(
        protocol=spec.name,
        n=fleet.n,
        safe=Estimate.exact(min(p_safe, 1.0)),
        live=Estimate.exact(min(p_live, 1.0)),
        safe_and_live=Estimate.exact(min(p_both, 1.0)),
        method="exact",
        detail=f"enumerated {states} configurations",
    )


def worst_configurations(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    predicate: str = "safe",
    limit: int = 10,
    max_configs: int = DEFAULT_MAX_CONFIGS,
) -> list[tuple[FailureConfig, float]]:
    """The most probable configurations that *violate* a predicate.

    Useful for explaining a reliability number: "your top risk is these two
    specific nodes failing together".  ``predicate`` is ``"safe"``,
    ``"live"`` or ``"safe_and_live"``.

    Violations are streamed through a bounded ``heapq.nlargest`` selection,
    so memory stays O(limit) instead of materialising (and fully sorting)
    every violating configuration.
    """
    checks = {
        "safe": spec.is_safe,
        "live": spec.is_live,
        "safe_and_live": spec.is_safe_and_live,
    }
    if predicate not in checks:
        raise InvalidConfigurationError(f"unknown predicate {predicate!r}")
    if limit <= 0:
        return []
    check = checks[predicate]
    return heapq.nlargest(
        limit,
        (
            (config, probability)
            for config, probability in enumerate_configurations(
                fleet, max_configs=max_configs
            )
            if probability > 0.0 and not check(config)
        ),
        key=lambda pair: pair[1],
    )
