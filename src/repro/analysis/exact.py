"""Exact enumeration over failure configurations (paper §3).

The reference estimator: walk every reachable configuration (up to ``3^N``
once crash/Byzantine are distinguished; outcomes with zero probability are
pruned), evaluate the protocol predicates, and sum the probabilities of the
safe / live configurations.  Exponential, so guarded by a state budget —
it exists to (a) handle *asymmetric* predicates exactly at small N and
(b) cross-validate the polynomial counting estimator.

:func:`exact_reliability` runs on a vectorized path (the engine's
``exact`` estimator): the configuration code matrix is enumerated once per
(fleet size, per-node outcome support) pattern and memoised, per-config
probabilities are NumPy products accumulated in node order, and symmetric
specs read verdicts from their cached count masks.  The multiplication and
summation orders reproduce the historical recursive walk exactly, so
results are bit-identical to the pre-vectorized estimator.
"""

from __future__ import annotations

import heapq
from typing import Iterator

import numpy as np

from repro.analysis.config import FailureConfig, FaultKind
from repro.analysis.result import Estimate, ReliabilityResult
from repro.errors import EstimationError, InvalidConfigurationError
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

#: Refuse enumerations beyond this many configurations (≈ 4 million).
DEFAULT_MAX_CONFIGS = 1 << 22

#: FaultKind outcome codes in the historical enumeration order.
_KIND_ORDER = (FaultKind.CORRECT, FaultKind.CRASH, FaultKind.BYZANTINE)

#: Memoised configuration matrices, keyed by per-node outcome support.
#: Bounded: entries are evicted oldest-first beyond this count, and
#: matrices larger than ``_ENUM_CACHE_MAX_ELEMENTS`` are never cached.
_ENUM_CACHE: dict[tuple, np.ndarray] = {}
_ENUM_CACHE_MAX_ENTRIES = 16
_ENUM_CACHE_MAX_ELEMENTS = 1 << 24


def _outcome_choices(fleet: Fleet) -> list[list[tuple[FaultKind, float]]]:
    """Per-node outcome/probability lists with zero-probability pruning."""
    choices: list[list[tuple[FaultKind, float]]] = []
    for node in fleet:
        node_choices = []
        if node.p_correct > 0.0:
            node_choices.append((FaultKind.CORRECT, node.p_correct))
        if node.p_crash > 0.0:
            node_choices.append((FaultKind.CRASH, node.p_crash))
        if node.p_byzantine > 0.0:
            node_choices.append((FaultKind.BYZANTINE, node.p_byzantine))
        if not node_choices:
            raise InvalidConfigurationError("node has no outcome with positive probability")
        choices.append(node_choices)
    return choices


def configuration_count(fleet: Fleet) -> int:
    """Number of positive-probability configurations the fleet induces."""
    count = 1
    for node_choices in _outcome_choices(fleet):
        count *= len(node_choices)
    return count


def enumerate_configurations(
    fleet: Fleet, *, max_configs: int = DEFAULT_MAX_CONFIGS
) -> Iterator[tuple[FailureConfig, float]]:
    """Yield every positive-probability ``(configuration, probability)`` pair.

    Raises :class:`EstimationError` when the configuration count exceeds
    ``max_configs`` — callers should fall back to Monte-Carlo.
    """
    total = configuration_count(fleet)
    if total > max_configs:
        raise EstimationError(
            f"{total} configurations exceed the exact-enumeration budget of {max_configs}"
        )
    choices = _outcome_choices(fleet)

    def recurse(index: int, kinds: list[FaultKind], probability: float) -> Iterator[tuple[FailureConfig, float]]:
        if index == len(choices):
            yield FailureConfig(tuple(kinds)), probability
            return
        for kind, p in choices[index]:
            kinds.append(kind)
            yield from recurse(index + 1, kinds, probability * p)
            kinds.pop()

    yield from recurse(0, [], 1.0)


def _support_signature(fleet: Fleet) -> tuple:
    """Per-node tuple of the outcome codes carrying positive probability.

    Two fleets with the same signature induce the *same* configuration
    matrix (only the probabilities differ), which is what lets the
    enumeration be computed once per (n, support) and shared.
    """
    signature = []
    for node in fleet:
        codes = []
        if node.p_correct > 0.0:
            codes.append(0)
        if node.p_crash > 0.0:
            codes.append(1)
        if node.p_byzantine > 0.0:
            codes.append(2)
        if not codes:
            raise InvalidConfigurationError("node has no outcome with positive probability")
        signature.append(tuple(codes))
    return tuple(signature)


def _configuration_codes(signature: tuple) -> np.ndarray:
    """All positive-support configurations as a ``(K, n)`` int8 code matrix.

    Rows appear in the historical recursion order (node 0's outcome varies
    slowest), so ordered reductions over the rows reproduce the generator
    walk of :func:`enumerate_configurations` exactly.
    """
    cached = _ENUM_CACHE.get(signature)
    if cached is not None:
        return cached
    axes = [np.array(codes, dtype=np.int8) for codes in signature]
    if axes:
        mesh = np.meshgrid(*axes, indexing="ij")
        codes = np.stack([m.reshape(-1) for m in mesh], axis=1)
    else:
        codes = np.zeros((1, 0), dtype=np.int8)
    codes.setflags(write=False)
    if codes.size <= _ENUM_CACHE_MAX_ELEMENTS:
        while len(_ENUM_CACHE) >= _ENUM_CACHE_MAX_ENTRIES:
            _ENUM_CACHE.pop(next(iter(_ENUM_CACHE)))
        _ENUM_CACHE[signature] = codes
    return codes


def _configuration_probabilities(fleet: Fleet, codes: np.ndarray) -> np.ndarray:
    """Per-configuration probability products, accumulated in node order.

    Multiplies one node at a time (vectorized across configurations), the
    same operation sequence as the recursive enumeration, so each entry is
    bit-identical to the probability the generator yields for that row.
    """
    outcome_p = np.array(
        [(node.p_correct, node.p_crash, node.p_byzantine) for node in fleet]
    )
    probabilities = np.ones(codes.shape[0])
    for node_index in range(codes.shape[1]):
        probabilities *= outcome_p[node_index, codes[:, node_index]]
    return probabilities


def _exact_verdicts(
    spec: "ProtocolSpec", codes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """(safe, live) boolean vectors for every configuration row."""
    if spec.symmetric:
        from repro.analysis.kernels import verdict_masks

        masks = verdict_masks(spec)
        crash_counts = (codes == 1).sum(axis=1)
        byz_counts = (codes == 2).sum(axis=1)
        return masks.safe[crash_counts, byz_counts], masks.live[crash_counts, byz_counts]
    safe = np.empty(codes.shape[0], dtype=bool)
    live = np.empty(codes.shape[0], dtype=bool)
    for row_index, row in enumerate(codes):
        config = FailureConfig(tuple(_KIND_ORDER[code] for code in row))
        safe[row_index] = spec.is_safe(config)
        live[row_index] = spec.is_live(config)
    return safe, live


def exact_reliability(
    spec: "ProtocolSpec", fleet: Fleet, *, max_configs: int = DEFAULT_MAX_CONFIGS
) -> ReliabilityResult:
    """Safe/Live/Safe&Live probabilities by full enumeration.

    Works for any spec — symmetric or not — but is exponential in ``n``.
    Vectorized: the configuration matrix comes from the per-(n, support)
    enumeration cache, probabilities are NumPy products, and verdicts are
    count-mask lookups for symmetric specs (per-configuration predicate
    calls otherwise).  Values are bit-identical to the historical
    per-configuration walk.
    """
    if fleet.n != spec.n:
        raise InvalidConfigurationError(f"fleet has {fleet.n} nodes but spec expects {spec.n}")
    total = configuration_count(fleet)
    if total > max_configs:
        raise EstimationError(
            f"{total} configurations exceed the exact-enumeration budget of {max_configs}"
        )
    from repro.analysis.kernels import masked_sum

    codes = _configuration_codes(_support_signature(fleet))
    probabilities = _configuration_probabilities(fleet, codes)
    safe, live = _exact_verdicts(spec, codes)
    p_safe = masked_sum(probabilities, safe)
    p_live = masked_sum(probabilities, live)
    p_both = masked_sum(probabilities, safe & live)
    return ReliabilityResult(
        protocol=spec.name,
        n=fleet.n,
        safe=Estimate.exact(min(p_safe, 1.0)),
        live=Estimate.exact(min(p_live, 1.0)),
        safe_and_live=Estimate.exact(min(p_both, 1.0)),
        method="exact",
        detail=f"enumerated {codes.shape[0]} configurations",
    )


def worst_configurations(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    predicate: str = "safe",
    limit: int = 10,
    max_configs: int = DEFAULT_MAX_CONFIGS,
) -> list[tuple[FailureConfig, float]]:
    """The most probable configurations that *violate* a predicate.

    Useful for explaining a reliability number: "your top risk is these two
    specific nodes failing together".  ``predicate`` is ``"safe"``,
    ``"live"`` or ``"safe_and_live"``.

    Violations are streamed through a bounded ``heapq.nlargest`` selection,
    so memory stays O(limit) instead of materialising (and fully sorting)
    every violating configuration.
    """
    checks = {
        "safe": spec.is_safe,
        "live": spec.is_live,
        "safe_and_live": spec.is_safe_and_live,
    }
    if predicate not in checks:
        raise InvalidConfigurationError(f"unknown predicate {predicate!r}")
    if limit <= 0:
        return []
    check = checks[predicate]
    return heapq.nlargest(
        limit,
        (
            (config, probability)
            for config, probability in enumerate_configurations(
                fleet, max_configs=max_configs
            )
            if probability > 0.0 and not check(config)
        ),
        key=lambda pair: pair[1],
    )
