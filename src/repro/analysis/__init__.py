"""Probability engine: Safe/Live aggregation over failure configurations (§3).

Four estimators with one façade:

* :func:`repro.analysis.counting.counting_reliability` — exact, polynomial,
  for symmetric predicates (the paper's tables);
* :func:`repro.analysis.exact.exact_reliability` — exact enumeration, any
  predicate, exponential (small N);
* :func:`repro.analysis.montecarlo.monte_carlo_reliability` — sampling with
  Wilson CIs, any predicate, any N, plus correlated-failure variants;
* :func:`repro.analysis.importance.importance_sample_violation` — tilted
  sampling for many-nines rare events.

:func:`analyze` picks the best applicable estimator automatically:

1. **symmetric spec** → counting DP.  Exact, ``O(n^3)``, and on the fast
   path: predicates come from the spec's cached verdict masks and the
   aggregation is a masked array reduction (:mod:`repro.analysis.kernels`).
2. **asymmetric spec, small fleet** → exact enumeration (≤ ``2^20``
   positive-probability configurations).
3. **otherwise** → Monte-Carlo, which also runs on the kernel layer:
   chunked uniform draws, vectorized classification, and per-distinct-row
   predicate calls.

The kernel layer is the hot path shared by everything above: verdict
masks turn per-(spec, fleet) predicate sweeps into one-time per-spec
tables; the batched count DP evaluates whole fleets-of-fleets sweeps
(:func:`analyze_batch`, horizon series, CLI tables) in single NumPy
passes; and the one-pass leave-one-out kernel powers Birnbaum importance,
gradients and upgrade planning at ``O(n^3)`` total instead of ``O(n^4)``.
Exact numbers are bit-identical whichever path computes them.
"""

from __future__ import annotations

from repro._rng import SeedLike
from repro.analysis.config import FailureConfig, FaultKind, config_probability
from repro.analysis.counting import (
    aggregate_counts,
    counting_reliability,
    joint_count_pmf,
    poisson_binomial_pmf,
)
from repro.analysis.exact import (
    configuration_count,
    enumerate_configurations,
    exact_reliability,
    worst_configurations,
)
from repro.analysis.importance import (
    ImportanceResult,
    importance_sample_violation,
    minimal_violating_failures,
    quorum_wipeout_probability,
)
from repro.analysis.kernels import (
    BatchTally,
    VerdictMasks,
    birnbaum_importances,
    counting_reliability_batch,
    joint_count_pmf_batch,
    verdict_masks,
)
from repro.analysis.predicates import monte_carlo_predicate, predicate_probability
from repro.analysis.horizon import (
    WindowPoint,
    annualized_downtime_minutes,
    expected_bad_windows,
    first_subtarget_window,
    horizon_survival,
    reliability_over_horizon,
)
from repro.analysis.sensitivity import (
    UpgradeOption,
    best_single_upgrade,
    birnbaum_importance,
    greedy_upgrade_plan,
    importance_ranking,
    reliability_gradient,
)
from repro.analysis.montecarlo import (
    monte_carlo_correlated,
    monte_carlo_reliability,
    required_trials_for_ci_width,
    sample_configuration,
    wilson_interval,
)
from repro.analysis.result import (
    Estimate,
    ReliabilityResult,
    format_probability,
    from_nines,
    nines,
)
from repro.errors import EstimationError
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

#: Above this configuration count, `analyze` stops considering enumeration.
_EXACT_BUDGET = 1 << 20


def analyze(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    method: str = "auto",
    trials: int = 100_000,
    seed: SeedLike = None,
) -> ReliabilityResult:
    """Compute Safe/Live/Safe&Live reliability for a deployment.

    ``method`` is one of ``"auto"`` (default), ``"counting"``, ``"exact"``
    or ``"monte-carlo"``.  Auto selection prefers exact answers: counting DP
    for symmetric specs, enumeration for small asymmetric ones, Monte-Carlo
    otherwise.
    """
    if method == "auto":
        if spec.symmetric:
            return counting_reliability(spec, fleet)
        if configuration_count(fleet) <= _EXACT_BUDGET:
            return exact_reliability(spec, fleet)
        return monte_carlo_reliability(spec, fleet, trials=trials, seed=seed)
    if method == "counting":
        return counting_reliability(spec, fleet)
    if method == "exact":
        return exact_reliability(spec, fleet)
    if method == "monte-carlo":
        return monte_carlo_reliability(spec, fleet, trials=trials, seed=seed)
    raise EstimationError(f"unknown analysis method {method!r}")


def analyze_batch(
    spec: "ProtocolSpec",
    fleets: "Sequence[Fleet]",
    *,
    method: str = "auto",
    trials: int = 100_000,
    seed: SeedLike = None,
) -> list[ReliabilityResult]:
    """Reliability for many same-size fleets against one spec, batched.

    The sweep primitive behind horizon series, what-if grids and the CLI
    tables.  Symmetric specs run the whole batch through one vectorized
    counting-DP sweep (per-fleet values bit-identical to
    :func:`analyze`); other spec/method combinations fall back to
    per-fleet :func:`analyze` calls.
    """
    fleets = list(fleets)
    if not fleets:
        return []
    if method in ("auto", "counting") and spec.symmetric:
        return counting_reliability_batch(spec, fleets)
    return [
        analyze(spec, fleet, method=method, trials=trials, seed=seed)
        for fleet in fleets
    ]


__all__ = [
    "analyze",
    "analyze_batch",
    "FailureConfig",
    "FaultKind",
    "config_probability",
    "counting_reliability",
    "counting_reliability_batch",
    "joint_count_pmf",
    "joint_count_pmf_batch",
    "verdict_masks",
    "VerdictMasks",
    "BatchTally",
    "birnbaum_importances",
    "poisson_binomial_pmf",
    "aggregate_counts",
    "exact_reliability",
    "enumerate_configurations",
    "configuration_count",
    "worst_configurations",
    "monte_carlo_reliability",
    "monte_carlo_correlated",
    "sample_configuration",
    "wilson_interval",
    "required_trials_for_ci_width",
    "predicate_probability",
    "birnbaum_importance",
    "reliability_over_horizon",
    "horizon_survival",
    "first_subtarget_window",
    "expected_bad_windows",
    "annualized_downtime_minutes",
    "WindowPoint",
    "importance_ranking",
    "best_single_upgrade",
    "greedy_upgrade_plan",
    "reliability_gradient",
    "UpgradeOption",
    "monte_carlo_predicate",
    "importance_sample_violation",
    "quorum_wipeout_probability",
    "minimal_violating_failures",
    "ImportanceResult",
    "Estimate",
    "ReliabilityResult",
    "nines",
    "from_nines",
    "format_probability",
]
