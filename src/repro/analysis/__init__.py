"""Probability estimators: Safe/Live aggregation over configurations (§3).

**The front door is the Scenario/Engine API** (:mod:`repro.engine`): build
a :class:`~repro.engine.Scenario` per reliability question, submit a
:class:`~repro.engine.ScenarioSet` to a
:class:`~repro.engine.ReliabilityEngine`, and the engine picks estimators,
deduplicates repeated questions through its memo cache, and batches
same-size symmetric scenarios into shared counting-DP sweeps::

    from repro.engine import Scenario, ScenarioSet, default_engine

    grid = ScenarioSet.grid(protocols=("raft", "pbft"),
                            sizes=(3, 5, 7), probabilities=(0.01, 0.05))
    for outcome in default_engine().run(grid):
        print(outcome.scenario.label, outcome.result, outcome.provenance)

This package provides the estimators the engine's registry plugs in:

* :func:`repro.analysis.counting.counting_reliability` — exact, polynomial,
  for symmetric predicates (the paper's tables);
* :func:`repro.analysis.exact.exact_reliability` — exact enumeration, any
  predicate, exponential (small N), vectorized over the cached
  per-(n, support) configuration matrix;
* :func:`repro.analysis.montecarlo.monte_carlo_reliability` — sampling with
  Wilson CIs, any predicate, any N, plus correlated-failure variants;
* :func:`repro.analysis.importance.importance_sample_violation` — tilted
  sampling for many-nines rare events.

:func:`analyze` and :func:`analyze_batch` remain as thin shims over the
default engine (same signatures, bit-identical outputs): auto selection
still prefers exact answers — counting DP for symmetric specs, enumeration
for small asymmetric fleets (≤ ``2^20`` positive-probability
configurations), Monte-Carlo otherwise.

The kernel layer (:mod:`repro.analysis.kernels`) stays the shared hot
path: verdict masks turn per-(spec, fleet) predicate sweeps into one-time
per-spec tables; the batched count DP evaluates whole fleets-of-fleets
sweeps in single NumPy passes; and the one-pass leave-one-out kernel
powers Birnbaum importance, gradients and upgrade planning at ``O(n^3)``
total instead of ``O(n^4)``.  Exact numbers are bit-identical whichever
path computes them.
"""

from __future__ import annotations

from repro._rng import SeedLike
from repro.analysis.config import FailureConfig, FaultKind, config_probability
from repro.analysis.counting import (
    aggregate_counts,
    counting_reliability,
    joint_count_pmf,
    poisson_binomial_pmf,
)
from repro.analysis.exact import (
    configuration_count,
    enumerate_configurations,
    exact_reliability,
    worst_configurations,
)
from repro.analysis.importance import (
    ImportanceResult,
    importance_sample_violation,
    minimal_violating_failures,
    quorum_wipeout_probability,
)
from repro.analysis.kernels import (
    BatchTally,
    VerdictMasks,
    birnbaum_importances,
    counting_reliability_batch,
    joint_count_pmf_batch,
    verdict_masks,
)
from repro.analysis.predicates import monte_carlo_predicate, predicate_probability
from repro.analysis.horizon import (
    WindowPoint,
    annualized_downtime_minutes,
    expected_bad_windows,
    first_subtarget_window,
    horizon_survival,
    reliability_over_horizon,
)
from repro.analysis.sensitivity import (
    UpgradeOption,
    best_single_upgrade,
    birnbaum_importance,
    greedy_upgrade_plan,
    importance_ranking,
    reliability_gradient,
)
from repro.analysis.montecarlo import (
    monte_carlo_correlated,
    monte_carlo_reliability,
    required_trials_for_ci_width,
    sample_configuration,
    wilson_interval,
)
from repro.analysis.result import (
    Estimate,
    ReliabilityResult,
    format_probability,
    from_nines,
    nines,
)
from repro.errors import EstimationError
from repro.faults.mixture import Fleet
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.protocols.base import ProtocolSpec

#: Above this configuration count, `analyze` stops considering enumeration.
#: (Kept in sync with :data:`repro.engine.engine.EXACT_BUDGET`.)
_EXACT_BUDGET = 1 << 20


def analyze(
    spec: "ProtocolSpec",
    fleet: Fleet,
    *,
    method: str = "auto",
    trials: int = 100_000,
    seed: SeedLike = None,
) -> ReliabilityResult:
    """Compute Safe/Live/Safe&Live reliability for a deployment.

    .. deprecated:: prefer the Scenario/Engine API —
       ``default_engine().run_one(Scenario(spec=spec, fleet=fleet))`` —
       which adds batching, caching and provenance.  This shim submits a
       single scenario to the default engine and stays for compatibility;
       outputs are bit-identical to the historical estimator dispatch.

    ``method`` is one of ``"auto"`` (default), ``"counting"``, ``"exact"``,
    ``"monte-carlo"`` or any estimator registered with the engine.  Auto
    selection prefers exact answers: counting DP for symmetric specs,
    enumeration for small asymmetric ones, Monte-Carlo otherwise.
    """
    from repro.engine import Scenario, default_engine

    scenario = Scenario(spec=spec, fleet=fleet, method=method, trials=trials, seed=seed)
    return default_engine().run_one(scenario).result


def analyze_batch(
    spec: "ProtocolSpec",
    fleets: "Sequence[Fleet]",
    *,
    method: str = "auto",
    trials: int = 100_000,
    seed: SeedLike = None,
) -> list[ReliabilityResult]:
    """Reliability for many same-size fleets against one spec, batched.

    .. deprecated:: prefer the Scenario/Engine API —
       ``default_engine().run(ScenarioSet(...))`` — which batches across
       *specs* as well as fleets and reports provenance.  This shim wraps
       the fleets into one scenario set; per-fleet values are bit-identical
       to :func:`analyze`.

    The sweep primitive behind horizon series, what-if grids and the CLI
    tables.  Symmetric specs run the whole batch through one shared
    counting-DP sweep; other spec/method combinations fall back to
    per-scenario estimation inside the engine.
    """
    from repro.engine import Scenario, default_engine

    fleets = list(fleets)
    if not fleets:
        return []
    scenarios = [
        Scenario(spec=spec, fleet=fleet, method=method, trials=trials, seed=seed)
        for fleet in fleets
    ]
    return default_engine().run(scenarios).results


__all__ = [
    "analyze",
    "analyze_batch",
    "FailureConfig",
    "FaultKind",
    "config_probability",
    "counting_reliability",
    "counting_reliability_batch",
    "joint_count_pmf",
    "joint_count_pmf_batch",
    "verdict_masks",
    "VerdictMasks",
    "BatchTally",
    "birnbaum_importances",
    "poisson_binomial_pmf",
    "aggregate_counts",
    "exact_reliability",
    "enumerate_configurations",
    "configuration_count",
    "worst_configurations",
    "monte_carlo_reliability",
    "monte_carlo_correlated",
    "sample_configuration",
    "wilson_interval",
    "required_trials_for_ci_width",
    "predicate_probability",
    "birnbaum_importance",
    "reliability_over_horizon",
    "horizon_survival",
    "first_subtarget_window",
    "expected_bad_windows",
    "annualized_downtime_minutes",
    "WindowPoint",
    "importance_ranking",
    "best_single_upgrade",
    "greedy_upgrade_plan",
    "reliability_gradient",
    "UpgradeOption",
    "monte_carlo_predicate",
    "importance_sample_violation",
    "quorum_wipeout_probability",
    "minimal_violating_failures",
    "ImportanceResult",
    "Estimate",
    "ReliabilityResult",
    "nines",
    "from_nines",
    "format_probability",
]
