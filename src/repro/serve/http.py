"""Minimal asyncio HTTP/1.1 plumbing for the query daemon.

The container ships no third-party HTTP stack, so the daemon speaks the
small slice of HTTP/1.1 it actually needs over raw asyncio streams:
request-line + header parsing, ``Content-Length`` bodies, keep-alive
connections, fixed-length JSON responses, and chunked transfer encoding
for the streaming answer feed.  Nothing here knows about queries or
engines — :mod:`repro.serve.daemon` owns the routes.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

#: Upper bound on one request head (request line + headers).
MAX_HEAD_BYTES = 32 * 1024


class HttpError(Exception):
    """A malformed or unserviceable request, mapped to a status code."""

    def __init__(self, status: int, reason: str):
        super().__init__(reason)
        self.status = status
        self.reason = reason


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
}


def status_text(status: int) -> str:
    return _STATUS_TEXT.get(status, "Unknown")


@dataclass
class HttpRequest:
    """One parsed request: method, split target, headers, raw body."""

    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, *, max_body: int
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` for anything malformed — the caller turns
    that into an error response and closes the connection.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean close between keep-alive requests
        raise HttpError(400, "truncated request head") from error
    except asyncio.LimitOverrunError as error:
        raise HttpError(431, "request head too large") from error
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(431, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target, _version = parts
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))

    body = b""
    raw_length = headers.get("content-length")
    if raw_length is not None:
        try:
            length = int(raw_length)
        except ValueError as error:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}") from error
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {raw_length!r}")
        if length > max_body:
            raise HttpError(413, f"body of {length} bytes exceeds limit {max_body}")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as error:
            raise HttpError(400, "truncated request body") from error
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")
    return HttpRequest(
        method=method, path=split.path, query=query, headers=headers, body=body
    )


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
) -> None:
    """One fixed-length response (the non-streaming routes)."""
    head = (
        f"HTTP/1.1 {status} {status_text(status)}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def start_chunked_response(
    writer: asyncio.StreamWriter,
    status: int = 200,
    *,
    content_type: str = "application/x-ndjson",
    keep_alive: bool = True,
) -> None:
    """Open a chunked response; follow with :func:`write_chunk` calls."""
    head = (
        f"HTTP/1.1 {status} {status_text(status)}\r\n"
        f"Content-Type: {content_type}\r\n"
        "Transfer-Encoding: chunked\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    writer.write(head.encode("latin-1"))
    await writer.drain()


async def write_chunk(writer: asyncio.StreamWriter, data: bytes) -> None:
    """One chunk, flushed immediately — a streamed partial answer."""
    if not data:
        return
    writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
    await writer.drain()


async def end_chunked_response(writer: asyncio.StreamWriter) -> None:
    writer.write(b"0\r\n\r\n")
    await writer.drain()
