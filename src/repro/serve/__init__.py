"""``repro.serve``: the reliability engine as a long-running query daemon.

The batch CLI answers a scenario file and exits, taking its warm caches
with it.  This package keeps one :class:`~repro.engine.ReliabilityEngine`
resident behind a small stdlib-asyncio HTTP front end:

* ``POST /v1/query`` — a ``Query``/``QuerySet`` JSON document; add
  ``?stream=1`` for chunked JSON-lines progress (one line per answer as
  it completes).
* ``GET /healthz`` — liveness + uptime.
* ``GET /metrics`` — request/latency/coalescing counters plus the engine
  cache and campaign-degradation aggregates.

Identical in-flight queries coalesce into a single execution
(:class:`InflightRegistry`), campaigns run under the supervised runtime
(per-shard timeouts, retries, degradation), and with a checkpoint
directory configured a daemon restart resumes interrupted campaigns
bit-identically.  Start it with ``repro-analyze serve`` or embed
:class:`BackgroundServer` in tests and benchmarks.
"""

from repro.serve.coalesce import InflightRegistry, canonical_query_key
from repro.serve.daemon import (
    BackgroundServer,
    ReliabilityService,
    ServiceConfig,
    serve_forever,
)
from repro.serve.http import HttpError, HttpRequest
from repro.serve.metrics import ServiceMetrics

__all__ = [
    "BackgroundServer",
    "HttpError",
    "HttpRequest",
    "InflightRegistry",
    "ReliabilityService",
    "ServiceConfig",
    "ServiceMetrics",
    "canonical_query_key",
    "serve_forever",
]
