"""Thread-safe service counters behind ``GET /metrics``.

The daemon's answer path runs on executor threads while the HTTP loop
runs on the event-loop thread, so every counter update and the snapshot
read take one lock — the same discipline the engine memo now follows.
Latencies keep a bounded reservoir (most recent ``reservoir`` requests)
from which the snapshot derives percentiles; everything else is plain
monotonic counters, including the campaign aggregates lifted from answer
:class:`~repro.engine.result.Provenance` (shard counts, degradation,
cache hits) — the service-level view of the supervised runtime's
:class:`~repro.engine.runtime.RunReport` outcomes.
"""

from __future__ import annotations

import threading
from collections import deque

#: Percentiles reported for request latency, as (label, fraction).
_PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))


class ServiceMetrics:
    """Counters + latency reservoir for one daemon process."""

    def __init__(self, *, reservoir: int = 4096):
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=max(1, reservoir))
        self._responses: dict[str, int] = {}  # "METHOD path -> status" counts
        self.requests_total = 0
        self.queries_total = 0
        self.answers_total = 0
        #: Queries served by joining an identical in-flight execution
        #: instead of starting their own (the single-flight proof).
        self.coalesced_total = 0
        self.streamed_requests = 0
        self.error_responses = 0
        # Campaign aggregates from answer provenance.
        self.answer_cache_hits = 0
        self.campaign_shards = 0
        self.degraded_answers = 0
        self.dropped_shards = 0

    # -- recording ---------------------------------------------------------
    def record_request(
        self, method: str, path: str, status: int, seconds: float
    ) -> None:
        key = f"{method} {path} -> {status}"
        with self._lock:
            self.requests_total += 1
            self._responses[key] = self._responses.get(key, 0) + 1
            self._latencies.append(seconds)
            if status >= 400:
                self.error_responses += 1

    def record_query(self, *, coalesced: bool) -> None:
        with self._lock:
            self.queries_total += 1
            if coalesced:
                self.coalesced_total += 1

    def record_streamed_request(self) -> None:
        with self._lock:
            self.streamed_requests += 1

    def record_answer(self, answer) -> None:
        """Fold one answer's provenance into the campaign aggregates."""
        provenance = answer.provenance
        with self._lock:
            self.answers_total += 1
            if provenance.cache_hit:
                self.answer_cache_hits += 1
            self.campaign_shards += provenance.shards
            if provenance.degraded:
                self.degraded_answers += 1
                self.dropped_shards += len(provenance.dropped_shards)

    # -- reporting ---------------------------------------------------------
    def snapshot(self, *, engine=None, extra: dict | None = None) -> dict:
        """JSON-ready metrics document (one consistent read)."""
        with self._lock:
            latencies = sorted(self._latencies)
            responses = {key: self._responses[key] for key in sorted(self._responses)}
            answers = self.answers_total
            data = {
                "requests_total": self.requests_total,
                "responses": responses,
                "error_responses": self.error_responses,
                "queries_total": self.queries_total,
                "answers_total": answers,
                "coalesced_total": self.coalesced_total,
                "streamed_requests": self.streamed_requests,
                "campaigns": {
                    "shards_total": self.campaign_shards,
                    "degraded_answers": self.degraded_answers,
                    "dropped_shards": self.dropped_shards,
                    "answer_cache_hits": self.answer_cache_hits,
                    "answer_cache_hit_rate": (
                        self.answer_cache_hits / answers if answers else 0.0
                    ),
                },
            }
        data["latency_seconds"] = _latency_summary(latencies)
        if engine is not None:
            data["engine_cache"] = engine.cache_info()
        if extra:
            data.update(extra)
        return data


def _latency_summary(latencies: list[float]) -> dict:
    if not latencies:
        return {"count": 0}
    summary: dict = {
        "count": len(latencies),
        "mean": sum(latencies) / len(latencies),
        "max": latencies[-1],
    }
    last = len(latencies) - 1
    for label, fraction in _PERCENTILES:
        summary[label] = latencies[min(last, int(fraction * len(latencies)))]
    return summary
