"""Thread-safe service counters behind ``GET /metrics``.

The daemon's answer path runs on executor threads while the HTTP loop
runs on the event-loop thread, so every counter update and the snapshot
read take one lock — the same discipline the engine memo now follows.

Latency keeps **per-route** bounded reservoirs (most recent ``reservoir``
requests each) from which the snapshot derives nearest-rank percentiles.
The headline ``latency_seconds`` summary covers only ``/v1/`` routes, so
load-balancer ``/healthz`` and ``/metrics`` polls can never mask real
query latency; every route's own summary appears under
``latency_by_route``.  Query execution times additionally feed fixed
Prometheus-style histograms per query kind (``query_latency_by_kind``).

Everything else is plain monotonic counters, including the campaign
aggregates lifted from answer :class:`~repro.engine.result.Provenance`
(shard counts, degradation, cache hits) — the service-level view of the
supervised runtime's :class:`~repro.engine.runtime.RunReport` outcomes.

:func:`render_prometheus` turns one snapshot into the Prometheus text
exposition format for ``GET /metrics?format=prometheus``.
"""

from __future__ import annotations

import math
import threading
from collections import deque

#: Percentiles reported for request latency, as (label, fraction).
_PERCENTILES = (("p50", 0.50), ("p90", 0.90), ("p99", 0.99))

#: Upper bounds (seconds) of the per-kind latency histogram buckets; a
#: +Inf bucket is implicit.  Spans 5 ms health-check noise to minute-long
#: campaigns.
HISTOGRAM_BUCKETS = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)

#: Reservoir key for routes outside the known surface (scanners, typos):
#: they share one bucket so arbitrary request paths cannot grow state.
_OTHER_ROUTE = "other"

_KNOWN_ROUTES = ("/healthz", "/metrics")


class ServiceMetrics:
    """Counters + latency reservoirs for one daemon process."""

    def __init__(self, *, reservoir: int = 4096):
        self._lock = threading.Lock()
        self._reservoir = max(1, reservoir)
        self._latencies: dict[str, deque[float]] = {}  # route -> recent seconds
        self._responses: dict[str, int] = {}  # "METHOD path -> status" counts
        # kind -> [bucket counts..., +Inf count] alongside sum/count.
        self._kind_buckets: dict[str, list[int]] = {}
        self._kind_sum: dict[str, float] = {}
        self._kind_count: dict[str, int] = {}
        self.requests_total = 0
        self.queries_total = 0
        self.answers_total = 0
        #: Queries served by joining an identical in-flight execution
        #: instead of starting their own (the single-flight proof).
        self.coalesced_total = 0
        self.streamed_requests = 0
        self.error_responses = 0
        # Campaign aggregates from answer provenance.
        self.answer_cache_hits = 0
        self.campaign_shards = 0
        self.degraded_answers = 0
        self.dropped_shards = 0

    @staticmethod
    def _route_key(path: str) -> str:
        if path.startswith("/v1/") or path in _KNOWN_ROUTES:
            return path
        return _OTHER_ROUTE

    # -- recording ---------------------------------------------------------
    def record_request(
        self, method: str, path: str, status: int, seconds: float
    ) -> None:
        key = f"{method} {path} -> {status}"
        route = self._route_key(path)
        with self._lock:
            self.requests_total += 1
            self._responses[key] = self._responses.get(key, 0) + 1
            reservoir = self._latencies.get(route)
            if reservoir is None:
                reservoir = self._latencies[route] = deque(maxlen=self._reservoir)
            reservoir.append(seconds)
            if status >= 400:
                self.error_responses += 1

    def record_query(self, *, coalesced: bool) -> None:
        with self._lock:
            self.queries_total += 1
            if coalesced:
                self.coalesced_total += 1

    def record_query_latency(self, kind: str, seconds: float) -> None:
        """Fold one query execution time into its kind's histogram."""
        with self._lock:
            buckets = self._kind_buckets.get(kind)
            if buckets is None:
                buckets = self._kind_buckets[kind] = [0] * (
                    len(HISTOGRAM_BUCKETS) + 1
                )
                self._kind_sum[kind] = 0.0
                self._kind_count[kind] = 0
            slot = len(HISTOGRAM_BUCKETS)  # +Inf
            for index, bound in enumerate(HISTOGRAM_BUCKETS):
                if seconds <= bound:
                    slot = index
                    break
            buckets[slot] += 1
            self._kind_sum[kind] += seconds
            self._kind_count[kind] += 1

    def record_streamed_request(self) -> None:
        with self._lock:
            self.streamed_requests += 1

    def record_answer(self, answer) -> None:
        """Fold one answer's provenance into the campaign aggregates."""
        provenance = answer.provenance
        with self._lock:
            self.answers_total += 1
            if provenance.cache_hit:
                self.answer_cache_hits += 1
            self.campaign_shards += provenance.shards
            if provenance.degraded:
                self.degraded_answers += 1
                self.dropped_shards += len(provenance.dropped_shards)

    # -- reporting ---------------------------------------------------------
    def snapshot(self, *, engine=None, extra: dict | None = None) -> dict:
        """JSON-ready metrics document (one consistent read)."""
        with self._lock:
            by_route = {
                route: list(self._latencies[route])
                for route in sorted(self._latencies)
            }
            responses = {key: self._responses[key] for key in sorted(self._responses)}
            kinds = {
                kind: {
                    "count": self._kind_count[kind],
                    "sum": self._kind_sum[kind],
                    "buckets": list(self._kind_buckets[kind]),
                }
                for kind in sorted(self._kind_buckets)
            }
            answers = self.answers_total
            data = {
                "requests_total": self.requests_total,
                "responses": responses,
                "error_responses": self.error_responses,
                "queries_total": self.queries_total,
                "answers_total": answers,
                "coalesced_total": self.coalesced_total,
                "streamed_requests": self.streamed_requests,
                "campaigns": {
                    "shards_total": self.campaign_shards,
                    "degraded_answers": self.degraded_answers,
                    "dropped_shards": self.dropped_shards,
                    "answer_cache_hits": self.answer_cache_hits,
                    "answer_cache_hit_rate": (
                        self.answer_cache_hits / answers if answers else 0.0
                    ),
                },
            }
        # The headline latency excludes health/metrics polls by design.
        service = [
            value
            for route, values in by_route.items()
            if route.startswith("/v1/")
            for value in values
        ]
        data["latency_seconds"] = _latency_summary(sorted(service))
        data["latency_by_route"] = {
            route: _latency_summary(sorted(values))
            for route, values in by_route.items()
        }
        data["query_latency_by_kind"] = {
            kind: {
                "count": entry["count"],
                "sum": entry["sum"],
                "mean": entry["sum"] / entry["count"] if entry["count"] else 0.0,
                "buckets": {
                    _bucket_label(index): entry["buckets"][index]
                    for index in range(len(HISTOGRAM_BUCKETS) + 1)
                },
            }
            for kind, entry in kinds.items()
        }
        if engine is not None:
            data["engine_cache"] = engine.cache_info()
        if extra:
            data.update(extra)
        return data


def _bucket_label(index: int) -> str:
    if index >= len(HISTOGRAM_BUCKETS):
        return "+Inf"
    return format(HISTOGRAM_BUCKETS[index], "g")


def _latency_summary(latencies: list[float]) -> dict:
    """Summary stats of a sorted latency list (nearest-rank percentiles).

    Nearest-rank: the p-th percentile of n samples is element
    ``ceil(p·n) − 1`` (0-based) of the sorted list — so p50 of ``[1, 2]``
    is 1, not 2 (the old ``int(p·n)`` index overshot by up to one rank).
    """
    if not latencies:
        return {"count": 0}
    count = len(latencies)
    summary: dict = {
        "count": count,
        "mean": sum(latencies) / count,
        "max": latencies[-1],
    }
    for label, fraction in _PERCENTILES:
        rank = max(math.ceil(fraction * count) - 1, 0)
        summary[label] = latencies[min(rank, count - 1)]
    return summary


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(snapshot: dict) -> str:
    """One :meth:`ServiceMetrics.snapshot` as Prometheus text exposition.

    Deterministic for a given snapshot: metric families and label sets
    are emitted in sorted order.  Served by
    ``GET /metrics?format=prometheus``.
    """
    lines: list[str] = []

    def family(name: str, kind: str, help_text: str) -> None:
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    def sample(name: str, labels: dict | None, value) -> None:
        if labels:
            rendered = ",".join(
                f'{key}="{_escape_label(labels[key])}"' for key in sorted(labels)
            )
            lines.append(f"{name}{{{rendered}}} {_fmt(value)}")
        else:
            lines.append(f"{name} {_fmt(value)}")

    counters = (
        ("repro_requests_total", "requests_total", "HTTP requests handled."),
        ("repro_error_responses_total", "error_responses", "Responses with status >= 400."),
        ("repro_queries_total", "queries_total", "Queries received."),
        ("repro_answers_total", "answers_total", "Answers produced."),
        ("repro_coalesced_total", "coalesced_total", "Queries coalesced onto an in-flight execution."),
        ("repro_streamed_requests_total", "streamed_requests", "Requests answered as ndjson streams."),
    )
    for name, key, help_text in counters:
        family(name, "counter", help_text)
        sample(name, None, snapshot.get(key, 0))

    family("repro_responses_total", "counter", "Responses by method, path and status.")
    for key in sorted(snapshot.get("responses", {})):
        try:
            method_path, status = key.rsplit(" -> ", 1)
            method, path = method_path.split(" ", 1)
        except ValueError:
            method, path, status = "?", key, "?"
        sample(
            "repro_responses_total",
            {"method": method, "path": path, "status": status},
            snapshot["responses"][key],
        )

    campaigns = snapshot.get("campaigns", {})
    campaign_counters = (
        ("repro_campaign_shards_total", "shards_total", "Shards dispatched across campaigns."),
        ("repro_campaign_degraded_answers_total", "degraded_answers", "Answers returned degraded."),
        ("repro_campaign_dropped_shards_total", "dropped_shards", "Shards dropped after exhausting retries."),
        ("repro_campaign_answer_cache_hits_total", "answer_cache_hits", "Answers served from the engine memo."),
    )
    for name, key, help_text in campaign_counters:
        family(name, "counter", help_text)
        sample(name, None, campaigns.get(key, 0))
    family("repro_campaign_answer_cache_hit_rate", "gauge", "Fraction of answers served from cache.")
    sample(
        "repro_campaign_answer_cache_hit_rate",
        None,
        campaigns.get("answer_cache_hit_rate", 0.0),
    )

    family(
        "repro_request_latency_seconds",
        "summary",
        "Request latency percentiles per route (nearest-rank over a bounded reservoir).",
    )
    quantiles = {"p50": "0.5", "p90": "0.9", "p99": "0.99"}
    for route in sorted(snapshot.get("latency_by_route", {})):
        summary = snapshot["latency_by_route"][route]
        if not summary.get("count"):
            continue
        for label, quantile in quantiles.items():
            sample(
                "repro_request_latency_seconds",
                {"route": route, "quantile": quantile},
                summary[label],
            )
        sample("repro_request_latency_seconds_count", {"route": route}, summary["count"])

    family(
        "repro_query_latency_seconds",
        "histogram",
        "Query execution latency per query kind.",
    )
    for kind in sorted(snapshot.get("query_latency_by_kind", {})):
        entry = snapshot["query_latency_by_kind"][kind]
        cumulative = 0
        for index in range(len(HISTOGRAM_BUCKETS)):
            label = _bucket_label(index)
            cumulative += entry["buckets"].get(label, 0)
            sample(
                "repro_query_latency_seconds_bucket",
                {"kind": kind, "le": label},
                cumulative,
            )
        sample(
            "repro_query_latency_seconds_bucket",
            {"kind": kind, "le": "+Inf"},
            entry["count"],
        )
        sample("repro_query_latency_seconds_sum", {"kind": kind}, entry["sum"])
        sample("repro_query_latency_seconds_count", {"kind": kind}, entry["count"])

    engine_cache = snapshot.get("engine_cache")
    if engine_cache:
        for key, kind in (
            ("hits", "counter"),
            ("misses", "counter"),
            ("size", "gauge"),
            ("hit_rate", "gauge"),
        ):
            name = f"repro_engine_cache_{key}"
            family(name, kind, f"Engine memo {key}.")
            sample(name, None, engine_cache.get(key, 0))

    if "uptime_seconds" in snapshot:
        family("repro_uptime_seconds", "gauge", "Daemon uptime.")
        sample("repro_uptime_seconds", None, snapshot["uptime_seconds"])

    return "\n".join(lines) + "\n"
