"""Single-flight coalescing of identical in-flight queries.

Production traffic repeats itself: a popular dashboard asks the same
availability question from a hundred sessions at once.  The engine memo
already deduplicates *completed* answers, but without coalescing, a
burst of identical queries that all miss the cold cache would each start
their own campaign — N executions of bit-identical work.  The registry
below keys every execution by the query's canonical JSON form and hands
latecomers the *same* future the first arrival started: one execution,
fanned-out results, and a counter proving it.

The registry lives on the daemon's single event loop, so the in-flight
dict needs no lock — only executor results cross threads, through the
loop-owned futures.  Awaiters are shielded from each other: a client
disconnecting mid-wait cancels its own await, never the shared
execution (which still completes and warms the engine memo).
"""

from __future__ import annotations

import asyncio
import json
from typing import Awaitable, Callable


def canonical_query_key(query) -> str:
    """The coalescing identity of a query: its canonical JSON form.

    Two queries with equal dict forms compile to bit-identical work (the
    dict form round-trips every field, enforced by the cache-key-coverage
    contract), so one execution can serve both.  Keying on the serialized
    form rather than the engine's internal memo keys keeps the daemon
    independent of per-backend key layouts.
    """
    return json.dumps(query.to_dict(), sort_keys=True, default=repr)


class InflightRegistry:
    """Map of canonical query key → the one task computing its answer."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Task] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self, key: str, start: Callable[[], Awaitable]
    ) -> tuple[object, bool]:
        """Await ``key``'s answer; returns ``(value, joined_existing)``.

        The first caller for a key invokes ``start()`` and registers the
        task; concurrent callers with the same key await that task
        instead of starting their own.  The entry is removed when the
        task settles, so later repeats re-execute (or, usually, hit the
        engine memo).  Errors propagate to every awaiter.
        """
        task = self._inflight.get(key)
        joined = task is not None
        if task is None:
            task = asyncio.ensure_future(start())
            self._inflight[key] = task
            task.add_done_callback(
                lambda finished, key=key: self._inflight.pop(key, None)
            )
        return await asyncio.shield(task), joined
