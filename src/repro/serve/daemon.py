"""``repro.serve`` daemon: the reliability engine as a query service.

Everything below PR 7 is batch: a process starts, answers its scenario
file, and exits — the memo cache dies with it.  The daemon turns the
same engine into shared infrastructure: one long-lived
:class:`~repro.engine.ReliabilityEngine` (thread-safe LRU memo + campaign
cache) warm across *all* requests, the existing ``Query``/``QuerySet``
JSON accepted over ``POST /v1/query``, identical in-flight queries
coalesced into a single execution (:mod:`repro.serve.coalesce`), and
every simulation campaign run under the supervised runtime — per-shard
timeouts, retries and graceful degradation, so a hung shard costs one
shard's deadline, never a wedged request thread.  Completed campaign
shards journal to the checkpoint directory, so a daemon restart resumes
interrupted campaigns bit-identically instead of recomputing them.

Request execution happens on a bounded thread pool (the engine's NumPy
hot paths release the GIL; campaign fan-out adds its own policy workers
per query), while the asyncio loop only parses, routes and streams.
Long campaigns can opt into progress streaming
(``POST /v1/query?stream=1`` → chunked JSON lines, one per answer as it
completes).  ``GET /healthz`` and ``GET /metrics`` expose liveness and
the service counters (request counts, latency percentiles, engine cache
hit rate, coalescing and campaign/degradation aggregates).

Determinism note: the daemon never changes any answer value.  Its
policy (:meth:`~repro.engine.ExecutionPolicy.for_service`) is a
spawned-stream thread policy, so a response is bit-identical to running
the same query file through ``repro-analyze query --jobs N`` for any
``N`` — proven in ``tests/test_serve.py``.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from repro.engine import ExecutionPolicy, QuerySet, ReliabilityEngine
from repro.errors import InvalidConfigurationError, ReproError
from repro.serve.coalesce import InflightRegistry, canonical_query_key
from repro.serve.http import (
    HttpError,
    HttpRequest,
    end_chunked_response,
    read_request,
    start_chunked_response,
    write_chunk,
    write_response,
)
from repro.serve.metrics import ServiceMetrics, render_prometheus
from repro.obs.trace import (
    NULL_TRACER,
    Tracer,
    register_tracer,
    unregister_tracer,
    use_tracer,
)


def _answer_row(answer) -> dict:
    """Answer dict plus the supervision ``run`` report when one exists.

    The report rides ``Provenance.report`` and is attached here — at the
    wire layer — rather than inside ``Answer.to_dict``, so recovered and
    clean campaigns keep byte-identical answer payloads.
    """
    row = answer.to_dict()
    report = answer.provenance.report
    if report is not None:
        row["run"] = report.to_dict()
    return row


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one daemon process.

    ``jobs`` is the per-campaign shard fan-out (the policy's worker
    count); ``executor_workers`` bounds how many *requests'* queries
    execute concurrently.  ``shard_timeout`` / ``retries`` /
    ``on_shard_failure`` are the supervision knobs every campaign runs
    under; ``checkpoint_dir`` enables the restart-resume journal.
    ``trace_path`` turns on per-request tracing: every request, query
    and campaign shard is recorded and the trace is written on shutdown
    (Chrome trace-event JSON, or a JSONL span log when the path ends in
    ``.jsonl``).  None of them changes any answer value.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    jobs: int | None = None
    checkpoint_dir: str | None = None
    shard_timeout: float | None = 60.0
    retries: int = 1
    on_shard_failure: str = "degrade"
    shard_trials: int | None = None
    cache_size: int = 4096
    executor_workers: int = 8
    max_body_bytes: int = 8 * 1024 * 1024
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise InvalidConfigurationError(f"port {self.port} outside [0, 65535]")
        if self.executor_workers < 1:
            raise InvalidConfigurationError(
                f"executor_workers must be >= 1, got {self.executor_workers}"
            )
        if self.max_body_bytes <= 0:
            raise InvalidConfigurationError(
                f"max_body_bytes must be positive, got {self.max_body_bytes}"
            )
        if self.cache_size < 0:
            raise InvalidConfigurationError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )

    def policy(self) -> ExecutionPolicy:
        return ExecutionPolicy.for_service(
            self.jobs,
            timeout=self.shard_timeout,
            retries=self.retries,
            on_shard_failure=self.on_shard_failure,
            checkpoint_dir=self.checkpoint_dir,
            shard_trials=self.shard_trials,
        )


class ReliabilityService:
    """One warm engine behind an asyncio HTTP front end."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        engine: ReliabilityEngine | None = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.engine = (
            engine
            if engine is not None
            else ReliabilityEngine(cache_size=self.config.cache_size)
        )
        self.policy = self.config.policy()
        self.metrics = ServiceMetrics()
        self.inflight = InflightRegistry()
        self.port: int | None = None
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.executor_workers,
            thread_name_prefix="repro-serve",
        )
        self._started_at = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        # Tracing is a config opt-in; the trace id derives from the bind
        # address (a digest — never RNG) and the registry registration
        # lets campaign worker threads re-attach via their payload's span
        # context.  With tracing off, self.tracer is the shared no-op.
        if self.config.trace_path:
            from repro.obs.trace import InMemoryExporter

            self._trace_exporter = InMemoryExporter()
            self.tracer = Tracer.for_key(
                ("repro.serve", self.config.host, self.config.port),
                exporter=self._trace_exporter,
            )
            register_tracer(self.tracer)
        else:
            self._trace_exporter = None
            self.tracer = NULL_TRACER
        # canonical query key -> span id of the single execution that
        # answered it; coalesced joiners link here.  Only populated while
        # tracing is on (bounded by distinct query keys, like the memo).
        self._exec_spans: dict = {}
        self._exec_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> asyncio.AbstractServer:
        """Bind and start serving; resolves ``self.port`` (``port=0`` ok)."""
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self._server

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self._trace_exporter is not None:
            unregister_tracer(self.tracer)
            # File I/O stays off the event loop (async-hygiene contract).
            await asyncio.get_running_loop().run_in_executor(
                None, self._flush_trace
            )

    def _flush_trace(self) -> None:
        from repro.obs.export import write_trace

        write_trace(self._trace_exporter.records, self.config.trace_path)

    # -- connection handling -----------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body_bytes
                    )
                except HttpError as error:
                    await self._error_response(
                        writer, error.status, error.reason, keep_alive=False
                    )
                    break
                if request is None:
                    break
                started = time.perf_counter()
                with self.tracer.span(
                    "http.request",
                    track="http",
                    method=request.method,
                    path=request.path,
                ) as request_span:
                    status = await self._dispatch(request, writer)
                    request_span.set("status", status)
                self.metrics.record_request(
                    request.method,
                    request.path,
                    status,
                    time.perf_counter() - started,
                )
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            # The client went away (or the server is shutting down)
            # mid-exchange; there is nobody left to answer.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                # A shutdown cancel can land while we drain the close; the
                # connection is going away either way, so end the task
                # cleanly rather than spamming the loop's exception hook.
                asyncio.CancelledError,
            ):
                pass

    async def _dispatch(self, request: HttpRequest, writer) -> int:
        if request.path == "/healthz":
            if request.method != "GET":
                return await self._error_response(writer, 405, "GET only")
            body = json.dumps(
                {
                    "status": "ok",
                    "uptime_seconds": time.monotonic() - self._started_at,
                }
            ).encode("utf-8")
            await write_response(writer, 200, body, keep_alive=request.keep_alive)
            return 200
        if request.path == "/metrics":
            if request.method != "GET":
                return await self._error_response(writer, 405, "GET only")
            snapshot = self.metrics.snapshot(
                engine=self.engine,
                extra={
                    "uptime_seconds": time.monotonic() - self._started_at,
                    "inflight_queries": len(self.inflight),
                },
            )
            if request.query.get("format") == "prometheus":
                await write_response(
                    writer,
                    200,
                    render_prometheus(snapshot).encode("utf-8"),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                    keep_alive=request.keep_alive,
                )
                return 200
            body = json.dumps(snapshot).encode("utf-8")
            await write_response(writer, 200, body, keep_alive=request.keep_alive)
            return 200
        if request.path == "/v1/query":
            if request.method != "POST":
                return await self._error_response(writer, 405, "POST only")
            return await self._handle_query(request, writer)
        return await self._error_response(
            writer, 404, f"no route for {request.path!r}"
        )

    async def _error_response(
        self, writer, status: int, message: str, *, keep_alive: bool = True
    ) -> int:
        body = json.dumps({"error": message}).encode("utf-8")
        await write_response(writer, status, body, keep_alive=keep_alive)
        return status

    # -- the query route ---------------------------------------------------
    async def _handle_query(self, request: HttpRequest, writer) -> int:
        try:
            text = request.body.decode("utf-8")
            query_set = QuerySet.from_json(text)
        except (
            ReproError,
            json.JSONDecodeError,
            UnicodeDecodeError,
            KeyError,
            TypeError,
            ValueError,
        ) as error:
            return await self._error_response(
                writer, 400, f"invalid query payload: {error}"
            )
        if not len(query_set):
            return await self._error_response(writer, 400, "no queries in payload")
        stream = request.query.get("stream") not in (None, "", "0")
        started = time.perf_counter()
        tasks = [
            asyncio.ensure_future(self._tagged_answer(index, query))
            for index, query in enumerate(query_set)
        ]
        if stream:
            self.metrics.record_streamed_request()
            return await self._stream_answers(request, writer, tasks, started)
        outcomes = await asyncio.gather(*tasks)
        failures = [
            (index, error) for index, _, error, _ in outcomes if error is not None
        ]
        if failures:
            index, error = failures[0]
            status = 422 if isinstance(error, ReproError) else 500
            body = json.dumps(
                {
                    "error": str(error),
                    "failed_index": index,
                    "failures": len(failures),
                }
            ).encode("utf-8")
            await write_response(writer, status, body, keep_alive=request.keep_alive)
            return status
        rows = [_answer_row(answer) for _, answer, _, _ in outcomes]
        coalesced = sum(1 for _, _, _, joined in outcomes if joined)
        body = json.dumps(
            {
                "answers": rows,
                "count": len(rows),
                "coalesced": coalesced,
                "cache_hits": sum(1 for row in rows if row.get("cache_hit")),
                "seconds": time.perf_counter() - started,
            }
        ).encode("utf-8")
        await write_response(writer, 200, body, keep_alive=request.keep_alive)
        return 200

    async def _stream_answers(
        self, request: HttpRequest, writer, tasks, started: float
    ) -> int:
        """Chunked JSON-lines: one row per answer as it completes.

        Completion order, each line tagged with its submission ``index``
        — a long campaign's finished answers arrive while slower ones
        still run; the final line is the run summary.
        """
        await start_chunked_response(writer, 200, keep_alive=request.keep_alive)
        answered = errors = coalesced = 0
        for finished in asyncio.as_completed(tasks):
            index, answer, error, joined = await finished
            coalesced += 1 if joined else 0
            if error is not None:
                errors += 1
                line: dict = {"index": index, "error": str(error)}
            else:
                answered += 1
                line = {"index": index}
                line.update(_answer_row(answer))
            await write_chunk(writer, (json.dumps(line) + "\n").encode("utf-8"))
        summary = {
            "done": True,
            "answers": answered,
            "errors": errors,
            "coalesced": coalesced,
            "seconds": time.perf_counter() - started,
        }
        await write_chunk(writer, (json.dumps(summary) + "\n").encode("utf-8"))
        await end_chunked_response(writer)
        return 200

    async def _tagged_answer(self, index: int, query):
        """(index, answer, error, joined) — never raises, streams need all."""
        key = canonical_query_key(query)
        loop = asyncio.get_running_loop()
        query_started = time.perf_counter()
        with self.tracer.span(
            "serve.query", kind=query.kind, label=query.label or ""
        ) as query_span:
            try:
                answer, joined = await self.inflight.run(
                    key,
                    lambda: loop.run_in_executor(
                        self._pool,
                        partial(self._run_query, query, query_span.context(), key),
                    ),
                )
            except Exception as error:
                query_span.set("error", type(error).__name__)
                return index, None, error, False
            finally:
                self.metrics.record_query_latency(
                    query.kind, time.perf_counter() - query_started
                )
            if joined:
                # A coalesced joiner never executed anything: record the
                # link to the one execution span that answered it.
                query_span.set("coalesced", True)
                with self._exec_lock:
                    query_span.link(self._exec_spans.get(key))
        self.metrics.record_query(coalesced=joined)
        self.metrics.record_answer(answer)
        return index, answer, None, joined

    def _run_query(self, query, span_context=None, key=None):
        """Executor-thread entry: one query through the shared warm engine.

        Per-query submissions (rather than whole request batches) are
        what make single-flight coalescing and streaming possible; the
        in-batch sharing they give up (same-size DP groups, same-chain
        CTMC solves) is exactly what the engine memo provides across
        requests instead, and per-query values are bit-identical to
        batched ones by the engine's batching contracts.

        ``span_context`` (the requesting ``serve.query`` span) parents the
        execution span — executors do not inherit the event loop's
        contextvars, so the hop is explicit; ``use_tracer`` then installs
        the service tracer on this thread so engine/runtime spans nest
        under the execution.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self.engine.run([query], policy=self.policy)[0]
        with tracer.span(
            "query.execute", parent=span_context, track="executor", kind=query.kind
        ) as execute_span:
            if key is not None:
                with self._exec_lock:
                    self._exec_spans[key] = execute_span.span_id
            with use_tracer(tracer):
                return self.engine.run([query], policy=self.policy)[0]


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
async def _serve_async(config: ServiceConfig, *, announce: bool = True) -> None:
    service = ReliabilityService(config)
    server = await service.start()
    if announce:
        print(
            f"repro-serve listening on http://{config.host}:{service.port} "
            f"(jobs={config.jobs or 1}, checkpoint_dir={config.checkpoint_dir})",
            flush=True,
        )
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.aclose()


def serve_forever(config: ServiceConfig | None = None) -> None:
    """Blocking CLI entry: serve until interrupted."""
    try:
        asyncio.run(_serve_async(config if config is not None else ServiceConfig()))
    except KeyboardInterrupt:
        return


class BackgroundServer:
    """A daemon on its own event-loop thread (tests, benches, demos).

    ``with BackgroundServer(config) as server:`` yields a running server
    whose ``server.port`` is resolved (use ``port=0`` for an ephemeral
    port) and whose ``server.service`` exposes the live engine/metrics.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        *,
        engine: ReliabilityEngine | None = None,
    ):
        self.config = config if config is not None else ServiceConfig(port=0)
        self._engine = engine
        self.service: ReliabilityService | None = None
        self.port: int | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if self.port is None:
            raise RuntimeError("server failed to start within 30s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
        except Exception as error:
            self._startup_error = error
            self._ready.set()
        finally:
            loop.close()

    async def _serve(self) -> None:
        self.service = ReliabilityService(self.config, engine=self._engine)
        await self.service.start()
        self.port = self.service.port
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await self.service.aclose()
        # Keep-alive connection handlers may still be parked in
        # read_request; cancel them so the loop closes without orphans.
        pending = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in pending:
            task.cancel()
        await asyncio.gather(*pending, return_exceptions=True)

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
