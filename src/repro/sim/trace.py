"""Execution tracing and telemetry for simulated runs.

Records the observable history of a run — commits per node, leadership
changes, crashes, message counts — in a form the
:mod:`repro.sim.checker` can audit for agreement and progress, and the
:mod:`repro.telemetry` pipeline can ingest as synthetic ops telemetry.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class CommitRecord:
    """One slot decided by one node."""

    time: float
    node_id: int
    slot: int
    value: object


@dataclass(frozen=True)
class TraceEvent:
    """Generic annotated event (crash, recovery, view change, ...)."""

    time: float
    node_id: int
    kind: str
    detail: str = ""


@dataclass
class TraceRecorder:
    """Accumulates the observable history of one simulation run."""

    commits: list[CommitRecord] = field(default_factory=list)
    events: list[TraceEvent] = field(default_factory=list)

    def record_commit(self, time: float, node_id: int, slot: int, value: object) -> None:
        self.commits.append(CommitRecord(time=time, node_id=node_id, slot=slot, value=value))

    def record_event(self, time: float, node_id: int, kind: str, detail: str = "") -> None:
        self.events.append(TraceEvent(time=time, node_id=node_id, kind=kind, detail=detail))

    # ------------------------------------------------------------------
    # Views used by the checker
    # ------------------------------------------------------------------
    def committed_by_node(self) -> dict[int, dict[int, object]]:
        """``node_id -> slot -> value`` map of everything each node decided."""
        table: dict[int, dict[int, object]] = defaultdict(dict)
        for record in self.commits:
            table[record.node_id][record.slot] = record.value
        return dict(table)

    def committed_values(self, node_id: int) -> list[object]:
        """Values node ``node_id`` committed, in slot order."""
        slots = self.committed_by_node().get(node_id, {})
        return [slots[slot] for slot in sorted(slots)]

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def crash_intervals(self, horizon: float) -> dict[int, list[tuple[float, float]]]:
        """Per-node [crash, recover) intervals, closed at ``horizon``."""
        intervals: dict[int, list[tuple[float, float]]] = defaultdict(list)
        open_crash: dict[int, float] = {}
        for event in sorted(self.events, key=lambda e: e.time):
            if event.kind == "crash":
                open_crash.setdefault(event.node_id, event.time)
            elif event.kind == "recover" and event.node_id in open_crash:
                start = open_crash.pop(event.node_id)
                intervals[event.node_id].append((start, event.time))
        for node_id, start in open_crash.items():
            intervals[node_id].append((start, horizon))
        return dict(intervals)

    def summary(self) -> dict[str, int]:
        kinds: dict[str, int] = defaultdict(int)
        for event in self.events:
            kinds[event.kind] += 1
        return {"commits": len(self.commits), **kinds}


def merge_traces(traces: Iterable[TraceRecorder]) -> TraceRecorder:
    """Combine traces from multiple runs/recorders into one (for batch stats)."""
    merged = TraceRecorder()
    for trace in traces:
        merged.commits.extend(trace.commits)
        merged.events.extend(trace.events)
    merged.commits.sort(key=lambda r: r.time)
    merged.events.sort(key=lambda e: e.time)
    return merged
