"""Client workload generators for simulator experiments.

Shapes the command arrival process a simulated cluster faces — steady
(closed cadence), Poisson (open loop) and bursty (on/off) — and records
submission times so :mod:`repro.sim.stats` can compute latency
distributions.  Workload shifts are one of the §2 fault-correlation
drivers, so the bursty generator doubles as the load-spike stimulus in
correlated-failure experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class WorkloadEvent:
    """One command submission."""

    at: float
    value: object


def steady_workload(
    count: int, *, start: float = 0.5, interval: float = 0.05, prefix: str = "cmd"
) -> list[WorkloadEvent]:
    """Fixed-cadence submissions: ``count`` commands every ``interval`` s."""
    if count < 0 or interval <= 0 or start < 0:
        raise InvalidConfigurationError("invalid steady workload parameters")
    return [
        WorkloadEvent(at=start + i * interval, value=f"{prefix}-{i}") for i in range(count)
    ]


def poisson_workload(
    *,
    rate_per_second: float,
    duration: float,
    start: float = 0.5,
    prefix: str = "cmd",
    seed: SeedLike = None,
) -> list[WorkloadEvent]:
    """Open-loop Poisson arrivals at ``rate_per_second`` over ``duration``."""
    if rate_per_second <= 0 or duration <= 0 or start < 0:
        raise InvalidConfigurationError("invalid poisson workload parameters")
    rng = as_generator(seed)
    events = []
    t = start
    index = 0
    while True:
        t += float(rng.exponential(1.0 / rate_per_second))
        if t >= start + duration:
            break
        events.append(WorkloadEvent(at=t, value=f"{prefix}-{index}"))
        index += 1
    return events


def bursty_workload(
    *,
    bursts: int,
    burst_size: int,
    burst_interval: float,
    within_burst_interval: float = 0.005,
    start: float = 0.5,
    prefix: str = "cmd",
) -> list[WorkloadEvent]:
    """On/off load: ``bursts`` trains of ``burst_size`` back-to-back commands.

    The §2 "sudden workload shifts" stimulus: bursts stress the commit path
    far harder than the same command count spread evenly.
    """
    if bursts <= 0 or burst_size <= 0 or burst_interval <= 0 or within_burst_interval <= 0:
        raise InvalidConfigurationError("invalid bursty workload parameters")
    events = []
    index = 0
    for burst in range(bursts):
        burst_start = start + burst * burst_interval
        for i in range(burst_size):
            events.append(
                WorkloadEvent(
                    at=burst_start + i * within_burst_interval, value=f"{prefix}-{index}"
                )
            )
            index += 1
    return events


def apply_workload(cluster: Cluster, events: list[WorkloadEvent]) -> dict[object, float]:
    """Schedule every event on the cluster; returns the submit-time map.

    The returned mapping feeds :func:`repro.sim.stats.latency_summary`.
    """
    submit_times: dict[object, float] = {}
    for event in events:
        if event.value in submit_times:
            raise InvalidConfigurationError(f"duplicate command value {event.value!r}")
        submit_times[event.value] = event.at
        cluster.submit(event.value, at=event.at)
    return submit_times


def workload_values(events: list[WorkloadEvent]) -> list[object]:
    """The command list in submission order (for completion audits)."""
    return [event.value for event in sorted(events, key=lambda e: e.at)]


def interleave(*workloads: list[WorkloadEvent]) -> list[WorkloadEvent]:
    """Merge several workloads into one time-ordered stream."""
    merged: Iterator[WorkloadEvent] = iter(
        sorted((event for workload in workloads for event in workload), key=lambda e: e.at)
    )
    return list(merged)
