"""Discrete-event consensus simulator (validation substrate).

Deterministic seeded executions of full Raft and PBFT state machines under
fault-curve-driven crash/Byzantine injection, with trace-level agreement
and completion audits.  Exists to validate the analysis layer: predicate
verdicts (§3 theorems) must match what actual protocol runs exhibit.
"""

from repro.sim.checker import (
    AgreementViolation,
    LivenessVerdict,
    RunVerdict,
    SafetyVerdict,
    audit_run,
    check_agreement,
    check_completion,
)
from repro.sim.cluster import Cluster, run_scenario
from repro.sim.events import EventScheduler
from repro.sim.failures import InjectionPlan, plan_from_config, plan_from_curves
from repro.sim.network import (
    FixedLatency,
    LogNormalLatency,
    Network,
    UniformLatency,
)
from repro.sim.node import Process
from repro.sim.stats import (
    LatencySummary,
    LeadershipStats,
    commit_latencies,
    latency_summary,
    leadership_stats,
    unavailable_windows,
)
from repro.sim.trace import TraceRecorder, merge_traces
from repro.sim.workloads import (
    WorkloadEvent,
    apply_workload,
    bursty_workload,
    interleave,
    poisson_workload,
    steady_workload,
    workload_values,
)

__all__ = [
    "EventScheduler",
    "Network",
    "FixedLatency",
    "UniformLatency",
    "LogNormalLatency",
    "Process",
    "Cluster",
    "run_scenario",
    "InjectionPlan",
    "plan_from_config",
    "plan_from_curves",
    "TraceRecorder",
    "LatencySummary",
    "LeadershipStats",
    "commit_latencies",
    "latency_summary",
    "leadership_stats",
    "unavailable_windows",
    "WorkloadEvent",
    "steady_workload",
    "poisson_workload",
    "bursty_workload",
    "apply_workload",
    "workload_values",
    "interleave",
    "merge_traces",
    "audit_run",
    "check_agreement",
    "check_completion",
    "RunVerdict",
    "SafetyVerdict",
    "LivenessVerdict",
    "AgreementViolation",
]
