"""Process abstraction for simulated protocol nodes.

A :class:`Process` is a state machine driven by three callbacks —
``on_start``, ``on_message`` and named timers — with crash/recover
lifecycle management.  Protocol implementations (Raft, PBFT) subclass it;
the harness in :mod:`repro.sim.cluster` wires processes to the network and
scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.events import EventHandle, EventScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.network import Network


class Process(ABC):
    """One simulated node: identity, messaging helpers, timers, lifecycle."""

    def __init__(
        self,
        node_id: int,
        scheduler: EventScheduler,
        network: "Network",
        rng: np.random.Generator,
    ):
        self.node_id = node_id
        self._scheduler = scheduler
        self._network = network
        self._rng = rng
        self._running = False
        self._crashed = False
        self._timers: dict[str, EventHandle] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self._running and not self._crashed

    @property
    def is_crashed(self) -> bool:
        return self._crashed

    @property
    def now(self) -> float:
        return self._scheduler.now

    def start(self) -> None:
        if self._running:
            raise SimulationError(f"node {self.node_id} already started")
        self._running = True
        self.on_start()

    def crash(self) -> None:
        """Fail-stop: cancel timers, drop future deliveries."""
        if self._crashed:
            return
        self._crashed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self.on_crash()

    def recover(self) -> None:
        """Restart after a crash, keeping only durable state.

        Subclasses override :meth:`on_recover` to reset volatile state (the
        Raft paper's volatile/persistent split).
        """
        if not self._crashed:
            raise SimulationError(f"node {self.node_id} is not crashed")
        self._crashed = False
        self.on_recover()

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dst: int, payload: object) -> None:
        if not self.is_running:
            return
        self._network.send(self.node_id, dst, payload)

    def broadcast(self, payload: object, *, include_self: bool = False) -> None:
        if not self.is_running:
            return
        self._network.broadcast(self.node_id, payload, include_self=include_self)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def set_timer(self, name: str, delay: float) -> None:
        """(Re)arm a named timer; fires ``on_timer(name)`` after ``delay``."""
        self.cancel_timer(name)
        handle = self._scheduler.schedule_after(delay, lambda: self._fire_timer(name))
        self._timers[name] = handle

    def cancel_timer(self, name: str) -> None:
        handle = self._timers.pop(name, None)
        if handle is not None:
            handle.cancel()

    def has_timer(self, name: str) -> bool:
        return name in self._timers

    def _fire_timer(self, name: str) -> None:
        self._timers.pop(name, None)
        if self.is_running:
            self.on_timer(name)

    # ------------------------------------------------------------------
    # Protocol callbacks
    # ------------------------------------------------------------------
    @abstractmethod
    def on_start(self) -> None:
        """Called once when the node boots."""

    @abstractmethod
    def on_message(self, src: int, payload: object) -> None:
        """Called for every delivered message while running."""

    def on_timer(self, name: str) -> None:  # pragma: no cover - optional hook
        """Called when a named timer fires (default: ignore)."""

    def on_crash(self) -> None:  # pragma: no cover - optional hook
        """Called when the node crashes (default: nothing)."""

    def on_recover(self) -> None:  # pragma: no cover - optional hook
        """Called when the node recovers (default: nothing)."""

    def __repr__(self) -> str:
        state = "crashed" if self._crashed else ("up" if self._running else "new")
        return f"{type(self).__name__}(id={self.node_id}, {state})"


class IdleProcess(Process):
    """A process that does nothing — useful filler in harness tests."""

    def on_start(self) -> None:
        pass

    def on_message(self, src: int, payload: object) -> None:
        pass
