"""Raft wire messages (Ongaro & Ousterhout, simulator dialect).

Immutable dataclasses; ``entries`` travel as tuples so a message can never
alias a node's live log.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.raft.log import LogEntry


@dataclass(frozen=True)
class RequestVote:
    """Candidate solicits a vote for ``term``."""

    term: int
    candidate_id: int
    last_log_index: int
    last_log_term: int


@dataclass(frozen=True)
class VoteResponse:
    """Reply to :class:`RequestVote`."""

    term: int
    voter_id: int
    granted: bool


@dataclass(frozen=True)
class AppendEntries:
    """Leader replicates ``entries`` after (``prev_log_index``, ``prev_log_term``).

    Also the heartbeat when ``entries`` is empty.
    """

    term: int
    leader_id: int
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclass(frozen=True)
class AppendResponse:
    """Reply to :class:`AppendEntries`."""

    term: int
    follower_id: int
    success: bool
    match_index: int
