"""Raft replicated log.

1-indexed like the Raft paper (index 0 is the empty sentinel).  The log is
the *persistent* half of a node's state: it survives crash/recover cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError


@dataclass(frozen=True)
class LogEntry:
    """One replicated command tagged with the term it was proposed in."""

    term: int
    value: object


class RaftLog:
    """Append-only log with Raft's conflict-truncation semantics."""

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_index(self) -> int:
        """Index of the last entry (0 when empty)."""
        return len(self._entries)

    @property
    def last_term(self) -> int:
        """Term of the last entry (0 when empty)."""
        return self._entries[-1].term if self._entries else 0

    def term_at(self, index: int) -> int:
        """Term of the entry at 1-based ``index`` (0 for the sentinel)."""
        if index == 0:
            return 0
        if not 1 <= index <= len(self._entries):
            raise SimulationError(f"log index {index} out of range (len={len(self._entries)})")
        return self._entries[index - 1].term

    def entry_at(self, index: int) -> LogEntry:
        if not 1 <= index <= len(self._entries):
            raise SimulationError(f"log index {index} out of range (len={len(self._entries)})")
        return self._entries[index - 1]

    def entries_from(self, start_index: int) -> tuple[LogEntry, ...]:
        """Entries at 1-based indices >= ``start_index``."""
        if start_index < 1:
            raise SimulationError(f"start_index must be >= 1, got {start_index}")
        return tuple(self._entries[start_index - 1 :])

    def append(self, entry: LogEntry) -> int:
        """Append one entry; returns its index."""
        self._entries.append(entry)
        return len(self._entries)

    def matches(self, prev_index: int, prev_term: int) -> bool:
        """AppendEntries consistency check."""
        if prev_index == 0:
            return True
        if prev_index > len(self._entries):
            return False
        return self.term_at(prev_index) == prev_term

    def overwrite_from(self, prev_index: int, entries: tuple[LogEntry, ...]) -> None:
        """Install ``entries`` after ``prev_index``, truncating conflicts.

        Follows the Raft rule: keep existing entries that match; at the
        first conflict truncate the suffix and append the remainder.
        """
        insert_at = prev_index  # 0-based position where entries[0] lands
        for offset, entry in enumerate(entries):
            position = insert_at + offset
            if position < len(self._entries):
                if self._entries[position].term != entry.term:
                    del self._entries[position:]
                    self._entries.append(entry)
            else:
                self._entries.append(entry)

    def contains_value(self, value: object) -> bool:
        """Leader-side dedup: is ``value`` already in the log?"""
        return any(entry.value == value for entry in self._entries)

    def is_up_to_date(self, other_last_index: int, other_last_term: int) -> bool:
        """Raft §5.4.1: is (other_last_term, other_last_index) at least as current?"""
        if other_last_term != self.last_term:
            return other_last_term > self.last_term
        return other_last_index >= self.last_index
