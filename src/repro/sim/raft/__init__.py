"""Simulated Raft (leader election, log replication, flexible quorums)."""

from repro.sim.raft.log import LogEntry, RaftLog
from repro.sim.raft.messages import AppendEntries, AppendResponse, RequestVote, VoteResponse
from repro.sim.raft.node import RaftNode, Role, raft_node_factory

__all__ = [
    "RaftNode",
    "Role",
    "raft_node_factory",
    "RaftLog",
    "LogEntry",
    "RequestVote",
    "VoteResponse",
    "AppendEntries",
    "AppendResponse",
]
