"""Raft node state machine for the discrete-event simulator.

A faithful (checkpoint- and snapshot-free) Raft: randomized election
timeouts, RequestVote with the §5.4.1 up-to-date check, AppendEntries with
conflict truncation, commit via quorum match indices, and the
current-term-only commit rule (§5.4.2).  Quorum sizes are parameterised
(``q_vc`` votes to win an election, ``q_per`` match indices to commit) so
flexible-quorum deployments can be simulated with the same node.

Crash/recover honours Raft's persistence split: ``current_term``,
``voted_for`` and the log survive; role, commit index and leader state
reset.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.sim.cluster import NodeFactory
from repro.sim.events import EventScheduler
from repro.sim.network import Network
from repro.sim.node import Process
from repro.sim.raft.log import LogEntry, RaftLog
from repro.sim.raft.messages import AppendEntries, AppendResponse, RequestVote, VoteResponse
from repro.sim.trace import TraceRecorder


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


class RaftNode(Process):
    """One Raft participant."""

    ELECTION_TIMEOUT = (0.15, 0.30)  # seconds, uniformly sampled per arm
    HEARTBEAT_INTERVAL = 0.03

    def __init__(
        self,
        node_id: int,
        n: int,
        scheduler: EventScheduler,
        network: Network,
        rng: np.random.Generator,
        trace: TraceRecorder,
        *,
        q_per: int | None = None,
        q_vc: int | None = None,
    ):
        super().__init__(node_id, scheduler, network, rng)
        self.n = n
        self.q_per = (n // 2 + 1) if q_per is None else q_per
        self.q_vc = (n // 2 + 1) if q_vc is None else q_vc
        self._trace = trace
        # Persistent state
        self.current_term = 0
        self.voted_for: int | None = None
        self.log = RaftLog()
        # Volatile state
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.leader_id: int | None = None
        self._votes: set[int] = set()
        self._next_index: dict[int, int] = {}
        self._match_index: dict[int, int] = {}
        self._pending: list[object] = []  # client values awaiting a leader
        self._recorded_commit = 0  # high-water mark of trace records

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._arm_election_timer()

    def on_recover(self) -> None:
        # Persistent state (term, vote, log) survives; volatile resets.
        self.role = Role.FOLLOWER
        self.commit_index = 0
        self.leader_id = None
        self._votes.clear()
        self._next_index.clear()
        self._match_index.clear()
        self._recorded_commit = 0
        self._arm_election_timer()

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def _arm_election_timer(self) -> None:
        low, high = self.ELECTION_TIMEOUT
        self.set_timer("election", float(self._rng.uniform(low, high)))

    def on_timer(self, name: str) -> None:
        if name == "election":
            self._start_election()
        elif name == "heartbeat" and self.role is Role.LEADER:
            self._broadcast_append_entries()
            self.set_timer("heartbeat", self.HEARTBEAT_INTERVAL)

    # ------------------------------------------------------------------
    # Elections
    # ------------------------------------------------------------------
    def _start_election(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.node_id
        self.leader_id = None
        self._votes = {self.node_id}
        self._trace.record_event(self.now, self.node_id, "election", f"term={self.current_term}")
        self._arm_election_timer()
        request = RequestVote(
            term=self.current_term,
            candidate_id=self.node_id,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        self.broadcast(request)
        self._maybe_win_election()

    def _maybe_win_election(self) -> None:
        if self.role is Role.CANDIDATE and len(self._votes) >= self.q_vc:
            self._become_leader()

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.node_id
        self.cancel_timer("election")
        self._next_index = {peer: self.log.last_index + 1 for peer in range(self.n)}
        self._match_index = {peer: 0 for peer in range(self.n)}
        self._match_index[self.node_id] = self.log.last_index
        self._trace.record_event(self.now, self.node_id, "leader", f"term={self.current_term}")
        for value in self._pending:
            self._leader_append(value)
        self._broadcast_append_entries()
        self.set_timer("heartbeat", self.HEARTBEAT_INTERVAL)

    def _step_down(self, term: int) -> None:
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
        self.role = Role.FOLLOWER
        self.cancel_timer("heartbeat")
        self._votes.clear()
        self._arm_election_timer()

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def on_client_request(self, value: object) -> None:
        """Accept a client command (cluster hands commands to every node)."""
        if self.role is Role.LEADER:
            self._leader_append(value)
        else:
            self._pending.append(value)

    def _leader_append(self, value: object) -> None:
        if self.log.contains_value(value):
            return  # session dedup: value already proposed
        index = self.log.append(LogEntry(term=self.current_term, value=value))
        self._match_index[self.node_id] = index
        self._advance_commit_index()

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def _broadcast_append_entries(self) -> None:
        for peer in range(self.n):
            if peer != self.node_id:
                self._send_append_entries(peer)

    def _send_append_entries(self, peer: int) -> None:
        next_index = self._next_index.get(peer, self.log.last_index + 1)
        prev_index = next_index - 1
        message = AppendEntries(
            term=self.current_term,
            leader_id=self.node_id,
            prev_log_index=prev_index,
            prev_log_term=self.log.term_at(prev_index) if prev_index <= self.log.last_index else 0,
            entries=self.log.entries_from(next_index),
            leader_commit=self.commit_index,
        )
        self.send(peer, message)

    def _advance_commit_index(self) -> None:
        # Commit the highest index replicated on q_per nodes whose entry is
        # from the current term (§5.4.2).
        for index in range(self.log.last_index, self.commit_index, -1):
            if self.log.term_at(index) != self.current_term:
                break
            replicas = sum(1 for match in self._match_index.values() if match >= index)
            if replicas >= self.q_per:
                self.commit_index = index
                self._apply_committed()
                break

    def _apply_committed(self) -> None:
        while self._recorded_commit < self.commit_index:
            self._recorded_commit += 1
            entry = self.log.entry_at(self._recorded_commit)
            self._trace.record_commit(self.now, self.node_id, self._recorded_commit, entry.value)
            if entry.value in self._pending:
                self._pending.remove(entry.value)

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------
    def on_message(self, src: int, payload: object) -> None:
        if isinstance(payload, RequestVote):
            self._handle_request_vote(payload)
        elif isinstance(payload, VoteResponse):
            self._handle_vote_response(payload)
        elif isinstance(payload, AppendEntries):
            self._handle_append_entries(payload)
        elif isinstance(payload, AppendResponse):
            self._handle_append_response(payload)

    def _handle_request_vote(self, msg: RequestVote) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
        granted = (
            msg.term == self.current_term
            and self.voted_for in (None, msg.candidate_id)
            and self.log.is_up_to_date(msg.last_log_index, msg.last_log_term)
        )
        if granted:
            self.voted_for = msg.candidate_id
            self._arm_election_timer()
        self.send(
            msg.candidate_id,
            VoteResponse(term=self.current_term, voter_id=self.node_id, granted=granted),
        )

    def _handle_vote_response(self, msg: VoteResponse) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is Role.CANDIDATE and msg.term == self.current_term and msg.granted:
            self._votes.add(msg.voter_id)
            self._maybe_win_election()

    def _handle_append_entries(self, msg: AppendEntries) -> None:
        if msg.term > self.current_term or (
            msg.term == self.current_term and self.role is not Role.FOLLOWER
        ):
            self._step_down(msg.term)
        if msg.term < self.current_term:
            self.send(
                msg.leader_id,
                AppendResponse(
                    term=self.current_term,
                    follower_id=self.node_id,
                    success=False,
                    match_index=0,
                ),
            )
            return
        self.leader_id = msg.leader_id
        self._arm_election_timer()
        if not self.log.matches(msg.prev_log_index, msg.prev_log_term):
            self.send(
                msg.leader_id,
                AppendResponse(
                    term=self.current_term,
                    follower_id=self.node_id,
                    success=False,
                    match_index=0,
                ),
            )
            return
        self.log.overwrite_from(msg.prev_log_index, msg.entries)
        match_index = msg.prev_log_index + len(msg.entries)
        if msg.leader_commit > self.commit_index:
            self.commit_index = min(msg.leader_commit, self.log.last_index)
            self._apply_committed()
        self.send(
            msg.leader_id,
            AppendResponse(
                term=self.current_term,
                follower_id=self.node_id,
                success=True,
                match_index=match_index,
            ),
        )

    def _handle_append_response(self, msg: AppendResponse) -> None:
        if msg.term > self.current_term:
            self._step_down(msg.term)
            return
        if self.role is not Role.LEADER or msg.term != self.current_term:
            return
        if msg.success:
            self._match_index[msg.follower_id] = max(
                self._match_index.get(msg.follower_id, 0), msg.match_index
            )
            self._next_index[msg.follower_id] = self._match_index[msg.follower_id] + 1
            self._advance_commit_index()
        else:
            # Back off and retry immediately with an earlier prefix.
            self._next_index[msg.follower_id] = max(
                1, self._next_index.get(msg.follower_id, 1) - 1
            )
            self._send_append_entries(msg.follower_id)


def raft_node_factory(*, q_per: int | None = None, q_vc: int | None = None) -> NodeFactory:
    """Node factory for :class:`repro.sim.cluster.Cluster` with fixed quorums."""

    def build(
        node_id: int,
        n: int,
        scheduler: EventScheduler,
        network: Network,
        rng: np.random.Generator,
        trace: TraceRecorder,
    ) -> RaftNode:
        return RaftNode(
            node_id, n, scheduler, network, rng, trace, q_per=q_per, q_vc=q_vc
        )

    return build
