"""Simulated message-passing network.

Point-to-point delivery with pluggable latency distributions, independent
message loss, and named partitions.  Delivery to crashed nodes is dropped;
partitioned pairs cannot communicate until the partition heals.  Loss and
delay can be degraded mid-run (:meth:`Network.set_drop_probability`,
:meth:`Network.set_extra_delay`) — the hooks fault-plan bursts drive.  All
randomness flows from a single seeded generator for reproducibility.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError, SimulationError
from repro.sim.events import EventScheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.node import Process


class LatencyModel(ABC):
    """Distribution of one-way message delays (seconds)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay."""


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant delay — useful for deterministic protocol tests."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise InvalidConfigurationError("delay must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Uniform delay on [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise InvalidConfigurationError(f"invalid latency range [{self.low}, {self.high}]")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True)
class LogNormalLatency(LatencyModel):
    """Heavy-tailed delay — the realistic datacenter shape.

    ``median`` sets the scale; ``sigma`` the tail weight.
    """

    median: float
    sigma: float = 0.5

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma <= 0:
            raise InvalidConfigurationError("median and sigma must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        import math

        return float(rng.lognormal(mean=math.log(self.median), sigma=self.sigma))


@dataclass(frozen=True)
class Envelope:
    """A message in flight."""

    src: int
    dst: int
    payload: object
    send_time: float


class Network:
    """Message fabric connecting :class:`repro.sim.node.Process` instances."""

    def __init__(
        self,
        scheduler: EventScheduler,
        *,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: SeedLike = None,
    ):
        if not 0.0 <= drop_probability < 1.0:
            raise InvalidConfigurationError("drop_probability must be in [0, 1)")
        self._scheduler = scheduler
        self._latency = latency if latency is not None else FixedLatency(0.001)
        self._drop_probability = drop_probability
        #: Construction-time drop probability; bursts restore to this.
        self.base_drop_probability = drop_probability
        self._extra_delay = 0.0
        self._rng = as_generator(seed)
        self._processes: dict[int, "Process"] = {}
        self._partition: Optional[tuple[frozenset[int], ...]] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        #: Optional hook called for every delivered message (tracing).
        self.delivery_hook: Optional[Callable[[Envelope], None]] = None

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def attach(self, process: "Process") -> None:
        if process.node_id in self._processes:
            raise SimulationError(f"node id {process.node_id} already attached")
        self._processes[process.node_id] = process

    def set_partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Split the network; only same-group pairs can communicate."""
        normalized = tuple(frozenset(group) for group in groups)
        seen: set[int] = set()
        for group in normalized:
            if group & seen:
                raise InvalidConfigurationError("partition groups must be disjoint")
            seen |= group
        self._partition = normalized

    def heal_partition(self) -> None:
        self._partition = None

    # ------------------------------------------------------------------
    # Degradation hooks (delay/loss bursts)
    # ------------------------------------------------------------------
    def set_drop_probability(self, probability: float | None) -> None:
        """Change the independent message-loss rate mid-run.

        ``None`` restores the construction-time baseline — the shape the
        fault-plan loss bursts use to end a burst.
        """
        if probability is None:
            probability = self.base_drop_probability
        if not 0.0 <= probability < 1.0:
            raise InvalidConfigurationError("drop_probability must be in [0, 1)")
        self._drop_probability = probability

    def set_extra_delay(self, seconds: float) -> None:
        """Add a constant to every sampled delay (congestion burst); 0 clears."""
        if seconds < 0:
            raise InvalidConfigurationError("extra delay must be non-negative")
        self._extra_delay = seconds

    def _partitioned(self, src: int, dst: int) -> bool:
        if self._partition is None:
            return False
        for group in self._partition:
            if src in group:
                return dst not in group
        # Nodes outside any named group are isolated from grouped nodes.
        return any(dst in group for group in self._partition)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, payload: object) -> None:
        """Queue a message for delivery (may be dropped or partitioned away)."""
        if dst not in self._processes:
            raise SimulationError(f"unknown destination node {dst}")
        self.messages_sent += 1
        if self._partitioned(src, dst):
            self.messages_dropped += 1
            return
        if self._drop_probability > 0.0 and self._rng.random() < self._drop_probability:
            self.messages_dropped += 1
            return
        envelope = Envelope(src=src, dst=dst, payload=payload, send_time=self._scheduler.now)
        delay = self._latency.sample(self._rng) + self._extra_delay
        self._scheduler.schedule_after(delay, lambda: self._deliver(envelope))

    def broadcast(self, src: int, payload: object, *, include_self: bool = False) -> None:
        """Send ``payload`` to every attached node (optionally including src)."""
        for node_id in sorted(self._processes):
            if node_id == src and not include_self:
                continue
            self.send(src, node_id, payload)

    def _deliver(self, envelope: Envelope) -> None:
        process = self._processes.get(envelope.dst)
        if process is None or not process.is_running:
            self.messages_dropped += 1
            return
        # Re-check the partition at delivery time: a partition that formed
        # mid-flight cuts the message off, matching real fabric behaviour.
        if self._partitioned(envelope.src, envelope.dst):
            self.messages_dropped += 1
            return
        self.messages_delivered += 1
        if self.delivery_hook is not None:
            self.delivery_hook(envelope)
        process.on_message(envelope.src, envelope.payload)
