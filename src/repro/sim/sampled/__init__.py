"""Probability-native sampled-quorum replication (paper §4)."""

from repro.sim.sampled.node import (
    slot_survivors,
    Ack,
    Append,
    CommitNotice,
    SampledQuorumLeader,
    SampledQuorumReplica,
    sampled_quorum_factory,
)

__all__ = [
    "SampledQuorumLeader",
    "SampledQuorumReplica",
    "sampled_quorum_factory",
    "Append",
    "Ack",
    "CommitNotice",
    "slot_survivors",
]
