"""Sampled-quorum replication — §4's "radical" design, executable.

"In practice, sampling from much smaller subsets of nodes can guarantee
intersection with high enough probability."  This module implements the
simplest protocol that leans fully into that idea so it can be measured:

* a fixed leader (node 0) assigns slots;
* for each slot the leader draws a uniform *sampled quorum* of ``k`` of
  the ``n`` replicas and sends ``Append`` **only to those members** —
  the cost win over majority replication is exactly ``k`` copies;
* the slot commits once every sampled member has durably stored it;
* a ``CommitNotice`` tells all replicas the decision, but the *payload*
  stays only on the sampled holders (witness-style placement).

There is no view change: the protocol trades leader fault tolerance for
the cleanest possible durability experiment.  Its durability claim is the
paper's §4 arithmetic — committed data is lost only when all ``k``
sampled holders fail, probability ``p^k`` per slot — and liveness per
slot requires every sampled member to be alive, probability
``(1-p)^k``.  ``benchmarks/bench_sampled_quorums.py`` checks protocol
executions against both closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigurationError
from repro.sim.cluster import NodeFactory
from repro.sim.events import EventScheduler
from repro.sim.network import Network
from repro.sim.node import Process
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class Append:
    """Leader asks a sampled member to durably store ``value`` for ``slot``."""

    slot: int
    value: object


@dataclass(frozen=True)
class Ack:
    """Sampled member confirms durable storage of ``slot``."""

    slot: int
    replica_id: int


@dataclass(frozen=True)
class CommitNotice:
    """Leader announces that ``slot`` is committed (decision only, no payload)."""

    slot: int
    value: object


class SampledQuorumReplica(Process):
    """Replica: durably stores appends it receives; learns decisions."""

    def __init__(self, node_id, n, scheduler, network, rng, trace):  # type: ignore[no-untyped-def]
        super().__init__(node_id, scheduler, network, rng)
        self.n = n
        self._trace = trace
        #: Durable payload store — only ever populated via Append.
        self.store: dict[int, object] = {}
        #: Learned decisions (slot -> value) — the agreement-audit view.
        self.learned: dict[int, object] = {}

    def on_start(self) -> None:
        pass

    def on_message(self, src: int, payload: object) -> None:
        if isinstance(payload, Append):
            self.store[payload.slot] = payload.value
            self.send(src, Ack(slot=payload.slot, replica_id=self.node_id))
        elif isinstance(payload, CommitNotice):
            if payload.slot not in self.learned:
                self.learned[payload.slot] = payload.value
                self._trace.record_commit(self.now, self.node_id, payload.slot, payload.value)

    def holds(self, slot: int) -> bool:
        """Durability probe: does this replica durably hold the payload?"""
        return slot in self.store


class SampledQuorumLeader(SampledQuorumReplica):
    """Fixed leader: samples a k-subset per slot and waits for its acks."""

    RETRY_INTERVAL = 0.05

    def __init__(self, node_id, n, scheduler, network, rng, trace, *, quorum_size):  # type: ignore[no-untyped-def]
        super().__init__(node_id, n, scheduler, network, rng, trace)
        if not 0 < quorum_size <= n:
            raise InvalidConfigurationError(f"quorum_size={quorum_size} outside (0, {n}]")
        self.quorum_size = quorum_size
        self.next_slot = 1
        self.sampled_quorums: dict[int, frozenset[int]] = {}
        self.acks: dict[int, set[int]] = {}
        self.pending_values: dict[int, object] = {}  # volatile until committed
        self.committed: dict[int, object] = {}

    def on_start(self) -> None:
        self.set_timer("retry", self.RETRY_INTERVAL)

    def on_timer(self, name: str) -> None:
        if name == "retry":
            for slot in self.pending_values:
                if slot not in self.committed:
                    self._replicate(slot)
            self.set_timer("retry", self.RETRY_INTERVAL)

    def on_client_request(self, value: object) -> None:
        if value in self.pending_values.values() or value in self.committed.values():
            return
        slot = self.next_slot
        self.next_slot += 1
        self.pending_values[slot] = value
        members = frozenset(
            int(i) for i in self._rng.choice(self.n, size=self.quorum_size, replace=False)
        )
        self.sampled_quorums[slot] = members
        self.acks[slot] = set()
        if self.node_id in members:
            # The leader is itself a sampled holder: store durably.
            self.store[slot] = value
            self.acks[slot].add(self.node_id)
        self._replicate(slot)
        self._maybe_commit(slot)

    def _replicate(self, slot: int) -> None:
        value = self.pending_values[slot]
        for member in sorted(self.sampled_quorums[slot]):
            if member != self.node_id and member not in self.acks[slot]:
                self.send(member, Append(slot=slot, value=value))

    def on_message(self, src: int, payload: object) -> None:
        if isinstance(payload, Ack):
            quorum = self.sampled_quorums.get(payload.slot, frozenset())
            if payload.replica_id in quorum:
                self.acks[payload.slot].add(payload.replica_id)
                self._maybe_commit(payload.slot)
        else:
            super().on_message(src, payload)

    def _maybe_commit(self, slot: int) -> None:
        if slot in self.committed or self.acks[slot] < self.sampled_quorums[slot]:
            return
        value = self.pending_values.pop(slot)
        self.committed[slot] = value
        self.learned[slot] = value
        self._trace.record_commit(self.now, self.node_id, slot, value)
        self._trace.record_event(
            self.now,
            self.node_id,
            "sampled-commit",
            f"slot={slot} quorum={sorted(self.sampled_quorums[slot])}",
        )
        self.broadcast(CommitNotice(slot=slot, value=value))


def sampled_quorum_factory(quorum_size: int) -> NodeFactory:
    """Cluster factory: node 0 leads, the rest replicate."""

    def build(
        node_id: int,
        n: int,
        scheduler: EventScheduler,
        network: Network,
        rng: np.random.Generator,
        trace: TraceRecorder,
    ) -> SampledQuorumReplica:
        if node_id == 0:
            return SampledQuorumLeader(
                node_id, n, scheduler, network, rng, trace, quorum_size=quorum_size
            )
        return SampledQuorumReplica(node_id, n, scheduler, network, rng, trace)

    return build


def slot_survivors(cluster, slot: int) -> frozenset[int]:  # type: ignore[no-untyped-def]
    """Durability probe: correct replicas durably holding ``slot``."""
    holders = []
    for process in cluster.nodes:
        if not process.is_crashed and isinstance(process, SampledQuorumReplica):
            if process.holds(slot):
                holders.append(process.node_id)
    return frozenset(holders)
