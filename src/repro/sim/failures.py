"""Fault injection driven by fault curves (paper §2 → §3 validation loop).

Bridges :mod:`repro.faults` and the simulator: sample per-node failure
times from fault curves (or fixed failure configurations from the
analysis layer) and schedule the corresponding crash/recovery events on a
:class:`repro.sim.cluster.Cluster`.  This is what lets protocol executions
be checked against the predicate-level Safe/Live classification.  For the
declarative superset — partitions, loss/delay bursts, correlated bursts
and Byzantine behaviour activation — see :mod:`repro.injection`, which
compiles fault *plans* down to the schedules this module applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.analysis.config import FailureConfig, FaultKind
from repro.errors import InvalidConfigurationError
from repro.faults.curves import FaultCurve
from repro.faults.mixture import Fleet
from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class InjectionPlan:
    """Concrete failure schedule for one run."""

    crash_times: dict[int, float]  # node_id -> virtual time of fail-stop
    recovery_times: dict[int, float]  # node_id -> virtual recovery time

    @property
    def crashed_nodes(self) -> frozenset[int]:
        return frozenset(self.crash_times)

    def apply(self, cluster: Cluster) -> None:
        """Schedule the plan's crashes and recoveries on a cluster."""
        for node_id, crash_time in sorted(self.crash_times.items()):
            cluster.crash_at(node_id, crash_time)
        for node_id, recover_time in sorted(self.recovery_times.items()):
            if node_id not in self.crash_times:
                raise InvalidConfigurationError(
                    f"recovery scheduled for node {node_id} that never crashes"
                )
            if recover_time <= self.crash_times[node_id]:
                raise InvalidConfigurationError(
                    f"node {node_id} recovery at {recover_time} precedes its crash"
                )
            cluster.recover_at(node_id, recover_time)


def draw_repair_time(
    crash_time: float,
    mean_time_to_repair: float,
    duration: float,
    rng: np.random.Generator,
) -> float | None:
    """One exponential repair draw, or ``None`` when it lands past the run.

    The single definition of the crash-recovery draw shared by
    :func:`plan_from_config` and the fault-plan events
    (:class:`repro.injection.CrashStop`, :class:`repro.injection.CorrelatedBurst`),
    so the drop-late-repairs guard cannot drift between them.
    """
    recover_time = crash_time + float(rng.exponential(mean_time_to_repair))
    return recover_time if recover_time < duration else None


def plan_from_config(
    config: FailureConfig,
    *,
    duration: float,
    crash_window: tuple[float, float] | None = None,
    mean_time_to_repair: float | None = None,
    seed: SeedLike = None,
) -> InjectionPlan:
    """Materialise an analysis-layer configuration into a crash schedule.

    CRASH nodes fail-stop at a uniformly random time inside
    ``crash_window`` (default: the first half of the run); with
    ``mean_time_to_repair`` set (sim-seconds), each draws an exponential
    repair delay and recovers — crash-recovery parity with
    :func:`plan_from_curves`, including its guard that repairs landing at
    or past ``duration`` are dropped (the node stays down, matching the
    analysis model where an unrepaired window failure is terminal).
    BYZANTINE nodes are never scheduled here: their misbehaviour is
    configured at node construction — use a
    :class:`repro.injection.FaultPlan` adversary section, which activates
    registered behaviour classes through the campaign runner.
    """
    if duration <= 0:
        raise InvalidConfigurationError("duration must be positive")
    window = crash_window if crash_window is not None else (0.0, duration / 2.0)
    if not 0.0 <= window[0] < window[1] <= duration:
        raise InvalidConfigurationError(f"invalid crash window {window}")
    if mean_time_to_repair is not None and mean_time_to_repair <= 0:
        raise InvalidConfigurationError("mean_time_to_repair must be positive")
    rng = as_generator(seed)
    crash_times: dict[int, float] = {}
    recovery_times: dict[int, float] = {}
    for node_id, kind in enumerate(config.kinds):
        if kind is not FaultKind.CRASH:
            continue
        crash_time = float(rng.uniform(*window))
        crash_times[node_id] = crash_time
        if mean_time_to_repair is not None:
            recover_time = draw_repair_time(
                crash_time, mean_time_to_repair, duration, rng
            )
            if recover_time is not None:
                recovery_times[node_id] = recover_time
    return InjectionPlan(crash_times=crash_times, recovery_times=recovery_times)


def plan_from_curves(
    curves: Sequence[FaultCurve],
    *,
    duration: float,
    hours_per_sim_second: float = 1.0,
    mean_time_to_repair: float | None = None,
    seed: SeedLike = None,
) -> InjectionPlan:
    """Sample failure times from fault curves and map them to sim time.

    ``hours_per_sim_second`` converts curve time (hours) to simulator time
    (seconds); with MTTR set, crashed nodes recover after an exponential
    repair delay (also in hours).
    """
    if duration <= 0:
        raise InvalidConfigurationError("duration must be positive")
    if hours_per_sim_second <= 0:
        raise InvalidConfigurationError("hours_per_sim_second must be positive")
    rng = as_generator(seed)
    horizon_hours = duration * hours_per_sim_second
    crash_times: dict[int, float] = {}
    recovery_times: dict[int, float] = {}
    for node_id, curve in enumerate(curves):
        failure_hours = curve.sample_failure_time(rng, horizon=horizon_hours)
        if not math.isfinite(failure_hours) or failure_hours >= horizon_hours:
            continue
        crash_time = failure_hours / hours_per_sim_second
        # Guard the open interval: crashing exactly at t=0 races node start.
        crash_times[node_id] = max(crash_time, 1e-9)
        if mean_time_to_repair is not None:
            repair_hours = float(rng.exponential(mean_time_to_repair))
            recover_time = (failure_hours + repair_hours) / hours_per_sim_second
            if recover_time < duration:
                recovery_times[node_id] = recover_time
    return InjectionPlan(crash_times=crash_times, recovery_times=recovery_times)


def sample_window_config(fleet: Fleet, seed: SeedLike = None) -> FailureConfig:
    """Draw a window failure configuration from a fleet (trinomial per node)."""
    from repro.analysis.montecarlo import sample_configuration

    rng = as_generator(seed)
    return sample_configuration(fleet, rng)
