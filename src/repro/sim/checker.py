"""Trace auditing: did a run uphold agreement and progress?

The analysis layer (§3) classifies failure *configurations* as safe/live;
the checker classifies concrete *executions*.  Safety here is slot-wise
agreement among correct nodes (no two correct nodes decide different values
for the same slot).  Liveness is completion: every submitted command is
decided by every node that was correct for the whole run.

Running many seeded executions per configuration and comparing checker
verdicts against predicate verdicts is the validation loop of
``benchmarks/bench_sim_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class AgreementViolation:
    """Two correct nodes decided different values for one slot."""

    slot: int
    node_a: int
    value_a: object
    node_b: int
    value_b: object


@dataclass(frozen=True)
class SafetyVerdict:
    """Result of the agreement audit."""

    holds: bool
    violations: tuple[AgreementViolation, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class LivenessVerdict:
    """Result of the completion audit."""

    holds: bool
    missing: tuple[tuple[int, object], ...] = field(default_factory=tuple)  # (node, value)


def check_agreement(
    trace: TraceRecorder, *, correct_nodes: Iterable[int] | None = None
) -> SafetyVerdict:
    """Slot-wise agreement across (correct) nodes.

    With ``correct_nodes`` given, only their commits are audited — Byzantine
    nodes may claim anything; consensus only promises agreement among the
    correct.
    """
    committed = trace.committed_by_node()
    audited = (
        {node: slots for node, slots in committed.items() if node in set(correct_nodes)}
        if correct_nodes is not None
        else committed
    )
    canonical: dict[int, tuple[int, object]] = {}  # slot -> (first node, value)
    violations: list[AgreementViolation] = []
    for node_id in sorted(audited):
        for slot, value in sorted(audited[node_id].items()):
            if slot not in canonical:
                canonical[slot] = (node_id, value)
            else:
                first_node, first_value = canonical[slot]
                if first_value != value:
                    violations.append(
                        AgreementViolation(
                            slot=slot,
                            node_a=first_node,
                            value_a=first_value,
                            node_b=node_id,
                            value_b=value,
                        )
                    )
    return SafetyVerdict(holds=not violations, violations=tuple(violations))


def check_completion(
    trace: TraceRecorder,
    submitted: Sequence[object],
    *,
    correct_nodes: Iterable[int],
) -> LivenessVerdict:
    """Every submitted value decided by every always-correct node."""
    committed = trace.committed_by_node()
    missing: list[tuple[int, object]] = []
    for node_id in sorted(set(correct_nodes)):
        decided = set(committed.get(node_id, {}).values())
        for value in submitted:
            if value not in decided:
                missing.append((node_id, value))
    return LivenessVerdict(holds=not missing, missing=tuple(missing))


@dataclass(frozen=True)
class RunVerdict:
    """Combined audit of one simulated execution."""

    safety: SafetyVerdict
    liveness: LivenessVerdict

    @property
    def safe(self) -> bool:
        return self.safety.holds

    @property
    def live(self) -> bool:
        return self.liveness.holds


def audit_run(
    trace: TraceRecorder,
    submitted: Sequence[object],
    *,
    correct_nodes: Iterable[int],
) -> RunVerdict:
    """Safety + liveness audit for one run."""
    correct = list(correct_nodes)
    return RunVerdict(
        safety=check_agreement(trace, correct_nodes=correct),
        liveness=check_completion(trace, submitted, correct_nodes=correct),
    )
