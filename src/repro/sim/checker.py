"""Trace auditing: did a run uphold agreement and progress?

The analysis layer (§3) classifies failure *configurations* as safe/live;
the checker classifies concrete *executions*.  Safety here is slot-wise
agreement among correct nodes (no two correct nodes decide different values
for the same slot).  Liveness is completion: every submitted command is
decided by every node that was correct for the whole run.

Running many seeded executions per configuration and comparing checker
verdicts against predicate verdicts is the validation loop of
``benchmarks/bench_sim_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class AgreementViolation:
    """Two correct nodes decided different values for one slot."""

    slot: int
    node_a: int
    value_a: object
    node_b: int
    value_b: object


@dataclass(frozen=True)
class SafetyVerdict:
    """Result of the agreement audit."""

    holds: bool
    violations: tuple[AgreementViolation, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class LivenessVerdict:
    """Result of the completion audit.

    ``partition_era`` is the subset of ``missing`` whose command was
    submitted while a declared network partition was in force — an
    attribution by *timing*, not causality: it separates stalls the
    injected partition plausibly explains from clear-network ones, but a
    concurrent quorum-destroying crash can also stall a partition-era
    command.  ``holds`` still demands *every* command complete;
    :attr:`holds_outside_partitions` is the softer question ("was every
    command submitted on a whole network decided?").
    """

    holds: bool
    missing: tuple[tuple[int, object], ...] = field(default_factory=tuple)  # (node, value)
    partition_era: tuple[tuple[int, object], ...] = field(default_factory=tuple)

    @property
    def holds_outside_partitions(self) -> bool:
        return set(self.missing) <= set(self.partition_era)


def check_agreement(
    trace: TraceRecorder, *, correct_nodes: Iterable[int] | None = None
) -> SafetyVerdict:
    """Slot-wise agreement across (correct) nodes.

    With ``correct_nodes`` given, only their commits are audited — Byzantine
    nodes may claim anything; consensus only promises agreement among the
    correct.
    """
    committed = trace.committed_by_node()
    audited = (
        {node: slots for node, slots in committed.items() if node in set(correct_nodes)}
        if correct_nodes is not None
        else committed
    )
    canonical: dict[int, tuple[int, object]] = {}  # slot -> (first node, value)
    violations: list[AgreementViolation] = []
    for node_id in sorted(audited):
        for slot, value in sorted(audited[node_id].items()):
            if slot not in canonical:
                canonical[slot] = (node_id, value)
            else:
                first_node, first_value = canonical[slot]
                if first_value != value:
                    violations.append(
                        AgreementViolation(
                            slot=slot,
                            node_a=first_node,
                            value_a=first_value,
                            node_b=node_id,
                            value_b=value,
                        )
                    )
    return SafetyVerdict(holds=not violations, violations=tuple(violations))


def check_completion(
    trace: TraceRecorder,
    submitted: Sequence[object],
    *,
    correct_nodes: Iterable[int],
    partition_windows: Sequence[tuple[float, float]] = (),
    submit_times: Mapping[object, float] | None = None,
) -> LivenessVerdict:
    """Every submitted value decided by every always-correct node.

    With ``partition_windows`` (half-open ``[start, heal)`` intervals) and
    ``submit_times`` given, missing commands submitted inside a window are
    additionally reported as ``partition_era`` — a timing-based
    attribution separating stalls the injected partition plausibly
    explains from clear-network ones.
    """
    committed = trace.committed_by_node()
    missing: list[tuple[int, object]] = []
    partition_era: list[tuple[int, object]] = []
    for node_id in sorted(set(correct_nodes)):
        decided = set(committed.get(node_id, {}).values())
        for value in submitted:
            if value not in decided:
                missing.append((node_id, value))
                if partition_windows and submit_times is not None:
                    at = submit_times.get(value)
                    if at is not None and any(
                        start <= at < heal for start, heal in partition_windows
                    ):
                        partition_era.append((node_id, value))
    return LivenessVerdict(
        holds=not missing,
        missing=tuple(missing),
        partition_era=tuple(partition_era),
    )


@dataclass(frozen=True)
class RunVerdict:
    """Combined audit of one simulated execution."""

    safety: SafetyVerdict
    liveness: LivenessVerdict

    @property
    def safe(self) -> bool:
        return self.safety.holds

    @property
    def live(self) -> bool:
        return self.liveness.holds

    @property
    def live_outside_partitions(self) -> bool:
        return self.liveness.holds_outside_partitions


def audit_run(
    trace: TraceRecorder,
    submitted: Sequence[object],
    *,
    correct_nodes: Iterable[int],
    partition_windows: Sequence[tuple[float, float]] = (),
    submit_times: Mapping[object, float] | None = None,
) -> RunVerdict:
    """Safety + liveness audit for one run.

    Agreement is always audited over correct replicas only (Byzantine
    nodes may claim anything).  ``partition_windows``/``submit_times``
    make the liveness verdict report partition-era stalls separately —
    see :func:`check_completion`.
    """
    correct = list(correct_nodes)
    return RunVerdict(
        safety=check_agreement(trace, correct_nodes=correct),
        liveness=check_completion(
            trace,
            submitted,
            correct_nodes=correct,
            partition_windows=partition_windows,
            submit_times=submit_times,
        ),
    )
