"""Simulation harness: nodes + network + scheduler + trace in one object.

``Cluster`` owns the deterministic event loop and exposes the operations
experiments need: start the protocol, submit client commands, crash or
recover nodes at chosen times, partition and degrade the network on a
schedule, run to a virtual deadline, and hand the trace to the checker.
``node_overrides`` swaps individual nodes' factories — the hook the
fault-plan subsystem uses to activate Byzantine behaviours — without
perturbing any other node's seeded stream.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro._rng import SeedLike, as_generator, spawn
from repro.errors import InvalidConfigurationError, SimulationError
from repro.sim.events import EventScheduler
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Process
from repro.sim.trace import TraceRecorder

#: Builds protocol node ``i`` of ``n``; receives its own RNG stream.
NodeFactory = Callable[[int, int, EventScheduler, Network, np.random.Generator, TraceRecorder], Process]


class Cluster:
    """A deterministic simulated deployment of ``n`` protocol nodes."""

    def __init__(
        self,
        n: int,
        node_factory: NodeFactory,
        *,
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
        seed: SeedLike = None,
        node_overrides: Mapping[int, NodeFactory] | None = None,
    ):
        if n <= 0:
            raise InvalidConfigurationError(f"cluster size must be positive, got {n}")
        overrides = dict(node_overrides or {})
        for node_id in overrides:
            if not 0 <= node_id < n:
                raise InvalidConfigurationError(
                    f"node override id {node_id} outside cluster of {n}"
                )
        root = as_generator(seed)
        network_rng, *node_rngs = spawn(root, n + 1)
        self.scheduler = EventScheduler()
        self.trace = TraceRecorder()
        self.network = Network(
            self.scheduler,
            latency=latency,
            drop_probability=drop_probability,
            seed=network_rng,
        )
        self.nodes: list[Process] = []
        for node_id in range(n):
            factory = overrides.get(node_id, node_factory)
            process = factory(
                node_id, n, self.scheduler, self.network, node_rngs[node_id], self.trace
            )
            self.network.attach(process)
            self.nodes.append(process)

    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def now(self) -> float:
        return self.scheduler.now

    # ------------------------------------------------------------------
    # Execution control
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Boot every node at t=0."""
        for process in self.nodes:
            process.start()

    def run_until(self, t_end: float, *, max_events: int = 2_000_000) -> None:
        self.scheduler.run_until(t_end, max_events=max_events)

    # ------------------------------------------------------------------
    # Failure control
    # ------------------------------------------------------------------
    def crash_at(self, node_id: int, time: float) -> None:
        """Schedule a fail-stop crash of ``node_id`` at virtual ``time``."""
        process = self._node(node_id)

        def do_crash() -> None:
            if not process.is_crashed:
                process.crash()
                self.trace.record_event(self.scheduler.now, node_id, "crash")

        self.scheduler.schedule_at(time, do_crash)

    def recover_at(self, node_id: int, time: float) -> None:
        """Schedule recovery of ``node_id`` at virtual ``time``."""
        process = self._node(node_id)

        def do_recover() -> None:
            if process.is_crashed:
                process.recover()
                self.trace.record_event(self.scheduler.now, node_id, "recover")

        self.scheduler.schedule_at(time, do_recover)

    # ------------------------------------------------------------------
    # Network control (partitions and degradation bursts)
    # ------------------------------------------------------------------
    def partition_at(self, groups: Iterable[Iterable[int]], time: float) -> None:
        """Schedule a network split at virtual ``time`` (trace kind ``partition``)."""
        normalized = tuple(tuple(group) for group in groups)

        def do_partition() -> None:
            self.network.set_partition(normalized)
            self.trace.record_event(
                self.scheduler.now, -1, "partition", detail=repr(normalized)
            )

        self.scheduler.schedule_at(time, do_partition)

    def heal_partition_at(self, time: float) -> None:
        """Schedule the partition's heal at virtual ``time`` (kind ``heal``)."""

        def do_heal() -> None:
            self.network.heal_partition()
            self.trace.record_event(self.scheduler.now, -1, "heal")

        self.scheduler.schedule_at(time, do_heal)

    def set_drop_probability_at(self, probability: float | None, time: float) -> None:
        """Schedule a message-loss change (``None`` restores the baseline)."""

        def do_set() -> None:
            self.network.set_drop_probability(probability)
            self.trace.record_event(
                self.scheduler.now, -1, "net-loss", detail=f"p={probability}"
            )

        self.scheduler.schedule_at(time, do_set)

    def set_extra_delay_at(self, seconds: float, time: float) -> None:
        """Schedule a constant added delay on every message (0 clears it)."""

        def do_set() -> None:
            self.network.set_extra_delay(seconds)
            self.trace.record_event(
                self.scheduler.now, -1, "net-delay", detail=f"extra={seconds:g}"
            )

        self.scheduler.schedule_at(time, do_set)

    def crashed_node_ids(self) -> frozenset[int]:
        return frozenset(p.node_id for p in self.nodes if p.is_crashed)

    def correct_node_ids(self) -> frozenset[int]:
        return frozenset(p.node_id for p in self.nodes if not p.is_crashed)

    # ------------------------------------------------------------------
    # Client interaction
    # ------------------------------------------------------------------
    def submit(self, value: object, *, at: float | None = None) -> None:
        """Inject a client command into the cluster.

        Delivery model: the command is handed to every running node via its
        ``on_client_request`` hook (nodes that are not leader ignore or
        forward it, mirroring clients that broadcast/retry until they find
        the leader).
        """
        def do_submit() -> None:
            for process in self.nodes:
                handler = getattr(process, "on_client_request", None)
                if handler is not None and process.is_running:
                    handler(value)

        if at is None:
            do_submit()
        else:
            self.scheduler.schedule_at(at, do_submit)

    def _node(self, node_id: int) -> Process:
        if not 0 <= node_id < len(self.nodes):
            raise SimulationError(f"unknown node id {node_id}")
        return self.nodes[node_id]


def run_scenario(
    cluster: Cluster,
    *,
    commands: Sequence[object],
    duration: float,
    command_interval: float = 0.05,
    commands_start: float = 0.5,
) -> TraceRecorder:
    """Convenience driver: start, feed commands on a cadence, run, return trace."""
    if duration <= 0:
        raise InvalidConfigurationError("duration must be positive")
    cluster.start()
    at = commands_start
    for command in commands:
        cluster.submit(command, at=at)
        at += command_interval
    cluster.run_until(duration)
    return cluster.trace
