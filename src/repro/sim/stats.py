"""Performance statistics over simulation traces.

The paper's §4 claims reliability-aware choices "can improve tail latency
[and] reduce reconfiguration delays".  These helpers extract the relevant
observables from a :class:`repro.sim.trace.TraceRecorder`: per-command
commit latency (first and last replica), leadership churn, and unavailable
windows (periods with no progress).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import InvalidConfigurationError
from repro.sim.trace import TraceRecorder


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of commit latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            raise InvalidConfigurationError("no latency samples")
        arr = np.asarray(samples, dtype=float)
        return cls(
            count=arr.size,
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p99=float(np.percentile(arr, 99)),
            maximum=float(arr.max()),
        )


def commit_latencies(
    trace: TraceRecorder,
    submit_times: Mapping[object, float],
    *,
    scope: str = "first",
) -> dict[object, float]:
    """Latency from submission to commit for each command.

    ``scope="first"`` measures until the first replica decides (client-
    visible commit); ``scope="all"`` until the last replica has applied it
    (replication completeness).  Commands never committed are omitted.
    """
    if scope not in ("first", "all"):
        raise InvalidConfigurationError(f"scope must be 'first' or 'all', got {scope!r}")
    decided: dict[object, float] = {}
    for record in trace.commits:
        if record.value not in submit_times:
            continue
        current = decided.get(record.value)
        if current is None:
            decided[record.value] = record.time
        elif scope == "first":
            decided[record.value] = min(current, record.time)
        else:
            decided[record.value] = max(current, record.time)
    return {
        value: decided_time - submit_times[value]
        for value, decided_time in decided.items()
        if decided_time >= submit_times[value]
    }


def latency_summary(
    trace: TraceRecorder,
    submit_times: Mapping[object, float],
    *,
    scope: str = "first",
) -> LatencySummary:
    """Summary statistics of commit latency over a run."""
    return LatencySummary.from_samples(list(commit_latencies(trace, submit_times, scope=scope).values()))


@dataclass(frozen=True)
class LeadershipStats:
    """Leadership churn over a run."""

    elections: int
    leaders_elected: int
    distinct_leaders: int
    final_leader: int | None


def leadership_stats(trace: TraceRecorder) -> LeadershipStats:
    """Election and leadership-change counts from trace events."""
    elections = trace.events_of_kind("election")
    leaders = trace.events_of_kind("leader")
    return LeadershipStats(
        elections=len(elections),
        leaders_elected=len(leaders),
        distinct_leaders=len({e.node_id for e in leaders}),
        final_leader=leaders[-1].node_id if leaders else None,
    )


def unavailable_windows(
    trace: TraceRecorder,
    *,
    horizon: float,
    gap_threshold: float,
) -> list[tuple[float, float]]:
    """Periods longer than ``gap_threshold`` with no commit anywhere.

    The trace-level counterpart of a liveness outage: returns the
    [start, end) gaps between consecutive commits (and run edges) that
    exceed the threshold.
    """
    if horizon <= 0 or gap_threshold <= 0:
        raise InvalidConfigurationError("horizon and gap_threshold must be positive")
    commit_times = sorted({record.time for record in trace.commits})
    edges = [0.0, *commit_times, horizon]
    gaps = []
    for start, end in zip(edges, edges[1:]):
        if end - start > gap_threshold:
            gaps.append((start, end))
    return gaps
