"""Deterministic discrete-event scheduler.

Foundation of :mod:`repro.sim`: a priority queue of timestamped callbacks
with a monotonically increasing sequence number as tiebreak, so identical
seeds always replay identical executions — the property every simulator
test and every failure-injection experiment relies on.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError

Action = Callable[[], None]


@dataclass(order=True)
class _ScheduledEvent:
    time: float
    seq: int
    action: Action = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    executed: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellation token for a scheduled event."""

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _ScheduledEvent, scheduler: "EventScheduler"):
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if not self._event.cancelled:
            self._event.cancelled = True
            if not self._event.executed:
                self._scheduler._pending -= 1

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventScheduler:
    """Single-threaded event loop with virtual time (seconds)."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._pending = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events executed so far (diagnostics)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Live (scheduled, not cancelled, not yet run) events — O(1).

        Maintained as a counter on schedule/cancel/execute rather than
        scanned from the queue, so busy simulations can poll it per step.
        """
        return self._pending

    def schedule_at(self, time: float, action: Action) -> EventHandle:
        """Schedule ``action`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} before now={self._now}")
        event = _ScheduledEvent(time=time, seq=next(self._sequence), action=action)
        heapq.heappush(self._queue, event)
        self._pending += 1
        return EventHandle(event, self)

    def schedule_after(self, delay: float, action: Action) -> EventHandle:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, action)

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            event.executed = True
            self._pending -= 1
            self._now = event.time
            self._processed += 1
            event.action()
            return True
        return False

    def run_until(self, t_end: float, *, max_events: Optional[int] = None) -> None:
        """Run events up to virtual time ``t_end`` (inclusive).

        ``max_events`` guards against livelock in buggy protocols; exceeding
        it raises :class:`SimulationError` rather than spinning forever.
        """
        if t_end < self._now:
            raise SimulationError(f"t_end={t_end} precedes now={self._now}")
        executed = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > t_end:
                break
            self.step()
            executed += 1
            if max_events is not None and executed > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before t={t_end}; likely livelock"
                )
        self._now = t_end

    def run_to_completion(self, *, max_events: int = 1_000_000) -> None:
        """Drain the queue entirely (bounded by ``max_events``)."""
        executed = 0
        while self.step():
            executed += 1
            if executed > max_events:
                raise SimulationError(f"exceeded {max_events} events; likely livelock")
