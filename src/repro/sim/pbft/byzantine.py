"""Byzantine replica behaviours (paper §2 point 4; validation of Thm 3.1).

Concrete attacks used by the validation suite:

* :class:`EquivocatingPrimary` — proposes *different* values for the same
  sequence number to the two halves of the cluster (the attack the
  non-equivocation quorum Q_eq exists to stop);
* :class:`DoubleVoter` — echoes prepares/commits for *every* digest it
  sees, lending quorum mass to both sides of an equivocation;
* :class:`SilentByzantine` — participates in nothing (indistinguishable
  from a crash, but counted as Byzantine by the experiment harness).

Composing an equivocating primary with enough double-voters is exactly the
scenario where PBFT's safety conditions tip over (|Byz| ≥ 2|Q_eq| − N), so
the simulator can demonstrate both sides of the predicate.
"""

from __future__ import annotations

from repro.sim.cluster import NodeFactory
from repro.sim.pbft.messages import Commit, Prepare, PrePrepare
from repro.sim.pbft.node import PBFTNode


class EquivocatingPrimary(PBFTNode):
    """Sends value to one half of the replicas and a forged twin to the other."""

    def send_preprepare(self, message: PrePrepare) -> None:
        twin = PrePrepare(
            view=message.view,
            seq=message.seq,
            value=f"evil({message.value})",
        )
        half = self.n // 2
        for node_id in range(self.n):
            chosen = message if node_id < half else twin
            self.send(node_id, chosen)
        # The primary itself processes the honest value.
        self.on_message(self.node_id, message)


class DoubleVoter(PBFTNode):
    """Votes for every digest it hears about, honest or forged."""

    def _handle_preprepare(self, src: int, msg: PrePrepare) -> None:
        if msg.view != self.view or src != self.primary_of(msg.view):
            return
        # No equivocation refusal: prepare for whatever arrives.
        self.preprepared[(msg.view, msg.seq)] = msg.value
        self.emit_prepare(msg.view, msg.seq, msg.value)

    def _handle_prepare(self, msg: Prepare) -> None:
        if msg.view != self.view:
            return
        votes = self.prepare_votes[(msg.view, msg.seq, msg.digest)]
        votes.add(msg.node_id)
        # Echo a prepare for any digest with any support, amplifying both sides.
        if self.node_id not in votes:
            self.emit_prepare(msg.view, msg.seq, msg.digest)
        if len(votes) >= self.q_eq:
            self.emit_commit(msg.view, msg.seq, msg.digest)

    def _handle_commit(self, msg: Commit) -> None:
        if msg.view != self.view:
            return
        votes = self.commit_votes[(msg.view, msg.seq, msg.digest)]
        votes.add(msg.node_id)
        if self.node_id not in votes:
            self.emit_commit(msg.view, msg.seq, msg.digest)
        # Byzantine nodes do not execute: their state is irrelevant to the
        # agreement check, which only audits correct replicas.


class EquivocatingDoubleVoter(EquivocatingPrimary, DoubleVoter):
    """Primary that equivocates *and* lends votes to both forks.

    With one accomplice :class:`DoubleVoter` in a 4-node cluster this
    realises the |Byz| ≥ 2|Q_eq| − N safety violation of Theorem 3.1: each
    fork gathers one correct node plus both Byzantine voters, so two
    conflicting quorums of 3 form and the correct nodes commit different
    values for the same slot.
    """


class SilentByzantine(PBFTNode):
    """Sends nothing at all — a fail-stop disguised as Byzantine."""

    def send_preprepare(self, message: PrePrepare) -> None:
        pass

    def emit_prepare(self, view: int, seq: int, digest: object) -> None:
        pass

    def emit_commit(self, view: int, seq: int, digest: object) -> None:
        pass

    def _start_view_change(self, new_view: int) -> None:
        pass


def mixed_pbft_factory(
    byzantine_ids: frozenset[int],
    byzantine_class: type[PBFTNode] = DoubleVoter,
    *,
    primary_class: type[PBFTNode] | None = None,
    q_eq: int | None = None,
    q_per: int | None = None,
    q_vc: int | None = None,
    q_vc_t: int | None = None,
) -> NodeFactory:
    """Factory producing honest replicas except the listed Byzantine ids.

    ``primary_class`` (default: the byzantine_class) is used for node 0 if
    it is Byzantine — letting tests pair an :class:`EquivocatingPrimary`
    with :class:`DoubleVoter` accomplices.
    """

    def build(node_id, n, scheduler, network, rng, trace):  # type: ignore[no-untyped-def]
        kwargs = dict(q_eq=q_eq, q_per=q_per, q_vc=q_vc, q_vc_t=q_vc_t)
        if node_id in byzantine_ids:
            cls = byzantine_class
            if node_id == 0 and primary_class is not None:
                cls = primary_class
            return cls(node_id, n, scheduler, network, rng, trace, **kwargs)
        return PBFTNode(node_id, n, scheduler, network, rng, trace, **kwargs)

    return build
