"""Simulated PBFT (three-phase agreement, view changes, Byzantine attacks)."""

from repro.sim.pbft.byzantine import (
    EquivocatingDoubleVoter,
    DoubleVoter,
    EquivocatingPrimary,
    SilentByzantine,
    mixed_pbft_factory,
)
from repro.sim.pbft.messages import (
    Commit,
    NewView,
    Prepare,
    PreparedProof,
    PrePrepare,
    ViewChange,
)
from repro.sim.pbft.node import PBFTNode, pbft_node_factory

__all__ = [
    "PBFTNode",
    "pbft_node_factory",
    "EquivocatingPrimary",
    "EquivocatingDoubleVoter",
    "DoubleVoter",
    "SilentByzantine",
    "mixed_pbft_factory",
    "PrePrepare",
    "Prepare",
    "Commit",
    "ViewChange",
    "NewView",
    "PreparedProof",
]
