"""PBFT replica state machine for the discrete-event simulator.

A three-phase PBFT (pre-prepare / prepare / commit) with view changes,
checkpoint-free and with values as their own digests.  Quorum sizes are
parameterised to match :class:`repro.protocols.pbft.PBFTSpec`:

* ``q_eq``   — prepare votes needed to *prepare* (non-equivocation);
* ``q_per``  — commit votes needed to *commit* (persistence);
* ``q_vc``   — view-change votes the new primary needs to install a view;
* ``q_vc_t`` — view-change votes that make a replica join the view change.

Byzantine behaviours live in :mod:`repro.sim.pbft.byzantine` as subclasses
overriding the honest methods.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.protocols.pbft import pbft_fault_threshold, pbft_quorum
from repro.sim.cluster import NodeFactory
from repro.sim.events import EventScheduler
from repro.sim.network import Network
from repro.sim.node import Process
from repro.sim.pbft.messages import (
    Commit,
    NewView,
    Prepare,
    PreparedProof,
    PrePrepare,
    ViewChange,
)
from repro.sim.trace import TraceRecorder


class PBFTNode(Process):
    """One (honest) PBFT replica."""

    PROGRESS_TIMEOUT = 0.5  # seconds without progress before view change
    RETRY_INTERVAL = 0.05  # pending-request re-examination cadence

    def __init__(
        self,
        node_id: int,
        n: int,
        scheduler: EventScheduler,
        network: Network,
        rng: np.random.Generator,
        trace: TraceRecorder,
        *,
        q_eq: int | None = None,
        q_per: int | None = None,
        q_vc: int | None = None,
        q_vc_t: int | None = None,
    ):
        super().__init__(node_id, scheduler, network, rng)
        self.n = n
        default_quorum = pbft_quorum(n)
        self.q_eq = default_quorum if q_eq is None else q_eq
        self.q_per = default_quorum if q_per is None else q_per
        self.q_vc = default_quorum if q_vc is None else q_vc
        self.q_vc_t = (pbft_fault_threshold(n) + 1) if q_vc_t is None else q_vc_t
        self._trace = trace
        # Protocol state
        self.view = 0
        self.next_seq = 1  # primary's sequence counter
        self.preprepared: dict[tuple[int, int], object] = {}  # (view, seq) -> digest
        self.prepare_votes: dict[tuple[int, int, object], set[int]] = defaultdict(set)
        self.commit_votes: dict[tuple[int, int, object], set[int]] = defaultdict(set)
        self.prepared_certs: dict[int, PreparedProof] = {}  # seq -> newest proof
        self.prepared_local: set[tuple[int, int, object]] = set()  # (view, seq, digest)
        self.executed: dict[int, object] = {}  # seq -> value
        self.pending: list[object] = []
        self.view_change_votes: dict[int, dict[int, ViewChange]] = defaultdict(dict)
        self._proposed_values: set[object] = set()  # primary-side dedup

    # ------------------------------------------------------------------
    # Roles and lifecycle
    # ------------------------------------------------------------------
    def primary_of(self, view: int) -> int:
        return view % self.n

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.node_id

    def on_start(self) -> None:
        self.set_timer("retry", self.RETRY_INTERVAL)

    def on_recover(self) -> None:
        # PBFT replicas persist their message log; the simulator keeps the
        # in-memory state and merely resumes timers.
        self.set_timer("retry", self.RETRY_INTERVAL)

    def on_timer(self, name: str) -> None:
        if name == "progress":
            self._start_view_change(self.view + 1)
        elif name == "retry":
            self._drive_pending()
            self._retransmit()
            self.set_timer("retry", self.RETRY_INTERVAL)

    def _retransmit(self) -> None:
        """Re-emit votes for unexecuted slots (lossy-network recovery).

        Vote sets are idempotent, so periodic rebroadcast of this
        replica's prepare/commit votes (and the primary's pre-prepares)
        implements PBFT's message-retransmission requirement.
        """
        for (view, seq), digest in list(self.preprepared.items()):
            if view != self.view or seq in self.executed:
                continue
            if self.is_primary:
                self.broadcast(PrePrepare(view=view, seq=seq, value=digest))
            self.emit_prepare(view, seq, digest)
        for view, seq, digest in list(self.prepared_local):
            if view == self.view and seq not in self.executed:
                self.emit_commit(view, seq, digest)

    # ------------------------------------------------------------------
    # Client interface
    # ------------------------------------------------------------------
    def on_client_request(self, value: object) -> None:
        if value in self.executed.values():
            return
        if value not in self.pending:
            self.pending.append(value)
        self._drive_pending()
        if not self.has_timer("progress"):
            self.set_timer("progress", self.PROGRESS_TIMEOUT)

    def _drive_pending(self) -> None:
        if not self.is_primary:
            return
        for value in list(self.pending):
            if value in self._proposed_values or value in self.executed.values():
                continue
            self._propose(value)

    def _propose(self, value: object) -> None:
        seq = self.next_seq
        self.next_seq += 1
        self._proposed_values.add(value)
        message = PrePrepare(view=self.view, seq=seq, value=value)
        self.send_preprepare(message)

    def send_preprepare(self, message: PrePrepare) -> None:
        """Disseminate a pre-prepare (override point for Byzantine primaries)."""
        self.broadcast(message, include_self=True)

    # ------------------------------------------------------------------
    # Three-phase agreement
    # ------------------------------------------------------------------
    def on_message(self, src: int, payload: object) -> None:
        if isinstance(payload, PrePrepare):
            self._handle_preprepare(src, payload)
        elif isinstance(payload, Prepare):
            self._handle_prepare(payload)
        elif isinstance(payload, Commit):
            self._handle_commit(payload)
        elif isinstance(payload, ViewChange):
            self._handle_view_change(payload)
        elif isinstance(payload, NewView):
            self._handle_new_view(src, payload)

    def _handle_preprepare(self, src: int, msg: PrePrepare) -> None:
        if msg.view != self.view or src != self.primary_of(msg.view):
            return
        key = (msg.view, msg.seq)
        if key in self.preprepared and self.preprepared[key] != msg.value:
            return  # equivocation detected: refuse the second assignment
        self.preprepared[key] = msg.value
        self.emit_prepare(msg.view, msg.seq, msg.value)

    def emit_prepare(self, view: int, seq: int, digest: object) -> None:
        """Broadcast this replica's prepare vote (Byzantine override point)."""
        self.broadcast(
            Prepare(view=view, seq=seq, digest=digest, node_id=self.node_id),
            include_self=True,
        )

    def _handle_prepare(self, msg: Prepare) -> None:
        if msg.view != self.view:
            return
        key = (msg.view, msg.seq, msg.digest)
        votes = self.prepare_votes[key]
        votes.add(msg.node_id)
        preprepare_known = self.preprepared.get((msg.view, msg.seq)) == msg.digest
        if preprepare_known and len(votes) >= self.q_eq:
            proof = PreparedProof(view=msg.view, seq=msg.seq, digest=msg.digest)
            existing = self.prepared_certs.get(msg.seq)
            if existing is None or existing.view <= msg.view:
                self.prepared_certs[msg.seq] = proof
            self.prepared_local.add((msg.view, msg.seq, msg.digest))
            self.emit_commit(msg.view, msg.seq, msg.digest)
            self._try_execute(msg.view, msg.seq, msg.digest)

    def emit_commit(self, view: int, seq: int, digest: object) -> None:
        """Broadcast this replica's commit vote (Byzantine override point)."""
        key = (view, seq, digest)
        if self.commit_votes[key] is not None and self.node_id in self.commit_votes[key]:
            return  # already voted
        self.broadcast(
            Commit(view=view, seq=seq, digest=digest, node_id=self.node_id),
            include_self=True,
        )

    def _handle_commit(self, msg: Commit) -> None:
        if msg.view != self.view:
            return
        key = (msg.view, msg.seq, msg.digest)
        votes = self.commit_votes[key]
        votes.add(msg.node_id)
        self._try_execute(msg.view, msg.seq, msg.digest)

    def _try_execute(self, view: int, seq: int, digest: object) -> None:
        """Execute when committed-local: prepared here + q_per commit votes.

        Requiring the local prepared certificate (not just the vote count)
        is Castro–Liskov's committed-local predicate; it is what confines a
        replica to the fork it actually prepared.
        """
        if seq in self.executed:
            return
        if (view, seq, digest) not in self.prepared_local:
            return
        if len(self.commit_votes[(view, seq, digest)]) >= self.q_per:
            self._execute(seq, digest)

    def _execute(self, seq: int, value: object) -> None:
        self.executed[seq] = value
        self._trace.record_commit(self.now, self.node_id, seq, value)
        if value in self.pending:
            self.pending.remove(value)
        if self.pending:
            self.set_timer("progress", self.PROGRESS_TIMEOUT)
        else:
            self.cancel_timer("progress")

    # ------------------------------------------------------------------
    # View changes
    # ------------------------------------------------------------------
    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        self._trace.record_event(self.now, self.node_id, "view-change", f"to={new_view}")
        message = ViewChange(
            new_view=new_view,
            prepared=tuple(self.prepared_certs.values()),
            node_id=self.node_id,
        )
        self.broadcast(message, include_self=True)
        self.set_timer("progress", self.PROGRESS_TIMEOUT * 2)

    def _handle_view_change(self, msg: ViewChange) -> None:
        if msg.new_view <= self.view:
            return
        votes = self.view_change_votes[msg.new_view]
        votes[msg.node_id] = msg
        # Join the view change once q_vc_t distinct replicas attest to it
        # (the paper's view-change *trigger* quorum).
        if len(votes) >= self.q_vc_t and self.node_id not in votes:
            self._start_view_change(msg.new_view)
            votes = self.view_change_votes[msg.new_view]
        # The incoming primary installs the view with q_vc votes.
        if (
            self.primary_of(msg.new_view) == self.node_id
            and len(votes) >= self.q_vc
        ):
            self._install_view(msg.new_view)

    def _install_view(self, new_view: int) -> None:
        votes = self.view_change_votes[new_view]
        carried: dict[int, PreparedProof] = {}
        for vote in votes.values():
            for proof in vote.prepared:
                existing = carried.get(proof.seq)
                if existing is None or existing.view < proof.view:
                    carried[proof.seq] = proof
        preprepares = tuple(
            PrePrepare(view=new_view, seq=seq, value=proof.digest)
            for seq, proof in sorted(carried.items())
        )
        self.view = new_view
        self.next_seq = max((p.seq for p in preprepares), default=0) + 1
        self._proposed_values = {p.value for p in preprepares}
        self._trace.record_event(self.now, self.node_id, "new-view", f"view={new_view}")
        self.broadcast(NewView(new_view=new_view, preprepares=preprepares), include_self=True)

    def _handle_new_view(self, src: int, msg: NewView) -> None:
        if msg.new_view < self.view or src != self.primary_of(msg.new_view):
            return
        self.view = msg.new_view
        for preprepare in msg.preprepares:
            self._handle_preprepare(src, preprepare)
        # Give the new primary a chance before suspecting it too.
        if self.pending:
            self.set_timer("progress", self.PROGRESS_TIMEOUT)
        self._drive_pending()


def pbft_node_factory(
    *,
    q_eq: int | None = None,
    q_per: int | None = None,
    q_vc: int | None = None,
    q_vc_t: int | None = None,
) -> NodeFactory:
    """Honest-replica factory for :class:`repro.sim.cluster.Cluster`."""

    def build(
        node_id: int,
        n: int,
        scheduler: EventScheduler,
        network: Network,
        rng: np.random.Generator,
        trace: TraceRecorder,
    ) -> PBFTNode:
        return PBFTNode(
            node_id,
            n,
            scheduler,
            network,
            rng,
            trace,
            q_eq=q_eq,
            q_per=q_per,
            q_vc=q_vc,
            q_vc_t=q_vc_t,
        )

    return build
