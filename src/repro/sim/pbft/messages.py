"""PBFT wire messages (Castro & Liskov, simulator dialect).

Digests are the values themselves (the simulator trusts hashability, not
cryptography); ``PreparedProof`` carries the prepared-certificate summary a
view change needs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PrePrepare:
    """Primary assigns ``value`` to ``seq`` within ``view`` (Step 1, §3.1)."""

    view: int
    seq: int
    value: object


@dataclass(frozen=True)
class Prepare:
    """Replica echoes a pre-prepare (non-equivocation quorum Q_eq)."""

    view: int
    seq: int
    digest: object
    node_id: int


@dataclass(frozen=True)
class Commit:
    """Replica votes to commit (persistence quorum Q_per)."""

    view: int
    seq: int
    digest: object
    node_id: int


@dataclass(frozen=True)
class PreparedProof:
    """Evidence that (seq, digest) prepared in ``view`` — carried in view changes."""

    view: int
    seq: int
    digest: object


@dataclass(frozen=True)
class ViewChange:
    """Vote to move to ``new_view`` with the sender's prepared certificates (Q_vc)."""

    new_view: int
    prepared: tuple[PreparedProof, ...]
    node_id: int


@dataclass(frozen=True)
class NewView:
    """New primary's installation message: the pre-prepares to re-run."""

    new_view: int
    preprepares: tuple[PrePrepare, ...]
