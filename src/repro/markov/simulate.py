"""Stochastic CTMC trajectory simulation (Gillespie / SSA).

Monte-Carlo counterpart to the exact solvers in :mod:`repro.markov.chain`:
draws explicit state trajectories, used to (a) validate the linear-algebra
answers and (b) extract distributions the closed forms do not expose, such
as the *spread* of time-to-data-loss rather than just its mean (the
Greenan et al. "mean time to meaningless" critique the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError
from repro.markov.chain import ContinuousTimeMarkovChain, State


@dataclass(frozen=True)
class Trajectory:
    """One simulated path: states visited and the times they were entered."""

    states: tuple[State, ...]
    entry_times: tuple[float, ...]

    @property
    def final_state(self) -> State:
        return self.states[-1]

    @property
    def end_time(self) -> float:
        return self.entry_times[-1]

    def time_in_state(self, state: State, horizon: float) -> float:
        """Total dwell time in ``state`` up to ``horizon``."""
        total = 0.0
        for i, s in enumerate(self.states):
            start = self.entry_times[i]
            end = self.entry_times[i + 1] if i + 1 < len(self.states) else horizon
            if s == state and start < horizon:
                total += min(end, horizon) - start
        return total


def simulate_trajectory(
    chain: ContinuousTimeMarkovChain,
    start: State,
    *,
    horizon: float,
    absorbing: Sequence[State] = (),
    seed: SeedLike = None,
) -> Trajectory:
    """Gillespie simulation until ``horizon`` or absorption."""
    if horizon <= 0:
        raise InvalidConfigurationError("horizon must be positive")
    rng = as_generator(seed)
    absorbing_idx = {chain.index_of(s) for s in absorbing}
    current = chain.index_of(start)
    now = 0.0
    states: list[State] = [chain.states[current]]
    times: list[float] = [0.0]
    while now < horizon and current not in absorbing_idx:
        exit_rate = -chain.generator[current, current]
        if exit_rate <= 0:
            break  # absorbing by construction
        dwell = float(rng.exponential(1.0 / exit_rate))
        now += dwell
        if now >= horizon:
            break
        rates = chain.generator[current].copy()
        rates[current] = 0.0
        probabilities = rates / rates.sum()
        current = int(rng.choice(chain.n_states, p=probabilities))
        states.append(chain.states[current])
        times.append(now)
    return Trajectory(tuple(states), tuple(times))


def _trajectory_streams(seed: SeedLike, trials: int, sharding: str):
    """Per-trajectory generators for the batch helpers below (lazily).

    ``"legacy"`` (the default) keeps the historical behaviour — one shared
    generator advanced trajectory after trajectory, bit-identical to every
    release before spawned streams existed.  ``"spawn"`` derives one
    ``SeedSequence`` child per *trajectory* (PR 3's worker-count-
    independence contract): trajectory ``t`` depends only on ``(seed, t)``,
    so a ``trials=N`` run is a bit-identical prefix of a ``trials=M > N``
    run and trajectories can be fanned across workers in any chunking
    without changing a single draw.

    Children are spawned one at a time as the iterator is consumed —
    repeated ``spawn(1)`` calls advance the parent's child counter exactly
    like one ``spawn(trials)`` (same ``spawn_key`` sequence, so the same
    streams as :func:`repro.analysis.kernels.spawn_shard_generators`) —
    keeping memory O(1) for million-trajectory sweeps instead of
    materialising every generator up front.
    """
    if sharding == "legacy":
        rng = as_generator(seed)
        return (rng for _ in range(trials))
    if sharding == "spawn":
        if isinstance(seed, np.random.Generator):
            seq = seed.bit_generator.seed_seq
        else:
            seq = np.random.SeedSequence(seed)
        return (np.random.default_rng(seq.spawn(1)[0]) for _ in range(trials))
    raise InvalidConfigurationError(
        f"unknown sharding mode {sharding!r}; expected 'legacy' or 'spawn'"
    )


def sample_absorption_times(
    chain: ContinuousTimeMarkovChain,
    start: State,
    absorbing: Sequence[State],
    *,
    trials: int = 1_000,
    horizon: float = float("inf"),
    seed: SeedLike = None,
    sharding: str = "legacy",
) -> np.ndarray:
    """Sampled hitting times of the absorbing set (``inf`` when censored).

    Against :meth:`ContinuousTimeMarkovChain.expected_time_to_absorption`
    this exposes the full distribution — MTTDL's long tail included.
    ``sharding="spawn"`` gives every trajectory its own spawned
    ``SeedSequence`` stream (see :func:`_trajectory_streams`); the default
    keeps the legacy shared-generator draws bit-identical.
    """
    if trials <= 0:
        raise InvalidConfigurationError("trials must be positive")
    streams = _trajectory_streams(seed, trials, sharding)
    absorbing_set = set(absorbing)
    bounded_horizon = horizon if np.isfinite(horizon) else 1e12
    times = np.empty(trials)
    for t, rng in enumerate(streams):
        trajectory = simulate_trajectory(
            chain, start, horizon=bounded_horizon, absorbing=absorbing, seed=rng
        )
        if trajectory.final_state in absorbing_set:
            times[t] = trajectory.end_time
        else:
            times[t] = np.inf
    return times


def empirical_availability(
    chain: ContinuousTimeMarkovChain,
    start: State,
    up_states: Sequence[State],
    *,
    horizon: float,
    trials: int = 200,
    seed: SeedLike = None,
    sharding: str = "legacy",
) -> float:
    """Fraction of simulated time spent in ``up_states`` (validates π).

    ``sharding="spawn"`` switches to per-trajectory spawned streams (see
    :func:`_trajectory_streams`); the summed up-time is accumulated in
    trajectory order either way, so the value depends only on
    ``(trials, seed, sharding)``.
    """
    if horizon <= 0 or trials <= 0:
        raise InvalidConfigurationError("horizon and trials must be positive")
    streams = _trajectory_streams(seed, trials, sharding)
    up = set(up_states)
    total_up = 0.0
    for rng in streams:
        trajectory = simulate_trajectory(chain, start, horizon=horizon, seed=rng)
        total_up += sum(trajectory.time_in_state(s, horizon) for s in up)
    return total_up / (trials * horizon)
