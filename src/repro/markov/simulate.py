"""Stochastic CTMC trajectory simulation (Gillespie / SSA).

Monte-Carlo counterpart to the exact solvers in :mod:`repro.markov.chain`:
draws explicit state trajectories, used to (a) validate the linear-algebra
answers and (b) extract distributions the closed forms do not expose, such
as the *spread* of time-to-data-loss rather than just its mean (the
Greenan et al. "mean time to meaningless" critique the paper cites).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError
from repro.markov.chain import ContinuousTimeMarkovChain, State


@dataclass(frozen=True)
class Trajectory:
    """One simulated path: states visited and the times they were entered."""

    states: tuple[State, ...]
    entry_times: tuple[float, ...]

    @property
    def final_state(self) -> State:
        return self.states[-1]

    @property
    def end_time(self) -> float:
        return self.entry_times[-1]

    def time_in_state(self, state: State, horizon: float) -> float:
        """Total dwell time in ``state`` up to ``horizon``."""
        total = 0.0
        for i, s in enumerate(self.states):
            start = self.entry_times[i]
            end = self.entry_times[i + 1] if i + 1 < len(self.states) else horizon
            if s == state and start < horizon:
                total += min(end, horizon) - start
        return total


def simulate_trajectory(
    chain: ContinuousTimeMarkovChain,
    start: State,
    *,
    horizon: float,
    absorbing: Sequence[State] = (),
    seed: SeedLike = None,
) -> Trajectory:
    """Gillespie simulation until ``horizon`` or absorption."""
    if horizon <= 0:
        raise InvalidConfigurationError("horizon must be positive")
    rng = as_generator(seed)
    absorbing_idx = {chain.index_of(s) for s in absorbing}
    current = chain.index_of(start)
    now = 0.0
    states: list[State] = [chain.states[current]]
    times: list[float] = [0.0]
    while now < horizon and current not in absorbing_idx:
        exit_rate = -chain.generator[current, current]
        if exit_rate <= 0:
            break  # absorbing by construction
        dwell = float(rng.exponential(1.0 / exit_rate))
        now += dwell
        if now >= horizon:
            break
        rates = chain.generator[current].copy()
        rates[current] = 0.0
        probabilities = rates / rates.sum()
        current = int(rng.choice(chain.n_states, p=probabilities))
        states.append(chain.states[current])
        times.append(now)
    return Trajectory(tuple(states), tuple(times))


def sample_absorption_times(
    chain: ContinuousTimeMarkovChain,
    start: State,
    absorbing: Sequence[State],
    *,
    trials: int = 1_000,
    horizon: float = float("inf"),
    seed: SeedLike = None,
) -> np.ndarray:
    """Sampled hitting times of the absorbing set (``inf`` when censored).

    Against :meth:`ContinuousTimeMarkovChain.expected_time_to_absorption`
    this exposes the full distribution — MTTDL's long tail included.
    """
    if trials <= 0:
        raise InvalidConfigurationError("trials must be positive")
    rng = as_generator(seed)
    absorbing_set = set(absorbing)
    bounded_horizon = horizon if np.isfinite(horizon) else 1e12
    times = np.empty(trials)
    for t in range(trials):
        trajectory = simulate_trajectory(
            chain, start, horizon=bounded_horizon, absorbing=absorbing, seed=rng
        )
        if trajectory.final_state in absorbing_set:
            times[t] = trajectory.end_time
        else:
            times[t] = np.inf
    return times


def empirical_availability(
    chain: ContinuousTimeMarkovChain,
    start: State,
    up_states: Sequence[State],
    *,
    horizon: float,
    trials: int = 200,
    seed: SeedLike = None,
) -> float:
    """Fraction of simulated time spent in ``up_states`` (validates π)."""
    if horizon <= 0 or trials <= 0:
        raise InvalidConfigurationError("horizon and trials must be positive")
    rng = as_generator(seed)
    up = set(up_states)
    total_up = 0.0
    for _ in range(trials):
        trajectory = simulate_trajectory(chain, start, horizon=horizon, seed=rng)
        total_up += sum(trajectory.time_in_state(s, horizon) for s in up)
    return total_up / (trials * horizon)
