"""Markov reliability models — the storage community's toolkit (paper §2).

Exact CTMC machinery (:mod:`repro.markov.chain`) plus replicated-cluster
builders (:mod:`repro.markov.builders`) producing MTTF, MTTDL and
steady-state availability for consensus deployments.
"""

from repro.markov.builders import ClusterMarkovModel, mttf_comparison
from repro.markov.chain import ContinuousTimeMarkovChain, TransitionRates
from repro.markov.simulate import (
    Trajectory,
    empirical_availability,
    sample_absorption_times,
    simulate_trajectory,
)

__all__ = [
    "ContinuousTimeMarkovChain",
    "TransitionRates",
    "ClusterMarkovModel",
    "Trajectory",
    "simulate_trajectory",
    "sample_absorption_times",
    "empirical_availability",
    "mttf_comparison",
]
