"""Markov-model builders for replicated clusters (paper §2, §5 Zorfu).

States count failed replicas; failure transitions run at ``(n - k)·λ`` and
repairs at ``min(k, repair_slots)·μ``.  From these chains we derive the
metrics the storage community uses — and the paper says consensus should
adopt — MTTF (time to losing liveness), MTTDL (time to losing data), and
steady-state availability under repair.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigurationError
from repro.markov.chain import ContinuousTimeMarkovChain, TransitionRates


@dataclass(frozen=True)
class ClusterMarkovModel:
    """Birth–death model of an ``n``-replica cluster with repair.

    Parameters
    ----------
    n:
        Replica count.
    failure_rate_per_hour:
        Per-replica constant hazard λ.
    repair_rate_per_hour:
        Per-repair-slot rate μ (1 / mean-time-to-repair).
    repair_slots:
        Concurrent repairs allowed (1 = single repair crew, n = fully
        parallel re-provisioning).
    """

    n: int
    failure_rate_per_hour: float
    repair_rate_per_hour: float
    repair_slots: int = 1

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise InvalidConfigurationError(f"n must be positive, got {self.n}")
        if self.failure_rate_per_hour < 0 or self.repair_rate_per_hour < 0:
            raise InvalidConfigurationError("rates must be non-negative")
        if self.repair_slots < 0:
            raise InvalidConfigurationError("repair_slots must be non-negative")

    def chain(self, *, absorbing_at: int | None = None) -> ContinuousTimeMarkovChain:
        """Build the CTMC on states ``0..n`` failed.

        ``absorbing_at`` truncates repairs at that failure count, making it
        absorbing — the construction used for mean-time-to-X questions.
        """
        if absorbing_at is not None and not 0 < absorbing_at <= self.n:
            raise InvalidConfigurationError(
                f"absorbing_at={absorbing_at} outside (0, {self.n}]"
            )
        # States beyond the absorbing boundary are unreachable; excluding
        # them keeps the transient block non-singular.
        top = self.n if absorbing_at is None else absorbing_at
        rates: dict[tuple[int, int], float] = {}
        for failed in range(top):
            rates[(failed, failed + 1)] = (self.n - failed) * self.failure_rate_per_hour
        for failed in range(1, top + 1):
            if absorbing_at is not None and failed >= absorbing_at:
                continue
            slots = min(failed, self.repair_slots)
            if slots > 0 and self.repair_rate_per_hour > 0:
                rates[(failed, failed - 1)] = slots * self.repair_rate_per_hour
        states = list(range(top + 1))
        return ContinuousTimeMarkovChain(states, TransitionRates(rates))

    # ------------------------------------------------------------------
    # Storage-style metrics
    # ------------------------------------------------------------------
    def mean_time_to_failure_count(self, threshold: int) -> float:
        """Mean hours from all-healthy until ``threshold`` replicas are down."""
        chain = self.chain(absorbing_at=threshold)
        return chain.expected_time_to_absorption(0, [threshold])

    def mttf_liveness(self, quorum_size: int) -> float:
        """MTTF for liveness: time until fewer than ``quorum_size`` replicas remain."""
        threshold = self.n - quorum_size + 1
        if threshold <= 0:
            return 0.0
        return self.mean_time_to_failure_count(threshold)

    def mttdl(self, persistence_quorum: int) -> float:
        """Mean time to data loss: all ``persistence_quorum`` copies down at once.

        Matches the adversarial durability model of
        :class:`repro.protocols.reliability_aware.ObliviousDurabilityRaftSpec`:
        data is lost when ``persistence_quorum`` simultaneous failures can
        cover the quorum that persisted the data.
        """
        if not 0 < persistence_quorum <= self.n:
            raise InvalidConfigurationError(
                f"persistence_quorum={persistence_quorum} outside (0, {self.n}]"
            )
        return self.mean_time_to_failure_count(persistence_quorum)

    def steady_state_distribution(self) -> dict:
        """Stationary distribution of the repairable chain (one CTMC solve).

        Exposed so batched consumers (the engine's availability backend)
        can solve the chain once and answer every quorum question against
        the same π — see :meth:`steady_state_availability`'s ``pi``
        parameter.
        """
        if self.repair_rate_per_hour <= 0:
            raise InvalidConfigurationError("availability under repair needs μ > 0")
        return self.chain().steady_state()

    def steady_state_availability(
        self, quorum_size: int, *, pi: dict | None = None
    ) -> float:
        """Long-run fraction of time a ``quorum_size`` quorum is formable.

        ``pi`` optionally supplies a precomputed
        :meth:`steady_state_distribution`; passing it skips the linear
        solve but changes nothing bit-wise (the reduction below is the
        only other operation).
        """
        if self.repair_rate_per_hour <= 0:
            raise InvalidConfigurationError("availability under repair needs μ > 0")
        if pi is None:
            pi = self.chain().steady_state()
        max_failed = self.n - quorum_size
        return sum(p for failed, p in pi.items() if failed <= max_failed)

    def window_unavailability(self, quorum_size: int, window_hours: float) -> float:
        """P(cluster has lost quorum at the end of a window, no repairs mid-window).

        Diagnostic linking the Markov view to the paper's per-window
        failure-probability view.
        """
        from scipy import stats
        import math

        p_window = -math.expm1(-self.failure_rate_per_hour * window_hours)
        max_failed = self.n - quorum_size
        return float(stats.binom.sf(max_failed, self.n, p_window))


def mttf_comparison(
    models: dict[str, ClusterMarkovModel], quorum_size_of: dict[str, int]
) -> dict[str, float]:
    """MTTF (liveness) for a family of named cluster designs."""
    missing = set(models) - set(quorum_size_of)
    if missing:
        raise InvalidConfigurationError(f"missing quorum sizes for {sorted(missing)}")
    return {
        name: model.mttf_liveness(quorum_size_of[name]) for name, model in models.items()
    }
