"""Continuous-time Markov chains (paper §2: MTTF/MTBF/MTTDL machinery).

The storage community quantifies reliability with Markov models whose
states are system configurations and whose transitions carry failure (λ)
and repair (μ) rates.  This module is a small, exact CTMC toolkit:
steady-state distributions, absorption times (the mean-time-to-X family)
and hitting probabilities — solved with dense linear algebra, which is
ample for the few-dozen-state chains reliability models produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

import numpy as np

from repro.errors import InvalidConfigurationError

State = Hashable


@dataclass(frozen=True)
class TransitionRates:
    """Sparse rate description: ``rates[(src, dst)] = rate`` (per hour)."""

    rates: Mapping[tuple[State, State], float]

    def __post_init__(self) -> None:
        for (src, dst), rate in self.rates.items():
            if src == dst:
                raise InvalidConfigurationError(f"self-transition {src}->{dst} not allowed")
            if rate < 0:
                raise InvalidConfigurationError(f"negative rate {rate} on {src}->{dst}")


class ContinuousTimeMarkovChain:
    """A finite CTMC with an explicit generator matrix.

    States may be any hashable labels; internally they map to indices in
    the order supplied.
    """

    def __init__(self, states: Sequence[State], transitions: TransitionRates):
        if not states:
            raise InvalidConfigurationError("chain needs at least one state")
        if len(set(states)) != len(states):
            raise InvalidConfigurationError("duplicate states")
        self.states = tuple(states)
        self._index = {state: i for i, state in enumerate(self.states)}
        size = len(self.states)
        generator = np.zeros((size, size))
        for (src, dst), rate in transitions.rates.items():
            if src not in self._index or dst not in self._index:
                raise InvalidConfigurationError(f"transition {src}->{dst} uses unknown state")
            generator[self._index[src], self._index[dst]] += rate
        np.fill_diagonal(generator, 0.0)
        np.fill_diagonal(generator, -generator.sum(axis=1))
        self.generator = generator

    @property
    def n_states(self) -> int:
        return len(self.states)

    def index_of(self, state: State) -> int:
        try:
            return self._index[state]
        except KeyError:
            raise InvalidConfigurationError(f"unknown state {state!r}") from None

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------
    def steady_state(self) -> dict[State, float]:
        """Stationary distribution π with πQ = 0, Σπ = 1.

        Requires an irreducible chain (no absorbing states); the linear
        system is solved with the normalisation row replacing one balance
        equation.
        """
        size = self.n_states
        a = self.generator.T.copy()
        a[-1, :] = 1.0
        b = np.zeros(size)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(a, b)
        except np.linalg.LinAlgError as exc:
            raise InvalidConfigurationError(
                "steady state undefined (chain reducible or absorbing)"
            ) from exc
        if np.any(pi < -1e-9):
            raise InvalidConfigurationError("steady state solve produced negative mass")
        pi = np.clip(pi, 0.0, None)
        pi = pi / pi.sum()
        return {state: float(pi[i]) for i, state in enumerate(self.states)}

    # ------------------------------------------------------------------
    # Absorption analysis: the MTTF / MTTDL family
    # ------------------------------------------------------------------
    def expected_time_to_absorption(
        self, start: State, absorbing: Sequence[State]
    ) -> float:
        """Mean hitting time of the absorbing set from ``start`` (hours).

        Solves ``Q_tt · t = -1`` on the transient block — the standard
        fundamental-matrix computation behind MTTF/MTTDL figures.
        Returns ``inf`` when the absorbing set is unreachable.
        """
        absorbing_idx = {self.index_of(s) for s in absorbing}
        if not absorbing_idx:
            raise InvalidConfigurationError("absorbing set must be non-empty")
        start_idx = self.index_of(start)
        if start_idx in absorbing_idx:
            return 0.0
        transient = [i for i in range(self.n_states) if i not in absorbing_idx]
        position = {i: k for k, i in enumerate(transient)}
        q_tt = self.generator[np.ix_(transient, transient)]
        rhs = -np.ones(len(transient))
        try:
            times = np.linalg.solve(q_tt, rhs)
        except np.linalg.LinAlgError:
            return float("inf")
        value = float(times[position[start_idx]])
        if value < 0:
            # Negative solution indicates the absorbing set is unreachable
            # from part of the transient block (singular-ish system).
            return float("inf")
        return value

    def absorption_probability(
        self, start: State, target: Sequence[State], absorbing: Sequence[State]
    ) -> float:
        """P(first absorption happens in ``target``), target ⊆ absorbing."""
        absorbing_idx = [self.index_of(s) for s in absorbing]
        target_idx = {self.index_of(s) for s in target}
        if not target_idx <= set(absorbing_idx):
            raise InvalidConfigurationError("target must be a subset of absorbing states")
        start_idx = self.index_of(start)
        if start_idx in target_idx:
            return 1.0
        if start_idx in set(absorbing_idx):
            return 0.0
        transient = [i for i in range(self.n_states) if i not in set(absorbing_idx)]
        position = {i: k for k, i in enumerate(transient)}
        q_tt = self.generator[np.ix_(transient, transient)]
        rates_to_target = self.generator[np.ix_(transient, sorted(target_idx))].sum(axis=1)
        try:
            probs = np.linalg.solve(q_tt, -rates_to_target)
        except np.linalg.LinAlgError as exc:
            raise InvalidConfigurationError("absorption probabilities undefined") from exc
        return float(np.clip(probs[position[start_idx]], 0.0, 1.0))

    def transient_distribution(self, start: State, t_hours: float) -> dict[State, float]:
        """Distribution after ``t_hours`` starting from ``start`` (matrix exponential)."""
        if t_hours < 0:
            raise InvalidConfigurationError("time must be non-negative")
        from scipy.linalg import expm

        p0 = np.zeros(self.n_states)
        p0[self.index_of(start)] = 1.0
        pt = p0 @ expm(self.generator * t_hours)
        pt = np.clip(pt, 0.0, None)
        pt = pt / pt.sum()
        return {state: float(pt[i]) for i, state in enumerate(self.states)}
