"""Path-scoped allowlist configuration for the contract checker.

A :class:`LintConfig` declares, per rule, *where* otherwise-banned
constructs are legitimate — the boundary modules that are allowed to
construct RNGs, the supervision/metrology modules that may read wall
clocks, which functions hand workers to pools, and which frozen
dataclasses must keep ``to_dict``/``cache_key`` field coverage in sync.

:data:`DEFAULT_CONFIG` encodes this repository's contracts.  Every
allowlist entry is a *justified* hole: the comment next to it says why
the path is exempt, exactly like an inline ``# repro: allow[...]``
comment justifies a single site.  Paths are matched with
:func:`fnmatch.fnmatch` against posix paths relative to the lint root,
so the same config works whether the checker is pointed at ``src/``,
``src/repro/`` or a temp tree in a test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Mapping, Tuple


def path_matches(path: str, patterns: Tuple[str, ...]) -> bool:
    """Whether a root-relative posix path matches any allowlist pattern."""
    return any(fnmatch(path, pattern) for pattern in patterns)


@dataclass(frozen=True)
class KeyBinding:
    """A module-level function that builds the memo key for a dataclass.

    Some cache keys live outside the class they cover (the simulation
    campaign key is assembled by ``_campaign_cache_key`` in
    ``engine/backends.py``).  Binding the function to its class lets the
    coverage rule demand that every field of the class is read — directly
    or through the class's own key helper methods — by that function.
    """

    function: str  # module-level function name
    class_name: str  # dataclass whose fields it must cover
    path_pattern: str = "*"  # where the function is defined


@dataclass(frozen=True)
class LintConfig:
    """Everything the rules need to know about one codebase's contracts."""

    #: Files never linted (globs against root-relative posix paths).
    exclude: Tuple[str, ...] = ()

    #: rule id -> path globs where the rule does not apply at all.
    rule_allow: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    #: Function names (worker-arg position 0) that hand callables to
    #: thread/process pools — workers must be module-level for pickling.
    pool_entry_points: Tuple[str, ...] = ("run_sharded", "run_supervised", "dispatch")

    #: Method names whose bodies feed serialized/hashed output; unsorted
    #: dict-view iteration inside them is an ordering hazard.
    codec_methods: Tuple[str, ...] = (
        "to_dict",
        "to_dicts",
        "to_json",
        "cache_key",
        "fleet_key",
        "chain_key",
        "fault_key",
        "behaviour_key",
        "grouping_key",
        "baseline_key",
    )

    #: Globs of modules whose frozen dataclasses must keep
    #: ``to_dict``/``cache_key`` field coverage complete.
    cache_key_modules: Tuple[str, ...] = ()

    #: Out-of-class cache-key builders (see :class:`KeyBinding`).
    key_bindings: Tuple[KeyBinding, ...] = ()

    #: "ClassName.field" -> justification for exemption from coverage.
    #: Provenance-only fields (labels, display hints) belong here.
    field_exemptions: Mapping[str, str] = field(default_factory=dict)

    #: Globs of modules holding checkpoint/journal write paths, where the
    #: journal-durability rule demands an ``os.fsync`` for every write
    #: before the guarding lock is released.  Scoped because ordinary file
    #: output (reports, plots) legitimately trades durability for speed.
    journal_paths: Tuple[str, ...] = (
        "*runtime.py",  # CampaignCheckpoint journals (PR 6)
        "*chaos.py",  # chaos-harness crash markers piggyback on the journal
        "*journal*",
        "*checkpoint*",
    )

    def allowed(self, rule_id: str, path: str) -> bool:
        return path_matches(path, tuple(self.rule_allow.get(rule_id, ())))

    def exempt_field(self, class_name: str, field_name: str) -> bool:
        return f"{class_name}.{field_name}" in self.field_exemptions


#: The contracts of this repository.  Each allowlist entry is a declared,
#: justified boundary — everything else must thread ``rng``/``seed``
#: parameters, stay clock-free, and keep its keys covered.
DEFAULT_CONFIG = LintConfig(
    exclude=(
        # Generated/cache artifacts; tests and benchmarks are linted only
        # when explicitly pointed at (the self-lint scope is src/repro).
        "*/__pycache__/*",
    ),
    rule_allow={
        "rng-discipline": (
            # The seed-coercion module itself: the single place ambient
            # construction is the job.
            "*repro/_rng.py",
            # Shard-stream boundary: SeedSequence.spawn children are minted
            # and rebuilt into generators here (PR 3's worker-count-
            # independent plans); everything downstream receives streams.
            "*repro/analysis/kernels.py",
            # Per-trajectory spawn streams for batched Gillespie runs
            # (PR 4); the module is the declared trajectory-stream boundary.
            "*repro/markov/simulate.py",
        ),
        "wall-clock": (
            # Supervision reads real deadlines/backoff clocks by design;
            # no estimator output flows from them (PR 6).
            "*repro/engine/runtime.py",
            # Provenance timing (Provenance.seconds) is metrology, not an
            # input to any answer.
            "*repro/engine/engine.py",
            "*repro/engine/backends.py",
            # The serving daemon measures request latency and uptime —
            # wall-clock by nature (PR 8); no answer value flows from
            # either, which tests/test_serve.py proves by bit-comparing
            # daemon answers against direct engine runs.
            "*repro/serve/*",
            # Tracing/profiling is metrology by definition: repro.obs
            # reads clocks through its single declared shim
            # (obs/clock.py) to timestamp spans, and no answer value
            # flows from any reading — tests/test_obs.py pins answers
            # bit-identical with tracing disabled, enabled, and
            # exporting (PR 10).
            "*repro/obs/*",
        ),
    },
    cache_key_modules=(
        "*repro/engine/scenario.py",
        "*repro/engine/query.py",
        "*repro/injection/plan.py",
    ),
    key_bindings=(
        # The campaign memo key lives in the backend, not on the query:
        # every SimulationQuery field must flow into it (this is the rule
        # that catches behaviour_build-style provenance drift statically).
        KeyBinding(
            function="_campaign_cache_key",
            class_name="SimulationQuery",
            path_pattern="*repro/engine/backends.py",
        ),
    ),
    field_exemptions={
        # Estimator *name* is resolved before keying: the engine keys on
        # the concrete resolved method (see Scenario.cache_key docstring).
        "Scenario.method": "cache_key takes the post-'auto' resolved_method",
        # Provenance-only metadata: never influences estimator output.
        "Scenario.label": "display-only provenance",
        "Scenario.window_hours": "display-only provenance (horizon stamp)",
    },
)
