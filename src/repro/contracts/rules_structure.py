"""Structural rules: pool safety, cache-key coverage, exception hygiene,
registry drift.

These families guard the engine's execution and caching contracts: workers
handed to process pools must survive pickling, memo keys must cover every
field that changes an answer, worker errors must be attributed or
re-raised, and a query kind must never land half-wired into the registry.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.contracts.config import path_matches
from repro.contracts.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    call_name,
    decorator_names,
    register_rule,
)


@register_rule
class PoolSafetyRule(Rule):
    id = "pool-safety"
    summary = "pool workers must be module-level callables (picklable)"
    rationale = """
``run_sharded``/``run_supervised`` fan payloads over thread *or* process
pools depending on the :class:`ExecutionPolicy`; a lambda or closure
worker happens to work under threads, then fails to pickle (or silently
captures stale state) the first time a user passes ``mode="process"`` —
exactly the class of late failure PR 6 hardened the runtime against.
Workers must be module-level functions or picklable callable instances;
closures belong in the *payloads*, which are built in the parent.
"""
    bad_example = """
run_sharded(lambda payload: simulate(spec, payload), payloads, jobs=4)
"""
    good_example = """
def _simulate_chunk(payload):          # module level: pickles cleanly
    return simulate(*payload)

run_sharded(_simulate_chunk, payloads, jobs=4)
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        entry_points = set(config.pool_entry_points)
        findings: List[Finding] = []

        def visit(node: ast.AST, local_defs: Set[str]) -> None:
            if isinstance(node, ast.Call):
                worker = self._worker_arg(node, entry_points)
                if worker is not None:
                    findings.extend(self._judge(ctx, node, worker, local_defs))
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                # Defs nested inside this one are closures from the POV of
                # any pool call made while they are in scope.
                nested = set(local_defs)
                for child in ast.walk(node):
                    if child is not node and isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        nested.add(child.name)
                for child in ast.iter_child_nodes(node):
                    visit(child, nested)
                return
            for child in ast.iter_child_nodes(node):
                visit(child, local_defs)

        visit(ctx.tree, set())
        yield from findings

    @staticmethod
    def _worker_arg(call: ast.Call, entry_points: Set[str]) -> Optional[ast.AST]:
        name = call_name(call)
        if name in entry_points and call.args:
            return call.args[0]
        # executor.submit(lambda: ...) — only the obviously-wrong shape.
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "submit"
            and call.args
            and isinstance(call.args[0], ast.Lambda)
        ):
            return call.args[0]
        return None

    def _judge(
        self,
        ctx: FileContext,
        call: ast.Call,
        worker: ast.AST,
        local_defs: Set[str],
    ) -> Iterator[Finding]:
        if any(isinstance(sub, ast.Lambda) for sub in ast.walk(worker)):
            reason = "a lambda"
        elif isinstance(worker, ast.Name) and worker.id in local_defs:
            reason = f"the nested function `{worker.id}`"
        else:
            return
        yield Finding(
            path=ctx.path,
            line=worker.lineno,
            col=worker.col_offset,
            rule=self.id,
            message=(
                f"pool worker is {reason} — process pools cannot pickle it; "
                "hoist to module level and move captured state into the payload"
            ),
        )


# ---------------------------------------------------------------------------
# Cache-key field coverage
# ---------------------------------------------------------------------------
#: Calls that read every dataclass field generically.
_FULL_COVERAGE_CALLS = frozenset({"fields", "asdict", "_fields_to_dict"})


class _ClassInfo:
    """Fields and methods of one dataclass, extracted syntactically."""

    def __init__(self, ctx: FileContext, node: ast.ClassDef):
        self.ctx = ctx
        self.node = node
        self.name = node.name
        self.base_names = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]
        self.is_dataclass = "dataclass" in set(decorator_names(node))
        self.methods: Dict[str, ast.FunctionDef] = {
            item.name: item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
        }
        self.own_fields: Tuple[str, ...] = tuple(
            item.target.id
            for item in node.body
            if isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)
            and not item.target.id.startswith("_")
            and "ClassVar" not in ast.dump(item.annotation)
        )

    def reads_of(self, method_name: str, seen: Optional[Set[str]] = None) -> Set[str]:
        """Names read as ``self.<name>`` by a method, helpers included.

        Reading ``self.helper`` (attribute or call) unions the helper
        method's own reads, so ``cache_key -> self.fleet_key()`` covers the
        fields ``fleet_key`` touches; a call of a ``_FULL_COVERAGE_CALLS``
        helper on ``self`` covers everything (returned as ``{"*"}``).
        """
        seen = set() if seen is None else seen
        if method_name in seen:
            return set()
        seen.add(method_name)
        method = self.methods.get(method_name)
        if method is None:
            return set()
        reads: Set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, ast.Call):
                fn = call_name(node)
                if fn in _FULL_COVERAGE_CALLS and any(
                    isinstance(arg, ast.Name) and arg.id == "self"
                    for arg in node.args
                ):
                    return {"*"}
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                reads.add(node.attr)
                if node.attr in self.methods:
                    nested = self.reads_of(node.attr, seen)
                    if "*" in nested:
                        return {"*"}
                    reads |= nested
        return reads


def _class_index(project: Project) -> Dict[str, _ClassInfo]:
    index: Dict[str, _ClassInfo] = {}
    for ctx in project.files:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                index[node.name] = _ClassInfo(ctx, node)
    return index


def _all_fields(info: _ClassInfo, index: Dict[str, _ClassInfo]) -> Tuple[str, ...]:
    """Own plus inherited dataclass fields (base classes resolved by name)."""
    names: List[str] = []
    stack = [info]
    seen = set()
    while stack:
        current = stack.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        names.extend(current.own_fields)
        for base in current.base_names:
            if base in index:
                stack.append(index[base])
    return tuple(dict.fromkeys(names))


@register_rule
class CacheKeyCoverageRule(Rule):
    id = "cache-key-coverage"
    summary = "every dataclass field must flow into to_dict and cache_key"
    rationale = """
The engine memoises answers by frozen-value keys; a field added to a
query/scenario/plan but forgotten in ``cache_key`` (or an out-of-class
key builder) makes two *different* questions share one cache entry — the
``behaviour_build`` drift PR 5's review caught by hand, now caught
statically.  The same goes for ``to_dict``: a field missing from the
codec silently drops on the first JSON round-trip.  Provenance-only
fields are exempted in the lint config, with the justification recorded
next to the exemption.
"""
    bad_example = """
@dataclass(frozen=True)
class Plan:
    events: tuple
    adversary: str = "none"            # new field...

    def cache_key(self):
        return (self.events,)          # ...not keyed: stale cache hits
"""
    good_example = """
    def cache_key(self):
        return (self.events, self.adversary)
"""

    def check_project(self, project: Project, config) -> Iterator[Finding]:
        index = _class_index(project)
        for info in index.values():
            if not info.is_dataclass:
                continue
            if not path_matches(info.ctx.path, tuple(config.cache_key_modules)):
                continue
            required = _all_fields(info, index)
            if not required:
                continue
            for method_name in ("to_dict", "cache_key"):
                if method_name not in info.methods:
                    continue
                yield from self._coverage_findings(
                    info,
                    required,
                    info.reads_of(method_name),
                    where=f"{info.name}.{method_name}",
                    site=info.methods[method_name],
                    config=config,
                )
        yield from self._binding_findings(project, index, config)

    def _binding_findings(self, project: Project, index, config) -> Iterator[Finding]:
        for binding in config.key_bindings:
            info = index.get(binding.class_name)
            if info is None:
                continue
            for ctx in project.files:
                if not path_matches(ctx.path, (binding.path_pattern,)):
                    continue
                for node in ast.walk(ctx.tree):
                    if (
                        isinstance(node, ast.FunctionDef)
                        and node.name == binding.function
                        and node.args.args
                    ):
                        param = node.args.args[0].arg
                        reads = self._param_reads(node, param, info)
                        yield from self._coverage_findings(
                            info,
                            _all_fields(info, index),
                            reads,
                            where=f"{ctx.path}::{binding.function}",
                            site=node,
                            config=config,
                            ctx=ctx,
                        )

    @staticmethod
    def _param_reads(fn: ast.FunctionDef, param: str, info: _ClassInfo) -> Set[str]:
        """Fields of ``info`` read off ``param`` (class key helpers chased)."""
        reads: Set[str] = set()
        for node in ast.walk(fn):
            attr = None
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == param
            ):
                attr = node.attr
            elif (
                # one indirection deep: `scenario = query.scenario` is
                # still query.scenario at the read site; deeper aliasing
                # is out of scope for a syntactic pass.
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Attribute)
                and isinstance(node.value.value, ast.Name)
                and node.value.value.id == param
            ):
                reads.add(node.value.attr)
                continue
            if attr is None:
                continue
            reads.add(attr)
            if attr in info.methods:
                nested = info.reads_of(attr)
                if "*" in nested:
                    return {"*"}
                reads |= nested
        return reads

    def _coverage_findings(
        self, info, required, reads, *, where, site, config, ctx=None
    ) -> Iterator[Finding]:
        ctx = info.ctx if ctx is None else ctx
        if "*" in reads:
            return
        for field_name in required:
            if field_name in reads:
                continue
            if config.exempt_field(info.name, field_name):
                continue
            yield Finding(
                path=ctx.path,
                line=site.lineno,
                col=site.col_offset,
                rule=self.id,
                message=(
                    f"{where} does not cover field `{field_name}` of "
                    f"{info.name} — key/codec drift; include it or exempt it "
                    "with a justification in the lint config"
                ),
            )


# ---------------------------------------------------------------------------
# Exception hygiene
# ---------------------------------------------------------------------------
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


@register_rule
class ExceptionHygieneRule(Rule):
    id = "except-hygiene"
    summary = "broad except must attribute or re-raise, never drop the error"
    rationale = """
A worker error swallowed by ``except Exception: pass`` turns a failing
shard into silently-missing data — PR 6 had to fix exactly this in the
sharded dispatcher (worker exceptions are now propagated with their
original traceback, or attributed to a shard in the ``RunReport``).  A
broad handler is legal only if it re-raises or *uses* the bound
exception (logging it into a report counts); a bare ``except:`` is never
legal — it eats ``KeyboardInterrupt``.
"""
    bad_example = """
try:
    value = worker(payload)
except Exception:
    value = None                       # error evaporates
"""
    good_example = """
try:
    value = worker(payload)
except Exception as error:
    report.attribute(shard, error)     # or: raise ShardExecutionError(...) from error
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message="bare `except:` — it even eats KeyboardInterrupt; "
                    "catch the narrowest type that can actually occur",
                )
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_error(node):
                continue
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule=self.id,
                message=(
                    "broad `except "
                    + (ast.unparse(node.type) if hasattr(ast, "unparse") else "Exception")
                    + "` drops the error — re-raise, or bind it and attribute "
                    "it (report/RunReport/log)"
                ),
            )

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names = []
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        for node in nodes:
            if isinstance(node, ast.Name):
                names.append(node.id)
        return any(name in _BROAD_EXCEPTIONS for name in names)

    @staticmethod
    def _handles_error(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if (
                handler.name is not None
                and isinstance(node, ast.Name)
                and node.id == handler.name
                and isinstance(node.ctx, ast.Load)
            ):
                return True
        return False


# ---------------------------------------------------------------------------
# Registry drift
# ---------------------------------------------------------------------------
@register_rule
class RegistryDriftRule(Rule):
    id = "registry-drift"
    summary = "every registered query kind needs a backend, and vice versa"
    rationale = """
A query kind is wired in two registries: ``register_query_kind`` makes it
parseable from JSON, ``register_backend`` makes it answerable.  A kind
registered in only one of them parses-but-never-answers (or answers a
kind no file can express) — and nothing fails until a user submits one.
The self-lint test additionally asserts the runtime registries agree
after import, so dynamically-registered kinds are held to the same bar.
"""
    bad_example = """
@register_query_kind
@dataclass(frozen=True)
class LatencyQuery(Query):
    kind = "latency"                   # parseable...
# ...but no @register_backend("latency") anywhere: never answerable
"""
    good_example = """
@register_backend("latency")
def latency_backend(engine, queries, policy): ...
"""

    def check_project(self, project: Project, config) -> Iterator[Finding]:
        kinds: Dict[str, Tuple[FileContext, ast.ClassDef]] = {}
        backends: Dict[str, Tuple[FileContext, ast.AST]] = {}
        saw_kind_registry = saw_backend_registry = False
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and "register_query_kind" in set(
                    decorator_names(node)
                ):
                    saw_kind_registry = True
                    kind = self._class_kind(node)
                    if kind:
                        kinds[kind] = (ctx, node)
                for kind, deco in self._backend_registrations(node):
                    saw_backend_registry = True
                    backends[kind] = (ctx, deco)
        # Either registry absent from the lint scope (single-file runs):
        # nothing meaningful to cross-check.
        if not (saw_kind_registry and saw_backend_registry):
            return
        for kind, (ctx, node) in sorted(kinds.items()):
            if kind not in backends:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=f"query kind {kind!r} has no register_backend({kind!r}) "
                    "— it parses from JSON but can never be answered",
                )
        for kind, (ctx, node) in sorted(backends.items()):
            if kind not in kinds:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=f"backend registered for kind {kind!r} but no "
                    "register_query_kind class declares it — unreachable from "
                    "query files",
                )

    @staticmethod
    def _class_kind(node: ast.ClassDef) -> Optional[str]:
        for item in node.body:
            target = None
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                target, value = item.target.id, item.value
            elif isinstance(item, ast.Assign) and len(item.targets) == 1 and isinstance(
                item.targets[0], ast.Name
            ):
                target, value = item.targets[0].id, item.value
            if target == "kind" and isinstance(value, ast.Constant):
                return str(value.value)
        return None

    @staticmethod
    def _backend_registrations(node: ast.AST):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        for deco in node.decorator_list:
            if (
                isinstance(deco, ast.Call)
                and call_name(deco) == "register_backend"
                and deco.args
                and isinstance(deco.args[0], ast.Constant)
            ):
                yield str(deco.args[0].value), deco
