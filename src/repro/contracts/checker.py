"""Lint driver: walk sources, run rules, apply allowlists and baselines.

Two-pass by design: every file is parsed first (so cross-file rules like
``registry-drift`` and ``cache-key-coverage`` see the whole project),
then each rule runs over the :class:`~repro.contracts.core.Project`.
Findings are filtered through the config's path allowlists and inline
``# repro: allow[rule-id]`` suppressions, and optionally compared against
a committed baseline so only *new* violations fail CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.contracts.config import DEFAULT_CONFIG, LintConfig, path_matches
from repro.contracts.core import FileContext, Finding, Project, registered_rules
from repro.errors import ReproError


class ContractViolationError(ReproError, RuntimeError):
    """Raised by callers that want new findings to be fatal (pre-commit)."""


@dataclass(frozen=True)
class LintResult:
    """Findings of one lint run, split against the baseline (if any)."""

    findings: Tuple[Finding, ...]
    new: Tuple[Finding, ...]
    baselined: Tuple[Finding, ...]
    #: Baseline entries no current finding matches — fixed violations whose
    #: baseline rows should be deleted (kept non-fatal: stale entries are
    #: hygiene, not regressions).
    stale_baseline: Tuple[Tuple[str, str, str], ...] = ()
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.new


def _collect_files(paths: Sequence[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def _package_base(root: Path) -> Path:
    """First ancestor that is not itself a Python package.

    Reported paths stay anchored at the package root (``repro/engine/...``)
    no matter how deep the lint was invoked, so the config's ``*repro/...``
    allowlist patterns match identically for ``lint src/repro`` and
    ``lint src/repro/engine``.
    """
    base = root.resolve()
    while (base / "__init__.py").exists():
        base = base.parent
    return base


def _relative(path: Path, roots: Sequence[Path]) -> str:
    for root in roots:
        base = _package_base(root if root.is_dir() else root.parent)
        try:
            return path.resolve().relative_to(base).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def lint_sources(
    sources: Dict[str, str],
    *,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint in-memory sources (path -> text).  The test-suite front door."""
    contexts: List[FileContext] = []
    findings: List[Finding] = []
    for path, text in sorted(sources.items()):
        if path_matches(path, config.exclude):
            continue
        try:
            contexts.append(FileContext.from_source(path, text))
        except SyntaxError as error:
            findings.append(
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    rule="parse-error",
                    message=f"file does not parse: {error.msg}",
                )
            )
    project = Project(contexts)
    by_path = project.by_path()
    wanted = None if rules is None else set(rules)
    for rule_id, rule in sorted(registered_rules().items()):
        if wanted is not None and rule_id not in wanted:
            continue
        for finding in rule.check_project(project, config):
            if config.allowed(rule_id, finding.path):
                continue
            ctx = by_path.get(finding.path)
            if ctx is not None and ctx.is_suppressed(finding):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings


def lint_paths(
    paths: Sequence[Path | str],
    *,
    config: LintConfig = DEFAULT_CONFIG,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Path | str] = None,
) -> LintResult:
    """Lint files/directories; compare against ``baseline`` when given."""
    roots = [Path(p) for p in paths]
    files = _collect_files(roots)
    sources: Dict[str, str] = {}
    for file_path in files:
        rel = _relative(file_path, roots)
        sources[rel] = file_path.read_text(encoding="utf-8")
    findings = lint_sources(sources, config=config, rules=rules)
    new, baselined, stale = split_against_baseline(
        findings, load_baseline(baseline) if baseline is not None else []
    )
    return LintResult(
        findings=tuple(findings),
        new=tuple(new),
        baselined=tuple(baselined),
        stale_baseline=tuple(stale),
        files_checked=len(sources),
    )


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------
BASELINE_VERSION = 1


def load_baseline(path: Path | str) -> List[Tuple[str, str, str]]:
    """Read a committed baseline file into (path, rule, message) keys."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ContractViolationError(
            f"baseline {path} is not a version-{BASELINE_VERSION} contracts baseline"
        )
    keys = []
    for row in data.get("findings", []):
        keys.append((str(row["path"]), str(row["rule"]), str(row["message"])))
    return keys


def save_baseline(findings: Iterable[Finding], path: Path | str) -> None:
    """Write the current findings as the new committed baseline.

    Every entry should carry an inline justification in review — a
    baseline is a debt ledger, not an allowlist.
    """
    rows = [
        {"path": f.path, "rule": f.rule, "message": f.message}
        for f in sorted(findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": rows}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_against_baseline(
    findings: Sequence[Finding], baseline_keys: Sequence[Tuple[str, str, str]]
) -> Tuple[List[Finding], List[Finding], List[Tuple[str, str, str]]]:
    """Partition findings into (new, baselined); also return stale entries.

    Matching is by multiset of line-independent keys: two identical
    violations in one file need two baseline entries, so adding a second
    copy of a baselined bug still fails.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for key in baseline_keys:
        budget[key] = budget.get(key, 0) + 1
    new: List[Finding] = []
    baselined: List[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            baselined.append(finding)
        else:
            new.append(finding)
    stale = [key for key, count in budget.items() for _ in range(count)]
    return new, baselined, sorted(stale)
