"""Determinism rules: RNG discipline, wall-clock hygiene, iteration order.

These three families guard the seed-stream contracts every PR leans on:
answers must be a pure function of ``(inputs, seed)``, so library code may
neither mint its own entropy, nor read clocks into results, nor let
hash-ordering leak into serialized/hashed output.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.contracts.core import FileContext, Finding, Project, Rule, register_rule

#: Qualified-name prefixes whose *calls* construct or advance ambient
#: randomness.  ``numpy.random.*`` covers both the modern constructors
#: (default_rng, Generator, SeedSequence, PCG64, ...) and the legacy
#: module-level sampling functions (rand, randint, shuffle, ...), all of
#: which either mint entropy or mutate hidden global state.
_RNG_PREFIXES = ("numpy.random.", "random.", "secrets.")

#: Wall-clock / ambient-entropy reads banned in deterministic paths.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
    }
)


@register_rule
class RngDisciplineRule(Rule):
    id = "rng-discipline"
    summary = "no ambient RNG construction outside repro._rng and declared boundaries"
    rationale = """
Every estimator, simulator and injector draws from a stream the caller
threads in (an ``rng=``/``seed=`` parameter, ultimately a
``SeedSequence.spawn`` child — the PR 3 contract that makes campaign
answers invariant to worker count).  A stray ``np.random.default_rng()``
or ``random.random()`` inside library code silently re-seeds from OS
entropy, and the bit-identity tests can't see it until someone writes the
exact regression (PR 6's review found one in engine.chaos).  Construction
is legal only in ``repro._rng`` and the declared shard/trajectory stream
boundaries (``analysis/kernels.py``, ``markov/simulate.py``).
"""
    bad_example = """
def sample(spec, trials):
    rng = np.random.default_rng()      # ambient entropy
    return rng.random(trials)
"""
    good_example = """
def sample(spec, trials, *, rng):      # caller threads the stream
    return rng.random(trials)
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_name(node.func)
            if name is None:
                continue
            if any(
                name.startswith(prefix) or name == prefix.rstrip(".")
                for prefix in _RNG_PREFIXES
            ):
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"ambient RNG use `{name}` — construct streams in "
                        "repro._rng / a declared boundary module and thread "
                        "an rng=/seed= parameter instead"
                    ),
                )


@register_rule
class WallClockRule(Rule):
    id = "wall-clock"
    summary = "no wall-clock or ambient-entropy reads in deterministic paths"
    rationale = """
Estimator, simulator and injection code must produce the same answer for
the same ``(inputs, seed)`` on every run and every host.  ``time.time``,
``datetime.now``, ``perf_counter``, ``os.urandom`` and ``uuid`` reads
break that the moment their value flows into a result, a cache key or a
trace.  Supervision genuinely needs deadlines (``engine.runtime``) and
provenance records wall time (``Provenance.seconds``) — those modules are
declared clock boundaries in the config; everywhere else sim-time comes
from the event scheduler, not the host clock.
"""
    bad_example = """
def audit(trace):
    stamp = time.time()                # host clock into a result
    return Verdict(at=stamp, ok=check(trace))
"""
    good_example = """
def audit(trace, now):                 # sim-time threaded by the scheduler
    return Verdict(at=now, ok=check(trace))
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.qualified_name(node.func)
            if name in _CLOCK_CALLS:
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"wall-clock/entropy read `{name}` in a deterministic "
                        "path — thread sim-time/identity in, or declare the "
                        "module a clock boundary in the lint config"
                    ),
                )


#: Consumers whose output does not depend on input order: iterating an
#: unordered collection directly into one of these is safe.
_ORDER_NEUTRAL_CALLS = frozenset(
    {"sorted", "set", "frozenset", "sum", "min", "max", "len", "any", "all"}
)


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "values", "items")
        and not node.args
        and not node.keywords
    )


@register_rule
class IterationOrderRule(Rule):
    id = "iter-order"
    summary = "no unsorted set/dict-view iteration feeding serialized or hashed output"
    rationale = """
Set iteration order depends on insertion history and — for strings — on
the per-process hash seed, so a set iterated into a ``to_dict`` payload,
a ``cache_key`` tuple or a JSON file can differ between two runs of the
same seed.  Sets are flagged everywhere (wrap in ``sorted()`` or consume
order-neutrally); raw ``.keys()/.values()/.items()`` iteration is flagged
inside codec methods (``to_dict``/``cache_key``/...), where insertion
order is an accident of construction rather than a declared contract —
``_freeze`` in injection/plan.py shows the sorted idiom.
"""
    bad_example = """
def cache_key(self):
    return tuple(self.members)         # self.members is a set
"""
    good_example = """
def cache_key(self):
    return tuple(sorted(self.members))
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        neutral = self._order_neutral_nodes(ctx.tree)
        codec_bodies = self._codec_function_nodes(ctx.tree, config)
        for scope_node, in_codec in self._iteration_sites(ctx.tree, codec_bodies):
            for iter_node in self._iter_exprs(scope_node):
                if id(iter_node) in neutral:
                    continue
                if _is_set_expr(iter_node):
                    what = "a set"
                elif in_codec and _is_dict_view(iter_node):
                    what = f"dict .{iter_node.func.attr}()"
                else:
                    continue
                yield Finding(
                    path=ctx.path,
                    line=iter_node.lineno,
                    col=iter_node.col_offset,
                    rule=self.id,
                    message=(
                        f"iterating {what} without sorted() "
                        + (
                            "inside a codec method — ordering leaks into "
                            "serialized/hashed output"
                            if in_codec
                            else "— set order is hash/insertion dependent; "
                            "wrap in sorted() or consume order-neutrally"
                        )
                    ),
                )

    @staticmethod
    def _codec_function_nodes(tree: ast.Module, config) -> Set[int]:
        names = set(config.codec_methods)
        return {
            id(node)
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in names
        }

    @staticmethod
    def _iteration_sites(tree, codec_bodies):
        """Yield (for/comprehension node, inside-codec-method flag)."""

        def walk(node, in_codec):
            here = in_codec or id(node) in codec_bodies
            if isinstance(node, (ast.For, ast.AsyncFor, ast.comprehension)):
                yield node, here
            for child in ast.iter_child_nodes(node):
                yield from walk(child, here)

        yield from walk(tree, False)

    @staticmethod
    def _iter_exprs(node):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            yield node.iter
        elif isinstance(node, ast.comprehension):
            yield node.iter

    @staticmethod
    def _order_neutral_nodes(tree: ast.Module) -> Set[int]:
        """ids of iterable expressions consumed order-neutrally.

        ``sorted(x)`` neutralizes ``x``; ``sorted(f(v) for v in x)``
        neutralizes the generator *and* its source iterables.
        """
        neutral: Set[int] = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)):
                continue
            if node.func.id not in _ORDER_NEUTRAL_CALLS:
                continue
            for arg in node.args:
                neutral.add(id(arg))
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    for gen in arg.generators:
                        neutral.add(id(gen.iter))
        return neutral
