"""Concurrency rules: lockset inference, lock ordering, asyncio hygiene,
journal durability.

PR 8 fixed three real concurrency bugs by hand — an unguarded LRU memo
in the engine, a journal truncation race, torn-line handling — and then
added ``repro.serve``, a threaded+asyncio daemon that is the exact code
shape those bugs breed in.  These four families catch that bug class
mechanically:

- ``lock-guard``: infer, per class, which ``self.*`` attributes the
  class's own lock discipline protects (attributes *written* while a
  lock is held), then flag accesses on paths where no protecting lock is
  held — including through private helper methods that are only ever
  called under the lock.
- ``lock-order``: build a project-wide acquired-while-holding graph over
  named locks and report cycles as potential deadlocks.
- ``async-hygiene``: inside ``async def``, ban blocking calls
  (``time.sleep``, ``os.fsync``, direct engine runs, file I/O,
  ``subprocess``) unless routed through ``run_in_executor`` /
  ``asyncio.to_thread``, and flag coroutine calls and ``create_task``
  results whose value is silently discarded.
- ``journal-durability``: in checkpoint/journal modules, every write on
  a journal handle must be followed by ``os.fsync`` on the same handle
  before the guarding lock is released (``flush()`` is not durability).

All analysis is lexical ``with``-block lockset tracking from
:func:`repro.contracts.core.walk_lock_regions` — exact for the
``with lock:`` discipline this repository uses; manual
``acquire``/``release`` pairs are out of scope by design.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.contracts.config import path_matches
from repro.contracts.core import (
    FileContext,
    Finding,
    LockToken,
    Project,
    Rule,
    call_name,
    is_lock_constructor_call,
    register_rule,
    walk_lock_regions,
    with_lock_tokens,
)

#: Construction-phase methods: no other thread can hold a reference yet,
#: so unguarded writes there are neither lock evidence nor violations.
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__", "__del__"})

#: Container-mutating method names: ``self.attr.append(...)`` writes the
#: attribute's state just as surely as ``self.attr = ...`` rebinds it.
_MUTATOR_CALLS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "move_to_end",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "setdefault",
        "sort",
        "update",
    }
)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _class_lock_attrs(cls: ast.ClassDef) -> frozenset:
    """Attributes the class assigns a lock constructor to (``self.guard =
    threading.Lock()``) — recognised as locks even with unconventional
    names."""
    attrs: Set[str] = set()
    for node in ast.walk(cls):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets, value = list(node.targets), node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not is_lock_constructor_call(value):
            continue
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                attrs.add(attr)
    return frozenset(attrs)


def _methods_of(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


class _MethodFacts:
    """Lock-relative events observed in one method body."""

    def __init__(self) -> None:
        #: (attr, held, node) for every ``self.X`` occurrence.
        self.accesses: List[Tuple[str, frozenset, ast.AST]] = []
        #: (attr, held, node) for rebinds, item-stores and mutator calls.
        self.writes: List[Tuple[str, frozenset, ast.AST]] = []
        #: (callee, held) for every ``self.m(...)`` call.
        self.self_calls: List[Tuple[str, frozenset]] = []


def _scan_method(method: ast.AST, lock_attrs: frozenset) -> _MethodFacts:
    facts = _MethodFacts()
    for node, held in walk_lock_regions(method, lock_attrs):
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr in _MUTATOR_CALLS:
                    target = _self_attr(func.value)
                    if target is not None:
                        facts.writes.append((target, held, node))
                if isinstance(func.value, ast.Name) and func.value.id == "self":
                    facts.self_calls.append((func.attr, held))
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            target = _self_attr(node.value)
            if target is not None:
                facts.writes.append((target, held, node))
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None:
                facts.accesses.append((attr, held, node))
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    facts.writes.append((attr, held, node))
    return facts


@register_rule
class LockGuardRule(Rule):
    id = "lock-guard"
    summary = "attributes written under a lock must never be touched without it"
    rationale = """
If a class writes ``self.attr`` inside ``with self._lock:`` anywhere, the
lock *is* the discipline for that attribute — an access on any lock-free
path races the guarded writers.  This is exactly the pre-PR-8 engine
memo bug (``move_to_end`` on an LRU dict another thread was evicting
from) and the journal ``_stale`` flag flipped outside the journal lock.
The rule infers the guarded set from writes (reads of config-like
attributes under a lock don't make them shared state) and credits
private helpers that are only ever called with the lock held — the
``_load_locked`` idiom needs no annotation.  Construction
(``__init__``-family methods) is exempt: no other thread has a
reference yet.
"""
    bad_example = """
class Cache:
    def put(self, key, value):
        with self._lock:
            self._entries[key] = value   # guarded write: _entries is shared

    def get(self, key):
        return self._entries.get(key)    # lock-free read races put()
"""
    good_example = """
    def get(self, key):
        with self._lock:
            return self._entries.get(key)
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = _class_lock_attrs(cls)
        methods = _methods_of(cls)
        facts = {
            name: _scan_method(method, lock_attrs)
            for name, method in methods.items()
            if name not in _INIT_METHODS
        }

        # Held-only inference for private helpers: a ``_name`` method whose
        # intra-class call sites all hold a lock inherits the intersection
        # of those locksets — the ``_load_locked`` idiom.  Public methods
        # are callable from outside the class, so they inherit nothing.
        call_sites: Dict[str, List[Tuple[str, frozenset]]] = {}
        for caller, fact in facts.items():
            for callee, held in fact.self_calls:
                call_sites.setdefault(callee, []).append((caller, held))
        entry_cache: Dict[str, frozenset] = {}

        def entry_held(name: str, stack: frozenset = frozenset()) -> frozenset:
            if name in entry_cache:
                return entry_cache[name]
            sites = call_sites.get(name, ())
            if (
                not sites
                or name in stack
                or not name.startswith("_")
                or name.startswith("__")
            ):
                return frozenset()
            held_sets = [
                held | entry_held(caller, stack | {name}) for caller, held in sites
            ]
            result = frozenset.intersection(*held_sets)
            entry_cache[name] = result
            return result

        # Guarded set: attributes written while at least one lock is held.
        guard_locks: Dict[str, Set[LockToken]] = {}
        for name, fact in facts.items():
            inherited = entry_held(name)
            for attr, held, _node in fact.writes:
                effective = held | inherited
                if effective and attr not in lock_attrs:
                    guard_locks.setdefault(attr, set()).update(effective)

        for name in sorted(facts):
            inherited = entry_held(name)
            for attr, held, node in facts[name].accesses:
                locks = guard_locks.get(attr)
                if not locks:
                    continue
                if (held | inherited) & locks:
                    continue
                lock_names = ", ".join(
                    sorted(token.render() for token in locks)
                )
                yield Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.id,
                    message=(
                        f"`self.{attr}` is written under {lock_names} elsewhere "
                        f"in `{cls.name}` but accessed here with no lock held — "
                        "take the lock, or justify the lock-free path inline"
                    ),
                )


# ---------------------------------------------------------------------------
# Lock-order deadlock detection
# ---------------------------------------------------------------------------
def _qualify(token: LockToken, class_name: Optional[str]) -> str:
    """Project-wide identity of a lock token.

    ``self`` locks are per-class (``Engine._lock``); module-level names
    and lock-factory calls merge by bare name across files — locks are
    module-private in practice, and merging aliases of a shared lock is
    the conservative direction for deadlock detection.
    """
    if token.kind == "self":
        return f"{class_name}.{token.name}" if class_name else f"self.{token.name}"
    if token.kind == "call":
        return f"{token.name}()"
    return token.name


class _Scope:
    """One function/method: its acquisitions, edges and outgoing calls."""

    def __init__(self, key: str, ctx: FileContext, class_name: Optional[str]):
        self.key = key
        self.ctx = ctx
        self.class_name = class_name
        self.acquires: Set[str] = set()
        #: (held_lock, acquired_lock, site) observed directly in the body.
        self.edges: List[Tuple[str, str, ast.AST]] = []
        #: (callee_key, held_locks, site) for resolvable calls.
        self.calls: List[Tuple[str, frozenset, ast.AST]] = []


@register_rule
class LockOrderRule(Rule):
    id = "lock-order"
    summary = "locks must be acquired in one global order — cycles can deadlock"
    rationale = """
Two threads taking the same pair of locks in opposite orders deadlock the
first time their schedules interleave badly — and nothing fails in
single-threaded tests.  The rule builds a project-wide
acquired-while-holding graph (``with b:`` inside ``with a:`` adds the
edge ``a -> b``, including through calls into same-class methods and
same-file functions) and reports every cycle.  Self-edges are ignored:
re-entering the same lock is the documented ``RLock`` idiom, not an
ordering bug.
"""
    bad_example = """
def transfer(src, dst):
    with src_lock:
        with dst_lock: ...             # thread 1: src -> dst

def audit():
    with dst_lock:
        with src_lock: ...             # thread 2: dst -> src — deadlock
"""
    good_example = """
def transfer(src, dst):
    first, second = sorted([src_lock, dst_lock], key=id)
    with first:
        with second: ...               # one global order everywhere
"""

    def check_project(self, project: Project, config) -> Iterator[Finding]:
        scopes = self._collect_scopes(project)
        transitive_cache: Dict[str, Set[str]] = {}

        def transitive(key: str, stack: frozenset = frozenset()) -> Set[str]:
            if key in transitive_cache:
                return transitive_cache[key]
            if key in stack or key not in scopes:
                return set()
            scope = scopes[key]
            acquired = set(scope.acquires)
            for callee, _held, _site in scope.calls:
                acquired |= transitive(callee, stack | {key})
            transitive_cache[key] = acquired
            return acquired

        graph: Dict[str, Set[str]] = {}
        sites: Dict[Tuple[str, str], Tuple[FileContext, ast.AST]] = {}

        def add_edge(a: str, b: str, ctx: FileContext, node: ast.AST) -> None:
            if a == b:
                return  # RLock re-entry, not an ordering bug
            graph.setdefault(a, set()).add(b)
            graph.setdefault(b, set())
            sites.setdefault((a, b), (ctx, node))

        for key in sorted(scopes):
            scope = scopes[key]
            for a, b, node in scope.edges:
                add_edge(a, b, scope.ctx, node)
            for callee, held, node in scope.calls:
                if not held:
                    continue
                for acquired in sorted(transitive(callee)):
                    for holder in sorted(held):
                        add_edge(holder, acquired, scope.ctx, node)

        for component in self._cycles(graph):
            cycle = sorted(component)
            edge = min(
                (
                    (a, b)
                    for (a, b) in sites
                    if a in component and b in component
                ),
                key=lambda pair: (
                    sites[pair][0].path,
                    sites[pair][1].lineno,
                    pair,
                ),
            )
            ctx, node = sites[edge]
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule=self.id,
                message=(
                    "potential deadlock: locks {"
                    + ", ".join(cycle)
                    + "} are acquired in inconsistent order (here `"
                    + edge[1]
                    + "` is taken while holding `"
                    + edge[0]
                    + "`; the opposite order exists elsewhere)"
                ),
            )

    def _collect_scopes(self, project: Project) -> Dict[str, _Scope]:
        scopes: Dict[str, _Scope] = {}
        for ctx in project.files:
            class_of: Dict[int, ast.ClassDef] = {}
            class_locks: Dict[int, frozenset] = {}
            for cls in ast.walk(ctx.tree):
                if isinstance(cls, ast.ClassDef):
                    class_locks[id(cls)] = _class_lock_attrs(cls)
                    for item in cls.body:
                        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                            class_of[id(item)] = cls
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                cls = class_of.get(id(node))
                class_name = cls.name if cls is not None else None
                lock_attrs = (
                    class_locks[id(cls)] if cls is not None else frozenset()
                )
                key = self._scope_key(ctx.path, class_name, node.name)
                scope = _Scope(key, ctx, class_name)
                self._scan_scope(scope, node, lock_attrs)
                scopes[key] = scope
        return scopes

    @staticmethod
    def _scope_key(path: str, class_name: Optional[str], func: str) -> str:
        middle = f"{class_name}." if class_name else ""
        return f"{path}::{middle}{func}"

    def _scan_scope(
        self, scope: _Scope, func: ast.AST, lock_attrs: frozenset
    ) -> None:
        for node, held in walk_lock_regions(func, lock_attrs):
            held_q = frozenset(_qualify(t, scope.class_name) for t in held)
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for token in with_lock_tokens(node, lock_attrs):
                    acquired = _qualify(token, scope.class_name)
                    scope.acquires.add(acquired)
                    for holder in sorted(held_q):
                        scope.edges.append((holder, acquired, node))
            elif isinstance(node, ast.Call):
                callee = self._resolve_call(scope, node)
                if callee is not None:
                    scope.calls.append((callee, held_q, node))

    def _resolve_call(self, scope: _Scope, call: ast.Call) -> Optional[str]:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and scope.class_name is not None
        ):
            return self._scope_key(scope.ctx.path, scope.class_name, func.attr)
        if isinstance(func, ast.Name):
            return self._scope_key(scope.ctx.path, None, func.id)
        return None

    @staticmethod
    def _cycles(graph: Dict[str, Set[str]]) -> List[Set[str]]:
        """Strongly connected components of size >= 2 (Tarjan)."""
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[Set[str]] = []

        def strongconnect(node: str) -> None:
            index[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ not in index:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index[succ])
            if low[node] == index[node]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                if len(component) >= 2:
                    components.append(component)

        for node in sorted(graph):
            if node not in index:
                strongconnect(node)
        return components


# ---------------------------------------------------------------------------
# Asyncio hygiene
# ---------------------------------------------------------------------------
#: Dotted calls that block the event loop outright.
_BLOCKING_QUALIFIED = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.system",
        "os.wait",
        "os.waitpid",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
    }
)

#: Path/file convenience methods — each one is synchronous disk I/O.
_BLOCKING_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

#: Engine entry points: a direct call runs a full batch computation on
#: the event loop thread.
_ENGINE_RUN_METHODS = frozenset({"run", "run_query", "run_queries"})

_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Nodes of a function's own body — nested ``def``/``lambda``/``class``
    bodies excluded (they may legitimately run in an executor thread)."""

    def visit(node: ast.AST) -> Iterator[ast.AST]:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return
        yield node
        for child in ast.iter_child_nodes(node):
            yield from visit(child)

    for stmt in getattr(func, "body", ()):
        yield from visit(stmt)


def _engineish(expr: ast.AST) -> bool:
    if isinstance(expr, ast.Name):
        return "engine" in expr.id.lower()
    if isinstance(expr, ast.Attribute):
        return "engine" in expr.attr.lower()
    return False


@register_rule
class AsyncHygieneRule(Rule):
    id = "async-hygiene"
    summary = "async def must not block the loop or drop coroutines/tasks"
    rationale = """
One blocking call inside ``async def`` stalls *every* request the daemon
is serving — the event loop has exactly one thread.  ``time.sleep``,
``os.fsync``, file I/O, ``subprocess`` and direct engine runs belong in
``asyncio.to_thread``/``run_in_executor`` (handing the *function* to the
executor, never calling it inline).  The rule also flags coroutine calls
whose result is discarded (the coroutine never runs — Python only warns
at garbage-collection time) and ``create_task``/``ensure_future``
results that are neither stored nor awaited (the task is eligible for GC
mid-flight and its exception is silently dropped).  Nested ``def``\\ s
are exempt: they typically *are* the executor payload.
"""
    bad_example = """
async def handle(self, request):
    answers = self.engine.run(queries)     # blocks the whole event loop
    asyncio.create_task(self._audit())     # task dropped: GC + lost errors
"""
    good_example = """
async def handle(self, request):
    answers = await asyncio.to_thread(self.engine.run, queries)
    self._audit_task = asyncio.create_task(self._audit())
"""

    def check_project(self, project: Project, config) -> Iterator[Finding]:
        # A bare name is "a coroutine function" only if every definition of
        # that name in the project is async — `thread.start()` stays legal
        # even though an unrelated async `start` exists, as long as a sync
        # `start` exists too.
        async_names: Set[str] = set()
        sync_names: Set[str] = set()
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    async_names.add(node.name)
                elif isinstance(node, ast.FunctionDef):
                    sync_names.add(node.name)
        coroutine_names = async_names - sync_names
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.AsyncFunctionDef):
                    yield from self._check_async_def(ctx, node, coroutine_names)

    def _check_async_def(
        self, ctx: FileContext, func: ast.AsyncFunctionDef, coroutine_names: Set[str]
    ) -> Iterator[Finding]:
        for node in _own_nodes(func):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                yield from self._check_discard(ctx, node.value, coroutine_names)
            if isinstance(node, ast.Call):
                yield from self._check_blocking(ctx, node)

    def _check_blocking(self, ctx: FileContext, call: ast.Call) -> Iterator[Finding]:
        qualified = ctx.qualified_name(call.func)
        reason = None
        if qualified in _BLOCKING_QUALIFIED:
            reason = f"`{qualified}` blocks the event loop"
        elif isinstance(call.func, ast.Name) and call.func.id == "open":
            reason = "`open()` is synchronous file I/O"
        elif isinstance(call.func, ast.Attribute):
            if call.func.attr in _BLOCKING_IO_METHODS:
                reason = f"`.{call.func.attr}()` is synchronous file I/O"
            elif call.func.attr in _ENGINE_RUN_METHODS and _engineish(call.func.value):
                reason = (
                    f"direct `.{call.func.attr}()` on an engine runs a full "
                    "batch computation on the event loop thread"
                )
        if reason is None:
            return
        yield Finding(
            path=ctx.path,
            line=call.lineno,
            col=call.col_offset,
            rule=self.id,
            message=(
                f"{reason} inside `async def` — route it through "
                "asyncio.to_thread/run_in_executor"
            ),
        )

    def _check_discard(
        self, ctx: FileContext, call: ast.Call, coroutine_names: Set[str]
    ) -> Iterator[Finding]:
        name = call_name(call)
        if name in _TASK_SPAWNERS:
            yield Finding(
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                rule=self.id,
                message=(
                    f"`{name}(...)` result is discarded — the task can be "
                    "garbage-collected mid-flight and its exception is lost; "
                    "store the task and handle/await it"
                ),
            )
        elif name in coroutine_names:
            yield Finding(
                path=ctx.path,
                line=call.lineno,
                col=call.col_offset,
                rule=self.id,
                message=(
                    f"coroutine `{name}(...)` is neither awaited nor stored — "
                    "it will never run"
                ),
            )


# ---------------------------------------------------------------------------
# Journal durability
# ---------------------------------------------------------------------------
def _is_open_call(expr: ast.AST, ctx: FileContext) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    if isinstance(expr.func, ast.Name) and expr.func.id == "open":
        return True
    if isinstance(expr.func, ast.Attribute) and expr.func.attr == "open":
        return True
    return ctx.qualified_name(expr.func) == "os.open"


def _fsync_key(call: ast.Call) -> Optional[str]:
    """``os.fsync(fd)`` / ``os.fsync(handle.fileno())`` -> handle name."""
    if not call.args:
        return None
    arg = call.args[0]
    if isinstance(arg, ast.Name):
        return arg.id
    if (
        isinstance(arg, ast.Call)
        and isinstance(arg.func, ast.Attribute)
        and arg.func.attr == "fileno"
        and isinstance(arg.func.value, ast.Name)
    ):
        return arg.func.value.id
    return None


@register_rule
class JournalDurabilityRule(Rule):
    id = "journal-durability"
    summary = "journal writes must fsync before the guarding lock is released"
    rationale = """
The crash-recovery contract (PR 6/8) is "a crash loses at most the shard
being recorded" — which holds only if every journal ``write`` reaches
the disk before the writer drops the journal lock and lets a reader (or
a resuming daemon) believe the record is durable.  ``flush()`` moves
bytes to the OS page cache, not to disk; only ``os.fsync`` on the same
descriptor counts.  The rule matches write/fsync pairs per handle inside
each lock region (or the whole function when the path is lock-free) in
the modules declared as journal/checkpoint paths in the lint config.
"""
    bad_example = """
def record(self, entry):
    with _journal_lock(self.path):
        fd = os.open(self.path, os.O_APPEND | os.O_WRONLY)
        os.write(fd, entry)
        os.close(fd)                   # lock released, bytes still in cache
"""
    good_example = """
        os.write(fd, entry)
        os.fsync(fd)                   # durable before anyone can read it
        os.close(fd)
"""

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        patterns = tuple(getattr(config, "journal_paths", ()))
        if not path_matches(ctx.path, patterns):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, node)

    def _check_function(self, ctx: FileContext, func: ast.AST) -> Iterator[Finding]:
        events = list(walk_lock_regions(func))
        handles: Set[str] = set()
        for node, _held in events:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if _is_open_call(item.context_expr, ctx) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        handles.add(item.optional_vars.id)
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_open_call(node.value, ctx)
            ):
                handles.add(node.targets[0].id)

        writes: List[Tuple[str, frozenset, ast.Call]] = []
        fsyncs: List[Tuple[str, frozenset, int]] = []
        for node, held in events:
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.qualified_name(node.func)
            if qualified == "os.write" and node.args and isinstance(
                node.args[0], ast.Name
            ):
                writes.append((node.args[0].id, held, node))
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "write"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in handles
            ):
                writes.append((node.func.value.id, held, node))
            elif qualified in ("os.fsync", "os.fdatasync"):
                key = _fsync_key(node)
                if key is not None:
                    fsyncs.append((key, held, node.lineno))

        for handle, held, node in writes:
            durable = any(
                key == handle and held <= fsync_held and lineno >= node.lineno
                for key, fsync_held, lineno in fsyncs
            )
            if durable:
                continue
            boundary = (
                "the guarding lock is released" if held else "the function returns"
            )
            yield Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                rule=self.id,
                message=(
                    f"journal write via `{handle}` has no os.fsync on the same "
                    f"handle before {boundary} — a crash can lose a record the "
                    "journal already claims to hold"
                ),
            )
