"""Text, JSON and SARIF reporters for lint results.

The JSON schema is versioned and covered by a stability test — downstream
tooling (pre-commit hooks, CI annotations) may rely on exactly these keys:

.. code-block:: json

    {
      "version": 1,
      "files_checked": 42,
      "counts": {"total": 3, "new": 1, "baselined": 2},
      "ok": false,
      "findings": [
        {"path": "...", "line": 7, "col": 4, "rule": "rng-discipline",
         "message": "...", "baselined": false}
      ],
      "stale_baseline": [{"path": "...", "rule": "...", "message": "..."}]
    }

:func:`render_sarif` emits SARIF 2.1.0 so CI platforms and editors can
ingest the same findings natively: one run, one ``reportingDescriptor``
per registered rule (id + summary + rationale), one ``result`` per
finding with ``baselineState`` distinguishing new (``"new"``) from
baselined (``"unchanged"``) findings.
"""

from __future__ import annotations

import json

from repro.contracts.checker import LintResult
from repro.contracts.core import registered_rules

REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    """Human-readable report: one line per new finding plus a summary."""
    lines = []
    baselined_keys = {id(f) for f in result.baselined}
    for finding in result.findings:
        if id(finding) in baselined_keys:
            if verbose:
                lines.append(f"{finding.render()} [baselined]")
            continue
        lines.append(finding.render())
    for path, rule, _message in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {path}: {rule} — violation fixed; "
            "remove it from the baseline file"
        )
    summary = (
        f"{len(result.new)} new finding(s), {len(result.baselined)} baselined, "
        f"{result.files_checked} file(s) checked"
    )
    lines.append(("FAIL: " if result.new else "ok: ") + summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report with the stable schema documented above."""
    baselined_ids = {id(f) for f in result.baselined}
    payload = {
        "version": REPORT_VERSION,
        "files_checked": result.files_checked,
        "counts": {
            "total": len(result.findings),
            "new": len(result.new),
            "baselined": len(result.baselined),
        },
        "ok": result.ok,
        "findings": [
            {**finding.to_dict(), "baselined": id(finding) in baselined_ids}
            for finding in result.findings
        ],
        "stale_baseline": [
            {"path": path, "rule": rule, "message": message}
            for path, rule, message in result.stale_baseline
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(result: LintResult) -> str:
    """SARIF 2.1.0 report for CI platforms and editor integrations.

    Every registered rule is described in the tool's driver (so viewers
    can show rationale without running ``--explain``); each finding maps
    to one ``result`` whose ``baselineState`` is ``"new"`` for findings
    that fail the run and ``"unchanged"`` for baselined debt.
    """
    rules = registered_rules()
    descriptors = [
        {
            "id": rule_id,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale.strip()},
            "defaultConfiguration": {"level": "error"},
        }
        for rule_id, rule in sorted(rules.items())
    ]
    baselined_ids = {id(f) for f in result.baselined}
    results = [
        {
            "ruleId": finding.rule,
            "level": "note" if id(finding) in baselined_ids else "error",
            "baselineState": (
                "unchanged" if id(finding) in baselined_ids else "new"
            ),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,  # SARIF is 1-based
                        },
                    }
                }
            ],
        }
        for finding in result.findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze lint",
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
