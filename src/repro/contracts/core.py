"""Core types of the contract checker: findings, rules, file/project context.

The checker is a plain :mod:`ast` pass — no new dependencies, no runtime
imports of the code under analysis.  Each :class:`Rule` walks parsed
sources and yields :class:`Finding`\\ s; the driver in
:mod:`repro.contracts.checker` applies the path-scoped allowlist
(:mod:`repro.contracts.config`), inline ``# repro: allow[rule-id]``
suppressions and an optional committed baseline before anything reaches a
reporter.

Rules carry their own documentation — ``rationale`` (why the contract
exists, pointing at the PR that motivated it) plus minimal
``bad_example``/``good_example`` snippets — so ``repro-analyze lint
--explain RULE-ID`` and baseline entries are self-explanatory.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar, Dict, Iterable, Iterator, List, Optional, Tuple

#: Inline suppression grammar: ``# repro: allow[rule-id]`` (comma-separated
#: ids; ``*`` allows every rule).  A suppression applies to findings on its
#: own line or, when written on a line of its own, to the line below.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One contract violation at a source location."""

    path: str  # posix path relative to the lint root
    line: int
    col: int
    rule: str
    message: str

    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-independent identity used for baseline matching.

        Unrelated edits move line numbers constantly; a baselined finding
        stays recognised as long as the file, rule and message hold.
        """
        return (self.path, self.rule, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, frozenset]:
    """Map 1-based line numbers to the rule ids allowed on that line."""
    allows: Dict[int, frozenset] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        ids = frozenset(part.strip() for part in match.group(1).split(",") if part.strip())
        if ids:
            allows[lineno] = ids
    return allows


@dataclass
class FileContext:
    """One parsed source file plus everything rules need to judge it."""

    path: str  # posix, relative to the lint root
    source: str
    tree: ast.Module
    suppressions: Dict[int, frozenset] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            suppressions=parse_suppressions(source),
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """Inline-allowed on the finding's line or the full-comment line above."""
        for lineno in (finding.line, finding.line - 1):
            ids = self.suppressions.get(lineno)
            if ids and (finding.rule in ids or "*" in ids):
                return True
        return False

    # -- import-alias resolution ------------------------------------------
    def import_aliases(self) -> Dict[str, str]:
        """Local name -> fully qualified name, from every import statement.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
        import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
        Relative imports resolve against nothing (level > 0 keeps the bare
        module path) — good enough for contract checks, which only care
        about absolute stdlib/numpy targets.
        """
        cached = getattr(self, "_aliases", None)
        if cached is not None:
            return cached
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    target = item.name if item.asname else item.name.split(".")[0]
                    aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    aliases[local] = f"{node.module}.{item.name}"
        self._aliases = aliases
        return aliases

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a Name/Attribute chain to a dotted absolute name.

        Returns ``None`` when the chain does not start at an imported
        module/object (e.g. a method on a local variable) — callers treat
        that as "not ours to judge".
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.import_aliases().get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))


@dataclass
class Project:
    """Every parsed file of one lint invocation, for cross-file rules."""

    files: List[FileContext]

    def by_path(self) -> Dict[str, FileContext]:
        return {ctx.path: ctx for ctx in self.files}


class Rule:
    """Base class: one contract family.

    Subclasses set the class attributes and implement either
    :meth:`check_file` (per-file rules) or :meth:`check_project`
    (cross-file rules such as registry drift).
    """

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    bad_example: ClassVar[str] = ""
    good_example: ClassVar[str] = ""

    def check_project(self, project: Project, config) -> Iterator[Finding]:
        for ctx in project.files:
            yield from self.check_file(ctx, project, config)

    def check_file(
        self, ctx: FileContext, project: Project, config
    ) -> Iterator[Finding]:
        return iter(())

    def explain(self) -> str:
        return (
            f"{self.id} — {self.summary}\n\n"
            f"{self.rationale.strip()}\n\n"
            f"Bad:\n{_indent(self.bad_example)}\n\n"
            f"Good:\n{_indent(self.good_example)}\n\n"
            f"Suppress one confirmed-safe site with "
            f"`# repro: allow[{self.id}] -- <justification>`."
        )


def _indent(snippet: str) -> str:
    return "\n".join("    " + line for line in snippet.strip().splitlines())


_RULES: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and publish a rule under its id."""
    if not cls.id:
        raise ValueError(f"{cls.__name__} must define a non-empty id")
    _RULES[cls.id] = cls()
    return cls


def registered_rules() -> Dict[str, Rule]:
    """All rules, keyed by id (import-time registrations included)."""
    # Importing the rule modules here (not at module import) avoids a cycle:
    # the rule modules import Rule/register_rule from this module.
    from repro.contracts import (  # noqa: F401
        rules_concurrency,
        rules_determinism,
        rules_structure,
    )

    return dict(_RULES)


# ---------------------------------------------------------------------------
# Lockset walker (shared by the rules_concurrency families)
# ---------------------------------------------------------------------------
#: Names that read as locks even without a visible constructor.  Matched
#: case-insensitively anywhere in the identifier, so ``_lock``,
#: ``_JOURNAL_LOCKS_GUARD``, ``cache_mutex`` and ``_journal_lock`` all
#: qualify.  Constructor-based detection (``threading.Lock()`` et al.)
#: covers unconventional names.
_LOCKISH_NAME_RE = re.compile(r"lock|mutex", re.IGNORECASE)

#: Bare constructor names whose assignment declares a lock object.
_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}
)


def is_lockish_name(name: str) -> bool:
    return bool(_LOCKISH_NAME_RE.search(name))


def is_lock_constructor_call(node: ast.AST) -> bool:
    """Whether an expression is ``threading.Lock()`` / ``Lock()`` / etc."""
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    return name in _LOCK_CONSTRUCTORS


@dataclass(frozen=True, order=True)
class LockToken:
    """Identity of one acquired lock, as far as syntax can tell.

    ``kind`` is ``"self"`` (``with self._lock:`` — instance state, later
    qualified by class name for the project-wide order graph),
    ``"global"`` (``with _REGISTRY_LOCK:`` — a module-level lock object)
    or ``"call"`` (``with _journal_lock(path):`` — a factory returning a
    lock; identity approximated by the factory's name).
    """

    kind: str
    name: str

    def render(self) -> str:
        if self.kind == "self":
            return f"self.{self.name}"
        if self.kind == "call":
            return f"{self.name}(...)"
        return self.name


def lock_token(expr: ast.AST, declared_attrs: frozenset = frozenset()) -> Optional[LockToken]:
    """The lock a ``with``-item context expression acquires, if any.

    ``declared_attrs`` holds attribute names the enclosing class assigned
    a lock constructor to, so ``with self.guard:`` is recognised even
    when the name alone would not be.  Non-lock contexts (files, pools,
    ``contextlib`` helpers) return ``None``.
    """
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
        if expr.value.id == "self" and (
            expr.attr in declared_attrs or is_lockish_name(expr.attr)
        ):
            return LockToken("self", expr.attr)
        return None
    if isinstance(expr, ast.Name):
        if is_lockish_name(expr.id):
            return LockToken("global", expr.id)
        return None
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name is not None and name not in _LOCK_CONSTRUCTORS and is_lockish_name(name):
            return LockToken("call", name)
    return None


def with_lock_tokens(
    node: ast.AST, declared_attrs: frozenset = frozenset()
) -> List[LockToken]:
    """Lock tokens acquired by one ``with``/``async with`` statement."""
    tokens: List[LockToken] = []
    for item in getattr(node, "items", ()):
        token = lock_token(item.context_expr, declared_attrs)
        if token is not None:
            tokens.append(token)
    return tokens


def walk_lock_regions(
    func: ast.AST, declared_attrs: frozenset = frozenset()
) -> Iterator[Tuple[ast.AST, frozenset]]:
    """Yield ``(node, held_locks)`` for every node in a function body.

    ``held_locks`` is the frozenset of :class:`LockToken`\\ s lexically
    held at that node — extended inside ``with <lock>:`` bodies, which is
    exact for the idiomatic ``with`` discipline this repository uses
    (manual ``acquire``/``release`` pairs are out of scope).  ``with``
    context expressions themselves are visited with the *outer* lockset:
    ``with self._lock:`` does not guard its own acquisition, and a lock
    factory called in the item runs before the lock is held.  Nested
    ``def``/``lambda``/``class`` bodies are not descended into — they
    execute at call time, not where the lock is held; callers analyse
    them as separate scopes.
    """

    def visit(node: ast.AST, held: frozenset) -> Iterator[Tuple[ast.AST, frozenset]]:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return
        yield node, held
        if isinstance(node, (ast.With, ast.AsyncWith)):
            tokens = with_lock_tokens(node, declared_attrs)
            for item in node.items:
                yield from visit(item.context_expr, held)
                if item.optional_vars is not None:
                    yield from visit(item.optional_vars, held)
            inner = held | frozenset(tokens)
            for child in node.body:
                yield from visit(child, inner)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
            ):
                continue
            yield from visit(child, held)

    for stmt in getattr(func, "body", ()):
        yield from visit(stmt, frozenset())


def iter_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


def call_name(call: ast.Call) -> Optional[str]:
    """Bare callable name of a call (``foo(...)`` or ``obj.foo(...)``)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def decorator_names(node: ast.AST) -> Iterable[str]:
    """Bare names of every decorator on a def/class (calls unwrapped)."""
    for deco in getattr(node, "decorator_list", ()):
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name is not None:
            yield name
