"""``repro.contracts`` — static determinism & concurrency contract checks.

Every landed PR leans on the same invariants: seed-stream discipline
(``SeedSequence.spawn`` children, never ambient RNG), jobs-invariance,
picklable process-pool workers, cache keys that cover every field that
changes an answer, and worker errors that are attributed instead of
swallowed.  Until now these were enforced only *dynamically*, by
bit-identity tests that can't see a violation until someone writes the
exact regression.  This package enforces the statically-detectable
classes at the AST level — stdlib :mod:`ast`, no new dependencies — and
runs in tier-1 (``tests/test_contracts_self.py``) so a violation fails
``pytest -x -q`` before it can ship.

Rule families (``repro-analyze lint --explain RULE-ID`` for details):

``rng-discipline``
    No ``np.random.default_rng``/``SeedSequence``/``random.*`` calls
    outside ``repro._rng`` and the declared stream boundaries — library
    code threads ``rng``/``seed`` parameters (the PR 3 spawn contract).
``wall-clock``
    No ``time.time``/``datetime.now``/``perf_counter``/``os.urandom``/
    ``uuid`` in deterministic paths; supervision (``engine.runtime``) and
    provenance timing are declared clock boundaries (PR 6).
``iter-order``
    No unsorted set iteration anywhere; no raw dict-view iteration inside
    codec methods (``to_dict``/``cache_key``/...) — hash order must never
    leak into serialized or hashed output.
``pool-safety``
    Workers handed to ``run_sharded``/``run_supervised`` must be
    module-level callables — lambdas/closures break process-pool pickling
    only at runtime (PR 3/PR 6).
``cache-key-coverage``
    Every field of the frozen query/scenario/plan dataclasses must flow
    into both ``to_dict`` and the cache key (including out-of-class key
    builders like the campaign key) — the ``behaviour_build`` drift class
    from PR 5's review, caught statically.
``except-hygiene``
    No bare ``except:``; a broad ``except Exception`` must re-raise or
    use the bound error (attribution into a ``RunReport`` counts) — the
    swallowed-worker-error class PR 6 fixed by hand.
``registry-drift``
    Every ``register_query_kind`` class has a ``register_backend`` twin
    and vice versa, so a new query kind can't land half-wired (PR 4).
``lock-guard``
    Attributes a class writes under a lock are shared state — accesses on
    lock-free paths race the guarded writers (the pre-PR-8 engine memo
    and journal ``_stale`` bugs, found by lockset inference).
``lock-order``
    One global lock order, enforced over a project-wide
    acquired-while-holding graph — a cycle is a potential deadlock that
    single-threaded tests can never hit.
``async-hygiene``
    No blocking calls (``time.sleep``, ``os.fsync``, file I/O,
    ``subprocess``, direct engine runs) inside ``async def`` unless
    routed through an executor; no discarded coroutines or
    ``create_task`` results (PR 8's asyncio daemon).
``journal-durability``
    Every journal/checkpoint write must ``os.fsync`` the same handle
    before its guarding lock is released — ``flush()`` is page cache,
    not durability (PR 6's crash-loses-at-most-one-shard contract).

Single-site escapes are inline ``# repro: allow[rule-id] -- reason``
comments; whole-module boundaries live in the
:data:`~repro.contracts.config.DEFAULT_CONFIG` allowlist, each entry with
its justification.  Pre-existing debt can be carried in a committed
baseline file (``repro-analyze lint --baseline FILE``) — new findings
still fail.
"""

from __future__ import annotations

from repro.contracts.checker import (
    ContractViolationError,
    LintResult,
    lint_paths,
    lint_sources,
    load_baseline,
    save_baseline,
    split_against_baseline,
)
from repro.contracts.config import DEFAULT_CONFIG, KeyBinding, LintConfig
from repro.contracts.core import Finding, Rule, register_rule, registered_rules
from repro.contracts.report import render_json, render_sarif, render_text

__all__ = [
    "ContractViolationError",
    "DEFAULT_CONFIG",
    "Finding",
    "KeyBinding",
    "LintConfig",
    "LintResult",
    "Rule",
    "lint_paths",
    "lint_sources",
    "load_baseline",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "save_baseline",
    "split_against_baseline",
]
