"""Full reproduction report generator.

Renders the complete paper-vs-measured comparison — both tables and every
quantitative claim — as plain text, so `repro-analyze report` (or CI) can
produce the whole EXPERIMENTS.md evidence base in one command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis import (
    counting_reliability,
    format_probability,
    nines,
    predicate_probability,
)
from repro.faults.mixture import NodeModel, byzantine_fleet, heterogeneous_fleet, uniform_fleet
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import RaftSpec
from repro.protocols.reliability_aware import (
    ObliviousDurabilityRaftSpec,
    ReliabilityAwareRaftSpec,
)


@dataclass(frozen=True)
class ClaimResult:
    """One claim's paper-vs-measured comparison."""

    claim_id: str
    description: str
    paper_value: str
    measured_value: str
    matches: bool


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    widths = [max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)]
    lines = ["  ".join(h.ljust(w) for h, w in zip(headers, widths))]
    lines.append("-" * len(lines[0]))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def table1_text() -> str:
    """Table 1 reproduction as text."""
    rows = []
    for n in (4, 5, 7, 8):
        spec = PBFTSpec(n)
        result = counting_reliability(spec, byzantine_fleet(n, 0.01))
        rows.append(
            [
                str(n),
                str(spec.q_eq),
                str(spec.q_per),
                str(spec.q_vc),
                str(spec.q_vc_t),
                format_probability(result.safe.value),
                format_probability(result.live.value),
                format_probability(result.safe_and_live.value),
            ]
        )
    header = "Table 1: PBFT reliability, uniform p_u = 1%\n"
    return header + _table(
        ["N", "|Qeq|", "|Qper|", "|Qvc|", "|Qvc_t|", "Safe %", "Live %", "Safe and Live %"],
        rows,
    )


def table2_text() -> str:
    """Table 2 reproduction as text."""
    probabilities = (0.01, 0.02, 0.04, 0.08)
    rows = []
    for n in (3, 5, 7, 9):
        spec = RaftSpec(n)
        cells = [str(n), str(spec.q_per), str(spec.q_vc)]
        for p in probabilities:
            result = counting_reliability(spec, uniform_fleet(n, p))
            cells.append(format_probability(result.safe_and_live.value))
        rows.append(cells)
    header = "Table 2: Raft reliability for uniform node failure p_u\n"
    return header + _table(
        ["N", "|Qper|", "|Qvc|"] + [f"S&L p={p:.0%}" for p in probabilities], rows
    )


def evaluate_claims() -> list[ClaimResult]:
    """Check every quantitative in-text claim; exact estimators only."""
    claims: list[ClaimResult] = []

    # E1: three nines at N=3, p=1%.
    e1 = counting_reliability(RaftSpec(3), uniform_fleet(3, 0.01)).safe_and_live.value
    claims.append(
        ClaimResult(
            "E1",
            "Raft N=3 at p=1% is only 99.97% safe-and-live",
            "99.97%",
            format_probability(e1),
            round(e1 * 100, 2) == 99.97,
        )
    )

    # E2: 9 nodes @8% match 3 @1%.
    cheap = counting_reliability(RaftSpec(9), uniform_fleet(9, 0.08)).safe_and_live.value
    claims.append(
        ClaimResult(
            "E2",
            "9 nodes at p=8% give the same 99.97%",
            "99.97%",
            format_probability(cheap),
            round(cheap * 100, 2) == 99.97,
        )
    )

    # E3: ten nines for a 5-node sample at p=1%.
    p_all_faulty = 0.01**5
    claims.append(
        ClaimResult(
            "E3",
            "random 5-node quorum holds a correct node with ten nines (N=100, p=1%)",
            "10 nines",
            f"{nines(1 - p_all_faulty):.1f} nines",
            abs(nines(1 - p_all_faulty) - 10.0) < 0.01,
        )
    )

    # E4: heterogeneous durability story.
    mixed = heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])
    base = counting_reliability(RaftSpec(7), uniform_fleet(7, 0.08)).safe_and_live.value
    upgraded = counting_reliability(RaftSpec(7), mixed).safe_and_live.value
    pinned = predicate_probability(
        mixed, ReliabilityAwareRaftSpec(7, pinned=[4, 5, 6]).is_durable
    )
    oblivious = predicate_probability(mixed, ObliviousDurabilityRaftSpec(7).is_durable)
    claims.append(
        ClaimResult(
            "E4a",
            "7x8% Raft is 99.88% safe-and-live",
            "99.88%",
            format_probability(base),
            round(base * 100, 2) == 99.88,
        )
    )
    claims.append(
        ClaimResult(
            "E4b",
            "upgrading 3 nodes to 1% barely helps the oblivious protocol",
            "~99.98%",
            format_probability(upgraded),
            99.97 <= upgraded * 100 <= 99.99,
        )
    )
    claims.append(
        ClaimResult(
            "E4c",
            "pinning one reliable node per quorum lifts durability to 99.994%",
            "99.994%",
            format_probability(pinned),
            round(pinned * 100, 3) == 99.994 and pinned > oblivious,
        )
    )

    # E5: the 4-vs-5-vs-7 PBFT trade-off.
    four = counting_reliability(PBFTSpec(4), byzantine_fleet(4, 0.01))
    five = counting_reliability(PBFTSpec(5), byzantine_fleet(5, 0.01))
    seven = counting_reliability(PBFTSpec(7), byzantine_fleet(7, 0.01))
    gain = (1 - four.safe.value) / (1 - five.safe.value)
    loss = (1 - five.live.value) / (1 - four.live.value)
    claims.append(
        ClaimResult(
            "E5a",
            "5-node PBFT is 42-60x safer than 4-node",
            "42-60x",
            f"{gain:.1f}x",
            42.0 <= gain <= 70.0,
        )
    )
    claims.append(
        ClaimResult(
            "E5b",
            "with only a 1.67x liveness decrease",
            "1.67x",
            f"{loss:.2f}x",
            abs(loss - 1.67) < 0.05,
        )
    )
    claims.append(
        ClaimResult(
            "E5c",
            "and the 5-node system is safer than the 7-node one",
            "5-node > 7-node",
            f"{format_probability(five.safe.value)} > {format_probability(seven.safe.value)}",
            five.safe.value > seven.safe.value,
        )
    )

    # E6: the 100-node persistence-quorum example.
    from repro.quorums.intersection import (
        prob_failure_count_reaches,
        prob_fixed_quorum_wiped_out,
    )

    p_many = prob_failure_count_reaches(100, 0.10, 10)
    p_wipe = prob_fixed_quorum_wiped_out([0.10] * 10)
    claims.append(
        ClaimResult(
            "E6a",
            ">= |Qper| failures occur with ~50% probability (N=100, p=10%)",
            "~50%",
            f"{p_many:.1%}",
            0.49 <= p_many <= 0.60,
        )
    )
    claims.append(
        ClaimResult(
            "E6b",
            "but they cover the formed quorum with probability 1e-10",
            "1e-10",
            f"{p_wipe:.1e}",
            abs(p_wipe - 1e-10) < 1e-12,
        )
    )
    return claims


def claims_text() -> str:
    """The in-text-claims comparison as a table."""
    rows = [
        [c.claim_id, c.description, c.paper_value, c.measured_value, "yes" if c.matches else "NO"]
        for c in evaluate_claims()
    ]
    return "In-text claims (paper vs measured)\n" + _table(
        ["id", "claim", "paper", "measured", "match"], rows
    )


def full_report() -> str:
    """Everything: both tables plus every claim."""
    sections = [
        "repro — reproduction report for 'Real Life Is Uncertain. "
        "Consensus Should Be Too!' (HotOS '25)",
        table1_text(),
        table2_text(),
        claims_text(),
    ]
    return "\n\n".join(sections) + "\n"
