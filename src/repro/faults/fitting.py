"""Maximum-likelihood fitting of fault curves from failure logs (paper §4).

The paper's vision "hinges on the ability to accurately express ... fault
curves ... computed from telemetry".  This module closes the loop with the
:mod:`repro.telemetry` substrate: given observed lifetimes (with right
censoring for machines still alive at observation end) it fits constant,
Weibull and piecewise-constant hazard models and selects among them by AIC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro.errors import FittingError, InvalidConfigurationError
from repro.faults.curves import (
    ConstantHazard,
    FaultCurve,
    PiecewiseConstantCurve,
    WeibullCurve,
)


@dataclass(frozen=True)
class CurveFit:
    """Result of fitting one candidate hazard model.

    ``log_likelihood`` and ``aic`` allow model comparison;
    ``n_parameters`` is the count used in the AIC penalty.
    """

    curve: FaultCurve
    log_likelihood: float
    n_parameters: int
    model_name: str

    @property
    def aic(self) -> float:
        """Akaike information criterion (lower is better)."""
        return 2.0 * self.n_parameters - 2.0 * self.log_likelihood


def _validate_observations(durations: Sequence[float], observed: Sequence[bool]) -> tuple[np.ndarray, np.ndarray]:
    durations_arr = np.asarray(durations, dtype=float)
    observed_arr = np.asarray(observed, dtype=bool)
    if durations_arr.ndim != 1 or durations_arr.size == 0:
        raise InvalidConfigurationError("durations must be a non-empty 1-D sequence")
    if observed_arr.shape != durations_arr.shape:
        raise InvalidConfigurationError("observed flags must match durations in length")
    if np.any(durations_arr < 0):
        raise InvalidConfigurationError("durations must be non-negative")
    return durations_arr, observed_arr


def fit_constant_hazard(durations: Sequence[float], observed: Sequence[bool]) -> CurveFit:
    """MLE for a constant hazard with right censoring.

    The estimator is the classic exposure ratio: ``rate = failures / total
    machine-hours``.  ``observed[i]`` is True when machine ``i`` actually
    failed at ``durations[i]`` and False when it was still alive (censored).
    """
    durations_arr, observed_arr = _validate_observations(durations, observed)
    exposure = float(durations_arr.sum())
    failures = int(observed_arr.sum())
    if exposure <= 0:
        raise FittingError("zero total exposure; cannot fit a hazard rate")
    rate = failures / exposure
    if failures == 0:
        # No failures observed: the MLE is 0, which yields a degenerate
        # log-likelihood of 0 (all survival terms vanish).
        return CurveFit(ConstantHazard(0.0), 0.0, 1, "constant")
    log_lik = failures * math.log(rate) - rate * exposure
    return CurveFit(ConstantHazard(rate), log_lik, 1, "constant")


def fit_weibull(
    durations: Sequence[float],
    observed: Sequence[bool],
    *,
    shape_bounds: tuple[float, float] = (0.05, 20.0),
) -> CurveFit:
    """Censored Weibull MLE via profile likelihood on the shape parameter.

    For a fixed shape ``k`` the scale has a closed-form MLE, so we reduce
    fitting to a 1-D bounded optimisation over ``k`` — robust and fast.
    """
    durations_arr, observed_arr = _validate_observations(durations, observed)
    failures = int(observed_arr.sum())
    if failures == 0:
        raise FittingError("cannot fit a Weibull with zero observed failures")
    event_times = durations_arr[observed_arr]
    if np.any(event_times <= 0):
        raise FittingError("observed failure times must be positive for Weibull fitting")

    def negative_profile_log_lik(shape: float) -> float:
        powered = durations_arr**shape
        scale_pow = powered.sum() / failures  # lambda^k MLE
        log_lik = (
            failures * math.log(shape)
            - failures * math.log(scale_pow)
            + (shape - 1.0) * np.log(event_times).sum()
            - powered.sum() / scale_pow
        )
        return -log_lik

    result = optimize.minimize_scalar(
        negative_profile_log_lik, bounds=shape_bounds, method="bounded"
    )
    if not result.success:
        raise FittingError(f"Weibull shape optimisation failed: {result.message}")
    shape = float(result.x)
    scale = float((durations_arr**shape).sum() / failures) ** (1.0 / shape)
    return CurveFit(WeibullCurve(shape, scale), -float(result.fun), 2, "weibull")


def fit_piecewise_hazard(
    durations: Sequence[float],
    observed: Sequence[bool],
    breakpoints: Sequence[float],
) -> CurveFit:
    """Piecewise-constant hazard MLE on fixed breakpoints.

    Each segment's rate is its own exposure ratio.  Useful for recovering
    bathtub-ish shapes without committing to a parametric family, and for
    quantifying rollout-window hazard spikes.
    """
    durations_arr, observed_arr = _validate_observations(durations, observed)
    points = tuple(float(b) for b in breakpoints)
    if not points or points[0] != 0.0:
        raise InvalidConfigurationError("breakpoints must start at 0.0")
    edges = list(points) + [math.inf]
    rates: list[float] = []
    log_lik = 0.0
    n_params = 0
    for i in range(len(points)):
        seg_start, seg_end = edges[i], edges[i + 1]
        exposure = float(np.clip(np.minimum(durations_arr, seg_end) - seg_start, 0.0, None).sum())
        events = int(
            (observed_arr & (durations_arr > seg_start) & (durations_arr <= seg_end)).sum()
        )
        if exposure <= 0:
            rates.append(0.0)
            continue
        rate = events / exposure
        rates.append(rate)
        n_params += 1
        if events > 0:
            log_lik += events * math.log(rate)
        log_lik -= rate * exposure
    curve = PiecewiseConstantCurve(points, tuple(rates))
    return CurveFit(curve, log_lik, max(n_params, 1), "piecewise")


def select_best_fit(
    durations: Sequence[float],
    observed: Sequence[bool],
    *,
    piecewise_breakpoints: Sequence[float] | None = None,
) -> CurveFit:
    """Fit all candidate families and return the lowest-AIC model.

    Candidates: constant hazard, Weibull, and (optionally) piecewise
    constant on the supplied breakpoints.  Families that cannot be fitted
    (e.g. Weibull with zero events) are silently skipped; at least the
    constant model always succeeds.
    """
    candidates = [fit_constant_hazard(durations, observed)]
    try:
        candidates.append(fit_weibull(durations, observed))
    except FittingError:
        pass
    if piecewise_breakpoints is not None:
        try:
            candidates.append(fit_piecewise_hazard(durations, observed, piecewise_breakpoints))
        except FittingError:
            pass
    return min(candidates, key=lambda fit: fit.aic)
