"""Correlated-failure models (paper §2 point 3).

The paper stresses that faults cluster: software rollouts, rack-level
vibration/temperature, platform-wide TEE vulnerabilities.  The analysis in
§3 assumes independence "for simplification"; this module provides the
models needed to relax that assumption:

* :class:`IndependentFailures` — the §3 baseline.
* :class:`CommonShockModel` — background independent failures plus shock
  events that take out whole groups at once (Marshall–Olkin flavour).
* :class:`BetaBinomialContagion` — exchangeable correlation via a shared
  latent failure intensity (captures "bad day" effects like a fleet-wide
  rollout regression).

All models expose the same two capabilities:

* ``sample(rng)`` → a boolean failure vector for one window, used by the
  Monte-Carlo estimator and the simulator's fault injector;
* ``marginal_probabilities()`` → per-node marginals, so any correlated
  model can be compared against its independent approximation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.mixture import Fleet


class CorrelationModel(ABC):
    """Joint distribution over failure indicator vectors for one window."""

    @property
    @abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abstractmethod
    def sample(self, seed: SeedLike = None) -> np.ndarray:
        """Draw one boolean failure vector of length :attr:`n`."""

    @abstractmethod
    def marginal_probabilities(self) -> np.ndarray:
        """Per-node failure probability (length-:attr:`n` float vector)."""

    def sample_many(self, trials: int, seed: SeedLike = None) -> np.ndarray:
        """Draw ``trials`` failure vectors as a (trials, n) boolean matrix.

        The base implementation stacks per-trial :meth:`sample` calls; the
        built-in models override it with one-pass vectorized draws (whole
        arrays per model, no per-trial Python loop).  Each override
        documents its seeded stream: :class:`IndependentFailures` consumes
        the generator exactly as the per-trial loop did, while
        :class:`CommonShockModel` and :class:`BetaBinomialContagion` draw
        in blocked order, so their seeded samples differ from (but are
        distributed identically to) the historical stacked loop.
        """
        rng = as_generator(seed)
        return np.stack([self.sample(rng) for _ in range(trials)])

    def empirical_pairwise_correlation(self, trials: int = 20_000, seed: SeedLike = None) -> float:
        """Mean pairwise Pearson correlation of failure indicators (MC estimate)."""
        samples = self.sample_many(trials, seed).astype(float)
        if self.n < 2:
            return 0.0
        corr = np.corrcoef(samples, rowvar=False)
        mask = ~np.eye(self.n, dtype=bool)
        values = corr[mask]
        values = values[np.isfinite(values)]
        return float(values.mean()) if values.size else 0.0


@dataclass(frozen=True)
class IndependentFailures(CorrelationModel):
    """Independent per-node failures — the paper's §3 baseline."""

    fleet: Fleet

    @property
    def n(self) -> int:
        return self.fleet.n

    def sample(self, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        p = np.array(self.fleet.failure_probabilities)
        return rng.random(self.n) < p

    def sample_many(self, trials: int, seed: SeedLike = None) -> np.ndarray:
        """One-pass vectorized draws.

        A single ``(trials, n)`` uniform block consumes the generator in
        the same (trial, node) order as per-trial :meth:`sample` calls, so
        seeded samples are unchanged from the stacked loop.
        """
        rng = as_generator(seed)
        p = np.array(self.fleet.failure_probabilities)
        return rng.random((trials, self.n)) < p

    def marginal_probabilities(self) -> np.ndarray:
        return np.array(self.fleet.failure_probabilities)


@dataclass(frozen=True)
class ShockGroup:
    """A set of node indices that fail together when a shock fires.

    ``probability`` is the chance the shock fires during the window and
    ``lethality`` the chance each member actually dies given the shock
    (1.0 = the rollout bricks every machine in the group).
    """

    members: tuple[int, ...]
    probability: float
    lethality: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidProbabilityError(f"shock probability must be in [0,1], got {self.probability}")
        if not 0.0 <= self.lethality <= 1.0:
            raise InvalidProbabilityError(f"shock lethality must be in [0,1], got {self.lethality}")
        if len(set(self.members)) != len(self.members):
            raise InvalidConfigurationError("shock group has duplicate members")


@dataclass(frozen=True)
class CommonShockModel(CorrelationModel):
    """Background independent failures plus correlated group shocks.

    A node fails if its own background coin comes up failure **or** any
    shock covering it fires and is lethal to it.  With no shocks this
    degenerates exactly to :class:`IndependentFailures`.
    """

    fleet: Fleet
    shocks: tuple[ShockGroup, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for shock in self.shocks:
            for member in shock.members:
                if not 0 <= member < self.fleet.n:
                    raise InvalidConfigurationError(
                        f"shock '{shock.name}' references node {member} outside fleet of {self.fleet.n}"
                    )

    @property
    def n(self) -> int:
        return self.fleet.n

    def sample(self, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        p = np.array(self.fleet.failure_probabilities)
        failed = rng.random(self.n) < p
        for shock in self.shocks:
            if rng.random() < shock.probability:
                members = np.array(shock.members, dtype=int)
                hit = rng.random(members.size) < shock.lethality
                failed[members[hit]] = True
        return failed

    def sample_many(self, trials: int, seed: SeedLike = None) -> np.ndarray:
        """One-pass vectorized draws: whole arrays per model, no trial loop.

        Draw order is *blocked* — one ``(trials, n)`` background block,
        then per shock one ``(trials,)`` firing block and one
        ``(trials, |members|)`` lethality block (drawn unconditionally,
        where the scalar :meth:`sample` draws lethality only when the
        shock fires).  The joint distribution is identical, but seeded
        samples differ from the historical stacked per-trial loop.
        """
        rng = as_generator(seed)
        p = np.array(self.fleet.failure_probabilities)
        failed = rng.random((trials, self.n)) < p
        for shock in self.shocks:
            fires = rng.random(trials) < shock.probability
            members = np.array(shock.members, dtype=int)
            hits = rng.random((trials, members.size)) < shock.lethality
            failed[:, members] |= fires[:, None] & hits
        return failed

    def marginal_probabilities(self) -> np.ndarray:
        """Exact marginals: independence of background coin and each shock."""
        survive = 1.0 - np.array(self.fleet.failure_probabilities)
        for shock in self.shocks:
            hit = shock.probability * shock.lethality
            for member in shock.members:
                survive[member] *= 1.0 - hit
        return 1.0 - survive

    def failure_count_pmf(self, max_exact_shocks: int = 20) -> np.ndarray:
        """PMF of the total failure count, exact by shock-subset conditioning.

        Conditioned on which shocks fire, nodes fail independently, so the
        count is Poisson-binomial; the unconditional PMF is the mixture over
        all 2^s shock subsets.  Practical for ``s <= max_exact_shocks``.
        """
        shocks = self.shocks
        if len(shocks) > max_exact_shocks:
            raise InvalidConfigurationError(
                f"{len(shocks)} shocks exceeds exact limit {max_exact_shocks}; use sampling"
            )
        from repro.analysis.counting import poisson_binomial_pmf

        base = np.array(self.fleet.failure_probabilities)
        pmf = np.zeros(self.n + 1)
        for mask in range(1 << len(shocks)):
            weight = 1.0
            p = base.copy()
            for bit, shock in enumerate(shocks):
                if mask >> bit & 1:
                    weight *= shock.probability
                    for member in shock.members:
                        p[member] = 1.0 - (1.0 - p[member]) * (1.0 - shock.lethality)
                else:
                    weight *= 1.0 - shock.probability
            if weight > 0.0:
                pmf += weight * poisson_binomial_pmf(p)
        return pmf


@dataclass(frozen=True)
class BetaBinomialContagion(CorrelationModel):
    """Exchangeable correlation via a latent Beta-distributed intensity.

    Each window draws ``q ~ Beta(alpha, beta)`` and then every node fails
    independently with probability ``q``.  The marginal failure probability
    is ``alpha / (alpha + beta)`` and pairwise correlation is
    ``1 / (alpha + beta + 1)`` — so ``alpha + beta`` directly tunes how
    "clustered" failures are (small sum = strong contagion).
    """

    n_nodes: int
    alpha: float
    beta: float

    def __post_init__(self) -> None:
        if self.n_nodes < 0:
            raise InvalidConfigurationError(f"n_nodes must be non-negative, got {self.n_nodes}")
        if self.alpha <= 0 or self.beta <= 0:
            raise InvalidConfigurationError("alpha and beta must be positive")

    @classmethod
    def from_marginal_and_correlation(
        cls, n_nodes: int, marginal: float, correlation: float
    ) -> "BetaBinomialContagion":
        """Construct from target per-node marginal and pairwise correlation."""
        if not 0.0 < marginal < 1.0:
            raise InvalidProbabilityError(f"marginal must be in (0,1), got {marginal}")
        if not 0.0 < correlation < 1.0:
            raise InvalidProbabilityError(f"correlation must be in (0,1), got {correlation}")
        total = 1.0 / correlation - 1.0
        return cls(n_nodes=n_nodes, alpha=marginal * total, beta=(1.0 - marginal) * total)

    @property
    def n(self) -> int:
        return self.n_nodes

    @property
    def marginal(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    @property
    def pairwise_correlation(self) -> float:
        return 1.0 / (self.alpha + self.beta + 1.0)

    def sample(self, seed: SeedLike = None) -> np.ndarray:
        rng = as_generator(seed)
        q = rng.beta(self.alpha, self.beta)
        return rng.random(self.n_nodes) < q

    def sample_many(self, trials: int, seed: SeedLike = None) -> np.ndarray:
        """One-pass vectorized draws: all intensities, then all uniforms.

        Draw order is blocked (``trials`` Beta intensities followed by one
        ``(trials, n)`` uniform block) instead of the scalar loop's
        interleaved beta/uniform pairs, so seeded samples differ from the
        historical stacked loop; the joint distribution is identical.
        """
        rng = as_generator(seed)
        q = rng.beta(self.alpha, self.beta, size=trials)
        return rng.random((trials, self.n_nodes)) < q[:, None]

    def marginal_probabilities(self) -> np.ndarray:
        return np.full(self.n_nodes, self.marginal)

    def failure_count_pmf(self) -> np.ndarray:
        """Exact beta-binomial PMF of the failure count."""
        n, a, b = self.n_nodes, self.alpha, self.beta
        ks = np.arange(n + 1)
        log_pmf = (
            _log_comb(n, ks)
            + _log_beta(ks + a, n - ks + b)
            - _log_beta(a, b)
        )
        pmf = np.exp(log_pmf)
        return pmf / pmf.sum()


def _log_comb(n: int, k: np.ndarray) -> np.ndarray:
    from scipy.special import gammaln

    return gammaln(n + 1) - gammaln(k + 1) - gammaln(n - k + 1)


def _log_beta(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    from scipy.special import gammaln

    return gammaln(a) + gammaln(b) - gammaln(a + b)


def rollout_shock(fleet: Fleet, probability: float, *, lethality: float = 1.0) -> ShockGroup:
    """Fleet-wide shock: the paper's CrowdStrike-style rollout regression."""
    return ShockGroup(tuple(range(fleet.n)), probability, lethality, name="rollout")


def rack_shocks(
    fleet: Fleet, rack_size: int, probability: float, *, lethality: float = 1.0
) -> tuple[ShockGroup, ...]:
    """Partition the fleet into racks of ``rack_size`` and give each a shock."""
    if rack_size <= 0:
        raise InvalidConfigurationError(f"rack_size must be positive, got {rack_size}")
    groups = []
    for start in range(0, fleet.n, rack_size):
        members = tuple(range(start, min(start + rack_size, fleet.n)))
        groups.append(ShockGroup(members, probability, lethality, name=f"rack-{start // rack_size}"))
    return tuple(groups)


def correlated_fleet_sampler(
    fleet: Fleet, shocks: Sequence[ShockGroup] = ()
) -> CorrelationModel:
    """Convenience: independent model if no shocks, else common-shock model."""
    if not shocks:
        return IndependentFailures(fleet)
    return CommonShockModel(fleet, tuple(shocks))
