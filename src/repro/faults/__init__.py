"""Fault models: per-node *fault curves* and correlation structure (paper §2).

The paper's central modelling object is the fault curve ``p_u`` — a
time-dependent description of how likely node ``u`` is to fail.  This
subpackage provides:

* :mod:`repro.faults.curves` — the :class:`FaultCurve` hierarchy (constant,
  exponential, Weibull, bathtub, piecewise, empirical) with hazard-rate,
  window-probability and failure-time-sampling interfaces.
* :mod:`repro.faults.afr` — conversions between Annual Failure Rate, MTBF
  and instantaneous hazard rates (the storage-community vocabulary).
* :mod:`repro.faults.mixture` — per-node crash/Byzantine probability
  mixtures and fleet construction helpers (paper §2 point 4).
* :mod:`repro.faults.correlation` — correlated-failure models: independent,
  common-shock groups (rollouts, rack-level events) and beta-binomial
  contagion (paper §2 point 3).
* :mod:`repro.faults.fitting` — maximum-likelihood fitting of fault curves
  from failure logs, as produced by :mod:`repro.telemetry`.
"""

from repro.faults.afr import (
    afr_to_hourly_rate,
    afr_to_window_probability,
    hourly_rate_to_afr,
    mtbf_hours_to_afr,
    rate_to_mtbf_hours,
    window_probability_to_afr,
)
from repro.faults.correlation import (
    BetaBinomialContagion,
    CommonShockModel,
    CorrelationModel,
    IndependentFailures,
    ShockGroup,
)
from repro.faults.curves import (
    BathtubCurve,
    ConstantHazard,
    EmpiricalCurve,
    ExponentialCurve,
    FaultCurve,
    PiecewiseConstantCurve,
    ScaledCurve,
    WeibullCurve,
)
from repro.faults.fitting import (
    CurveFit,
    fit_constant_hazard,
    fit_piecewise_hazard,
    fit_weibull,
    select_best_fit,
)
from repro.faults.timeline import (
    HazardTimeline,
    RiskWindow,
    peak_hours_calendar,
    rollout_calendar,
)
from repro.faults.mixture import (
    Fleet,
    NodeModel,
    byzantine_fleet,
    fleet_from_curves,
    heterogeneous_fleet,
    uniform_fleet,
)

__all__ = [
    "FaultCurve",
    "ConstantHazard",
    "ExponentialCurve",
    "WeibullCurve",
    "BathtubCurve",
    "PiecewiseConstantCurve",
    "EmpiricalCurve",
    "ScaledCurve",
    "afr_to_hourly_rate",
    "hourly_rate_to_afr",
    "afr_to_window_probability",
    "window_probability_to_afr",
    "mtbf_hours_to_afr",
    "rate_to_mtbf_hours",
    "NodeModel",
    "Fleet",
    "uniform_fleet",
    "heterogeneous_fleet",
    "byzantine_fleet",
    "fleet_from_curves",
    "CorrelationModel",
    "IndependentFailures",
    "CommonShockModel",
    "ShockGroup",
    "BetaBinomialContagion",
    "CurveFit",
    "HazardTimeline",
    "RiskWindow",
    "rollout_calendar",
    "peak_hours_calendar",
    "fit_constant_hazard",
    "fit_weibull",
    "fit_piecewise_hazard",
    "select_best_fit",
]
