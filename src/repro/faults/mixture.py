"""Per-node crash/Byzantine mixtures and fleet construction (paper §2 point 4).

The paper observes that real nodes mostly crash but occasionally misbehave
arbitrarily (mercurial cores, TEE compromises), so a node's failure model
within an analysis window is a pair of probabilities:

* ``p_crash`` — the node fail-stops during the window,
* ``p_byzantine`` — the node deviates arbitrarily during the window.

A :class:`Fleet` is an ordered collection of :class:`NodeModel`; it is the
standard "deployment description" consumed by :mod:`repro.analysis`,
:mod:`repro.planner` and :mod:`repro.sim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.curves import FaultCurve


@dataclass(frozen=True)
class NodeModel:
    """Failure behaviour of one node over the analysis window.

    The two probabilities are for *disjoint* outcomes: with probability
    ``p_crash`` the node crashes, with ``p_byzantine`` it turns Byzantine,
    and with ``1 - p_crash - p_byzantine`` it stays correct.  Optional
    ``label`` and ``cost_per_hour`` carry deployment metadata used by the
    planner (they do not participate in equality-sensitive maths).
    """

    p_crash: float
    p_byzantine: float = 0.0
    label: str = ""
    cost_per_hour: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (("p_crash", self.p_crash), ("p_byzantine", self.p_byzantine)):
            if not 0.0 <= value <= 1.0:
                raise InvalidProbabilityError(f"{name} must be in [0, 1], got {value}")
        if self.p_crash + self.p_byzantine > 1.0 + 1e-12:
            raise InvalidProbabilityError(
                f"p_crash + p_byzantine = {self.p_crash + self.p_byzantine} exceeds 1"
            )
        if self.cost_per_hour < 0:
            raise InvalidConfigurationError("cost_per_hour must be non-negative")

    @property
    def p_fail(self) -> float:
        """Probability the node fails in *any* way during the window."""
        return self.p_crash + self.p_byzantine

    @property
    def p_correct(self) -> float:
        """Probability the node stays correct for the whole window."""
        return max(0.0, 1.0 - self.p_fail)

    def as_byzantine(self) -> "NodeModel":
        """Worst-case reinterpretation: every failure counts as Byzantine.

        This is how the paper's Table 1 treats PBFT faults.
        """
        return NodeModel(0.0, self.p_fail, label=self.label, cost_per_hour=self.cost_per_hour)

    def as_crash_only(self) -> "NodeModel":
        """Optimistic reinterpretation: every failure counts as a crash."""
        return NodeModel(self.p_fail, 0.0, label=self.label, cost_per_hour=self.cost_per_hour)

    @classmethod
    def from_curves(
        cls,
        crash_curve: FaultCurve,
        window_hours: float,
        byzantine_curve: FaultCurve | None = None,
        *,
        start_hours: float = 0.0,
        label: str = "",
        cost_per_hour: float = 0.0,
    ) -> "NodeModel":
        """Project fault curves onto a single analysis window.

        Crash and Byzantine processes are treated as competing risks: the
        window failure probabilities are split proportionally to each
        process's cumulative hazard so they remain disjoint outcomes.
        """
        h_crash = crash_curve.cumulative_hazard(start_hours, start_hours + window_hours)
        h_byz = (
            byzantine_curve.cumulative_hazard(start_hours, start_hours + window_hours)
            if byzantine_curve is not None
            else 0.0
        )
        total = h_crash + h_byz
        if total == 0.0:
            return cls(0.0, 0.0, label=label, cost_per_hour=cost_per_hour)
        import math

        p_any = -math.expm1(-total)
        return cls(
            p_crash=p_any * h_crash / total,
            p_byzantine=p_any * h_byz / total,
            label=label,
            cost_per_hour=cost_per_hour,
        )


@dataclass(frozen=True)
class Fleet:
    """An ordered deployment of nodes, indexed 0..n-1.

    Fleets are immutable; combinators return new fleets.  Node order is
    significant because protocol specs may treat indices asymmetrically
    (e.g. reliability-aware quorums pin specific indices).
    """

    nodes: tuple[NodeModel, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not all(isinstance(n, NodeModel) for n in self.nodes):
            raise InvalidConfigurationError("Fleet nodes must be NodeModel instances")

    # -- container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[NodeModel]:
        return iter(self.nodes)

    def __getitem__(self, index: int) -> NodeModel:
        return self.nodes[index]

    # -- derived vectors ----------------------------------------------------
    @property
    def n(self) -> int:
        """Number of nodes in the deployment."""
        return len(self.nodes)

    @property
    def crash_probabilities(self) -> tuple[float, ...]:
        return tuple(node.p_crash for node in self.nodes)

    @property
    def byzantine_probabilities(self) -> tuple[float, ...]:
        return tuple(node.p_byzantine for node in self.nodes)

    @property
    def failure_probabilities(self) -> tuple[float, ...]:
        return tuple(node.p_fail for node in self.nodes)

    @property
    def is_crash_only(self) -> bool:
        """True when no node has Byzantine mass (a CFT deployment)."""
        return all(node.p_byzantine == 0.0 for node in self.nodes)

    @property
    def is_homogeneous(self) -> bool:
        """True when every node has identical failure probabilities."""
        if not self.nodes:
            return True
        first = (self.nodes[0].p_crash, self.nodes[0].p_byzantine)
        return all((n.p_crash, n.p_byzantine) == first for n in self.nodes)

    @property
    def hourly_cost(self) -> float:
        """Total fleet cost per hour (sum of node costs)."""
        return sum(node.cost_per_hour for node in self.nodes)

    # -- combinators ----------------------------------------------------------
    def replace(self, index: int, node: NodeModel) -> "Fleet":
        """Return a fleet with node ``index`` swapped for ``node``."""
        if not 0 <= index < self.n:
            raise InvalidConfigurationError(f"node index {index} out of range for n={self.n}")
        nodes = list(self.nodes)
        nodes[index] = node
        return Fleet(tuple(nodes))

    def extend(self, extra: Iterable[NodeModel]) -> "Fleet":
        """Return a fleet with additional nodes appended."""
        return Fleet(self.nodes + tuple(extra))

    def as_byzantine(self) -> "Fleet":
        """Worst-case fleet where every failure is Byzantine (Table 1 model)."""
        return Fleet(tuple(node.as_byzantine() for node in self.nodes))

    def as_crash_only(self) -> "Fleet":
        """Optimistic fleet where every failure is a crash."""
        return Fleet(tuple(node.as_crash_only() for node in self.nodes))

    def sorted_by_reliability(self) -> tuple[int, ...]:
        """Node indices sorted most-reliable first (ties keep fleet order)."""
        return tuple(sorted(range(self.n), key=lambda i: (self.nodes[i].p_fail, i)))


def uniform_fleet(
    n: int,
    p_fail: float,
    *,
    byzantine_fraction: float = 0.0,
    label: str = "",
    cost_per_hour: float = 0.0,
) -> Fleet:
    """Fleet of ``n`` identical nodes failing with probability ``p_fail``.

    ``byzantine_fraction`` splits the failure mass: each node turns
    Byzantine with ``p_fail * byzantine_fraction`` and crashes with the
    remainder.  The paper's Table 2 uses ``byzantine_fraction=0``.
    """
    if n < 0:
        raise InvalidConfigurationError(f"fleet size must be non-negative, got {n}")
    if not 0.0 <= byzantine_fraction <= 1.0:
        raise InvalidProbabilityError(f"byzantine_fraction must be in [0,1], got {byzantine_fraction}")
    node = NodeModel(
        p_crash=p_fail * (1.0 - byzantine_fraction),
        p_byzantine=p_fail * byzantine_fraction,
        label=label,
        cost_per_hour=cost_per_hour,
    )
    return Fleet((node,) * n)


def byzantine_fleet(n: int, p_fail: float, *, label: str = "", cost_per_hour: float = 0.0) -> Fleet:
    """Fleet of ``n`` nodes whose every failure is Byzantine (Table 1 model)."""
    return uniform_fleet(n, p_fail, byzantine_fraction=1.0, label=label, cost_per_hour=cost_per_hour)


def heterogeneous_fleet(groups: Sequence[tuple[int, NodeModel]]) -> Fleet:
    """Fleet built from ``(count, node_model)`` groups, in order.

    Example: the paper's §3 mixed cluster is
    ``heterogeneous_fleet([(4, NodeModel(0.08)), (3, NodeModel(0.01))])``.
    """
    nodes: list[NodeModel] = []
    for count, model in groups:
        if count < 0:
            raise InvalidConfigurationError(f"group count must be non-negative, got {count}")
        nodes.extend([model] * count)
    return Fleet(tuple(nodes))


def fleet_from_curves(
    curves: Sequence[FaultCurve],
    window_hours: float,
    *,
    byzantine_curves: Sequence[FaultCurve | None] | None = None,
    start_hours: float = 0.0,
) -> Fleet:
    """Project per-node fault curves onto a window and build a fleet."""
    if byzantine_curves is None:
        byzantine_curves = [None] * len(curves)
    if len(byzantine_curves) != len(curves):
        raise InvalidConfigurationError("byzantine_curves must match curves in length")
    nodes = tuple(
        NodeModel.from_curves(crash, window_hours, byz, start_hours=start_hours)
        for crash, byz in zip(curves, byzantine_curves)
    )
    return Fleet(nodes)
