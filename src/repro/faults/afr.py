"""Conversions between reliability vocabularies (paper §2).

The storage community quotes Annual Failure Rate (AFR) and MTBF; consensus
analysis wants per-window failure probabilities; hazard-based models want
rates.  These helpers convert between all three under the memoryless
(constant-hazard) assumption, which is the model the paper uses for every
number in §3.
"""

from __future__ import annotations

import math

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.curves import HOURS_PER_YEAR


def _check_fraction(value: float, name: str, *, allow_one: bool = False) -> None:
    upper_ok = value <= 1.0 if allow_one else value < 1.0
    if not (0.0 <= value and upper_ok):
        bound = "[0, 1]" if allow_one else "[0, 1)"
        raise InvalidProbabilityError(f"{name} must be in {bound}, got {value}")


def afr_to_hourly_rate(afr: float) -> float:
    """Hazard rate (failures/hour) whose one-year failure probability is ``afr``."""
    _check_fraction(afr, "AFR")
    return -math.log1p(-afr) / HOURS_PER_YEAR


def hourly_rate_to_afr(rate_per_hour: float) -> float:
    """One-year failure probability of a constant hazard ``rate_per_hour``."""
    if rate_per_hour < 0:
        raise InvalidConfigurationError(f"rate must be non-negative, got {rate_per_hour}")
    return -math.expm1(-rate_per_hour * HOURS_PER_YEAR)


def afr_to_window_probability(afr: float, window_hours: float) -> float:
    """Failure probability over ``window_hours`` for a node with the given AFR."""
    if window_hours < 0:
        raise InvalidConfigurationError(f"window must be non-negative, got {window_hours}")
    return -math.expm1(-afr_to_hourly_rate(afr) * window_hours)


def window_probability_to_afr(probability: float, window_hours: float) -> float:
    """AFR of a constant-hazard node that fails with ``probability`` per window."""
    _check_fraction(probability, "probability")
    if window_hours <= 0:
        raise InvalidConfigurationError(f"window must be positive, got {window_hours}")
    rate = -math.log1p(-probability) / window_hours
    return hourly_rate_to_afr(rate)


def mtbf_hours_to_afr(mtbf_hours: float) -> float:
    """AFR of a memoryless device with the given mean time between failures."""
    if mtbf_hours <= 0:
        raise InvalidConfigurationError(f"MTBF must be positive, got {mtbf_hours}")
    return -math.expm1(-HOURS_PER_YEAR / mtbf_hours)


def rate_to_mtbf_hours(rate_per_hour: float) -> float:
    """Mean time between failures of a constant hazard (1/rate)."""
    if rate_per_hour <= 0:
        raise InvalidConfigurationError(f"rate must be positive, got {rate_per_hour}")
    return 1.0 / rate_per_hour
