"""Operational hazard timelines (paper §2 point 2).

"Faults tend to cluster around major software updates ... or with peak
operation hours and sudden workload changes."  This module turns an
operational calendar — rollout windows, peak-load hours, incident
freezes — into the piecewise hazard amplification a fault curve needs.

A :class:`HazardTimeline` wraps a base curve with multiplicative windows:
during a rollout the hazard is, say, 50× the baseline (the CrowdStrike
shape); during a change freeze it might be 0.5×.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvalidConfigurationError
from repro.faults.curves import FaultCurve, _check_window


@dataclass(frozen=True)
class RiskWindow:
    """One calendar window with a hazard multiplier."""

    start_hours: float
    end_hours: float
    multiplier: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end_hours <= self.start_hours:
            raise InvalidConfigurationError(
                f"window end {self.end_hours} must exceed start {self.start_hours}"
            )
        if self.start_hours < 0:
            raise InvalidConfigurationError("window start must be non-negative")
        if self.multiplier < 0:
            raise InvalidConfigurationError("multiplier must be non-negative")


@dataclass(frozen=True)
class HazardTimeline(FaultCurve):
    """A base fault curve modulated by calendar risk windows.

    Windows must be non-overlapping; outside every window the base hazard
    applies unchanged.  The cumulative hazard integrates the modulation
    exactly (window boundaries split the integral).
    """

    base: FaultCurve
    windows: tuple[RiskWindow, ...]

    def __post_init__(self) -> None:
        ordered = sorted(self.windows, key=lambda w: w.start_hours)
        for a, b in zip(ordered, ordered[1:]):
            if b.start_hours < a.end_hours:
                raise InvalidConfigurationError(
                    f"risk windows overlap: {a.label or a.start_hours} and "
                    f"{b.label or b.start_hours}"
                )
        object.__setattr__(self, "windows", tuple(ordered))

    def _multiplier_at(self, t: float) -> float:
        starts = [w.start_hours for w in self.windows]
        index = bisect.bisect_right(starts, t) - 1
        if index >= 0 and t < self.windows[index].end_hours:
            return self.windows[index].multiplier
        return 1.0

    def hazard(self, t: float) -> float:
        return self._multiplier_at(t) * self.base.hazard(t)

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        _check_window(t0, t1)
        # Split [t0, t1] at window boundaries and integrate each segment
        # with its constant multiplier.
        boundaries = {t0, t1}
        for window in self.windows:
            for edge in (window.start_hours, window.end_hours):
                if t0 < edge < t1:
                    boundaries.add(edge)
        total = 0.0
        edges = sorted(boundaries)
        for seg_start, seg_end in zip(edges, edges[1:]):
            midpoint = 0.5 * (seg_start + seg_end)
            total += self._multiplier_at(midpoint) * self.base.cumulative_hazard(
                seg_start, seg_end
            )
        return total

    def active_window(self, t: float) -> RiskWindow | None:
        """The risk window covering time ``t``, if any."""
        starts = [w.start_hours for w in self.windows]
        index = bisect.bisect_right(starts, t) - 1
        if index >= 0 and t < self.windows[index].end_hours:
            return self.windows[index]
        return None


def rollout_calendar(
    *,
    first_rollout_hours: float,
    cadence_hours: float,
    rollout_duration_hours: float,
    multiplier: float,
    horizon_hours: float,
) -> tuple[RiskWindow, ...]:
    """Periodic rollout windows (weekly deploy trains, monthly patches)."""
    if cadence_hours <= 0 or rollout_duration_hours <= 0 or horizon_hours <= 0:
        raise InvalidConfigurationError("calendar parameters must be positive")
    if rollout_duration_hours >= cadence_hours:
        raise InvalidConfigurationError("rollouts must be shorter than their cadence")
    windows = []
    start = first_rollout_hours
    index = 0
    while start < horizon_hours:
        windows.append(
            RiskWindow(
                start_hours=start,
                end_hours=start + rollout_duration_hours,
                multiplier=multiplier,
                label=f"rollout-{index}",
            )
        )
        start += cadence_hours
        index += 1
    return tuple(windows)


def peak_hours_calendar(
    *,
    peak_start_hour_of_day: float,
    peak_length_hours: float,
    multiplier: float,
    days: int,
) -> tuple[RiskWindow, ...]:
    """Daily peak-load windows over ``days`` days."""
    if not 0 <= peak_start_hour_of_day < 24 or not 0 < peak_length_hours <= 24:
        raise InvalidConfigurationError("invalid peak window shape")
    if days <= 0:
        raise InvalidConfigurationError("days must be positive")
    windows = []
    for day in range(days):
        start = day * 24.0 + peak_start_hour_of_day
        windows.append(
            RiskWindow(
                start_hours=start,
                end_hours=start + peak_length_hours,
                multiplier=multiplier,
                label=f"peak-day-{day}",
            )
        )
    return tuple(windows)
