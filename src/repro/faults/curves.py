"""Fault-curve abstractions (paper §2).

A *fault curve* describes the time-dependent failure behaviour of a single
node as a hazard function ``h(t)`` (instantaneous failures per hour).  All
derived quantities follow from the cumulative hazard

    H(t0, t1) = ∫ h(t) dt  over [t0, t1]

* survival over a window:   S = exp(-H)
* failure probability:      p = 1 - exp(-H)
* failure-time sampling:    inverse-transform on H

Time is measured in **hours** throughout the library; helpers in
:mod:`repro.faults.afr` convert to/from annualised metrics.

The hierarchy covers the shapes the paper cites: constant hazard (the AFR
model used for every number in §3), Weibull aging (disk wear-out), bathtub
curves (infancy + useful life + wear-out, §2 point 2), piecewise-constant
curves (rollout windows, workload shifts) and empirical curves interpolated
from telemetry.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError, InvalidProbabilityError

HOURS_PER_YEAR = 8766.0  # 365.25 days — matches common AFR definitions

_EPS = 1e-15


def _check_window(t0: float, t1: float) -> None:
    if t1 < t0:
        raise InvalidConfigurationError(f"window end {t1} precedes start {t0}")
    if t0 < 0:
        raise InvalidConfigurationError(f"window start {t0} is negative")


class FaultCurve(ABC):
    """Time-dependent failure model of a single node.

    Subclasses implement :meth:`hazard` and :meth:`cumulative_hazard`; the
    probability / sampling API is derived here so that every curve behaves
    consistently.
    """

    @abstractmethod
    def hazard(self, t: float) -> float:
        """Instantaneous hazard rate (failures/hour) at time ``t`` hours."""

    @abstractmethod
    def cumulative_hazard(self, t0: float, t1: float) -> float:
        """Integral of the hazard over ``[t0, t1]`` (dimensionless)."""

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def survival_probability(self, t0: float, t1: float) -> float:
        """Probability the node survives the whole window ``[t0, t1]``."""
        _check_window(t0, t1)
        return math.exp(-self.cumulative_hazard(t0, t1))

    def failure_probability(self, t0: float, t1: float) -> float:
        """Probability the node fails at least once during ``[t0, t1]``."""
        return -math.expm1(-self.cumulative_hazard(t0, t1)) if t1 > t0 else 0.0

    def annualized_failure_rate(self, start: float = 0.0) -> float:
        """AFR over the year starting at ``start`` hours (fraction in [0,1])."""
        return self.failure_probability(start, start + HOURS_PER_YEAR)

    def sample_failure_time(
        self,
        seed: SeedLike = None,
        *,
        start: float = 0.0,
        horizon: float = math.inf,
    ) -> float:
        """Draw a failure time in ``[start, horizon]`` or ``math.inf``.

        Uses inverse-transform sampling on the cumulative hazard: draw
        ``E ~ Exp(1)`` and return the first ``t`` with ``H(start, t) >= E``.
        Returns ``math.inf`` when the node survives past ``horizon``.
        """
        rng = as_generator(seed)
        target = rng.exponential()
        bounded_horizon = horizon if math.isfinite(horizon) else start + 200.0 * HOURS_PER_YEAR
        if self.cumulative_hazard(start, bounded_horizon) < target:
            return math.inf
        return self._invert_cumulative_hazard(start, bounded_horizon, target)

    def _invert_cumulative_hazard(self, start: float, horizon: float, target: float) -> float:
        """Bisection solve of ``H(start, t) == target`` on ``[start, horizon]``."""
        lo, hi = start, horizon
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.cumulative_hazard(start, mid) < target:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-9 * max(1.0, hi):
                break
        return 0.5 * (lo + hi)

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "ScaledCurve":
        """Return this curve with the hazard multiplied by ``factor``."""
        return ScaledCurve(self, factor)

    def __add__(self, other: "FaultCurve") -> "FaultCurve":
        return _SumCurve((self, other))


@dataclass(frozen=True)
class ConstantHazard(FaultCurve):
    """Memoryless (exponential-lifetime) fault curve with fixed hazard rate.

    This is the model behind every number in the paper's §3: a node fails
    within the analysis window with constant probability ``p_u``.
    """

    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour < 0:
            raise InvalidConfigurationError(f"negative hazard rate {self.rate_per_hour}")

    @classmethod
    def from_afr(cls, afr: float) -> "ConstantHazard":
        """Build from an Annual Failure Rate (fraction of a fleet per year)."""
        if not 0.0 <= afr < 1.0:
            raise InvalidProbabilityError(f"AFR must be in [0, 1), got {afr}")
        return cls(rate_per_hour=-math.log1p(-afr) / HOURS_PER_YEAR)

    @classmethod
    def from_window_probability(cls, probability: float, window_hours: float) -> "ConstantHazard":
        """Build the constant curve whose ``window_hours`` failure prob is given."""
        if not 0.0 <= probability < 1.0:
            raise InvalidProbabilityError(f"probability must be in [0, 1), got {probability}")
        if window_hours <= 0:
            raise InvalidConfigurationError(f"window must be positive, got {window_hours}")
        return cls(rate_per_hour=-math.log1p(-probability) / window_hours)

    def hazard(self, t: float) -> float:
        return self.rate_per_hour

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        _check_window(t0, t1)
        return self.rate_per_hour * (t1 - t0)


# An exponential lifetime *is* a constant hazard; the alias exists because
# both names appear in the reliability literature.
ExponentialCurve = ConstantHazard


@dataclass(frozen=True)
class WeibullCurve(FaultCurve):
    """Weibull fault curve: ``h(t) = (k/λ) · (t/λ)^(k-1)``.

    ``shape`` < 1 models infant mortality (decreasing hazard), ``shape`` > 1
    models wear-out (increasing hazard, e.g. aging cores — paper §2), and
    ``shape`` == 1 degenerates to :class:`ConstantHazard`.
    """

    shape: float
    scale_hours: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale_hours <= 0:
            raise InvalidConfigurationError(
                f"Weibull shape/scale must be positive, got {self.shape}/{self.scale_hours}"
            )

    def hazard(self, t: float) -> float:
        if t <= 0:
            # The k<1 hazard diverges at 0; clamp for numerical sanity.
            t = _EPS
        return (self.shape / self.scale_hours) * (t / self.scale_hours) ** (self.shape - 1.0)

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        _check_window(t0, t1)
        return (t1 / self.scale_hours) ** self.shape - (t0 / self.scale_hours) ** self.shape


@dataclass(frozen=True)
class PiecewiseConstantCurve(FaultCurve):
    """Step-function hazard: rate ``rates[i]`` on ``[breakpoints[i], breakpoints[i+1])``.

    ``breakpoints`` must start at 0 and be strictly increasing; the final
    rate extends to infinity.  This is the natural encoding of operational
    risk windows — e.g. an elevated hazard during a software-rollout hour
    (the paper's CrowdStrike example).
    """

    breakpoints: tuple[float, ...]
    rates: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.breakpoints) != len(self.rates):
            raise InvalidConfigurationError("breakpoints and rates must have equal length")
        if not self.breakpoints or self.breakpoints[0] != 0.0:
            raise InvalidConfigurationError("breakpoints must start at 0.0")
        if any(b1 <= b0 for b0, b1 in zip(self.breakpoints, self.breakpoints[1:])):
            raise InvalidConfigurationError("breakpoints must be strictly increasing")
        if any(r < 0 for r in self.rates):
            raise InvalidConfigurationError("hazard rates must be non-negative")

    def hazard(self, t: float) -> float:
        idx = int(np.searchsorted(self.breakpoints, t, side="right")) - 1
        return self.rates[max(idx, 0)]

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        _check_window(t0, t1)
        total = 0.0
        edges = list(self.breakpoints) + [math.inf]
        for i, rate in enumerate(self.rates):
            seg_start, seg_end = edges[i], edges[i + 1]
            overlap = min(t1, seg_end) - max(t0, seg_start)
            if overlap > 0:
                total += rate * overlap
        return total


@dataclass(frozen=True)
class DecayingHazard(FaultCurve):
    """Exponentially decaying hazard: ``h(t) = (weight/τ) · exp(-t/τ)``.

    The cumulative hazard saturates at ``weight``, so it models a bounded
    pool of defects flushed out over timescale ``tau_hours`` — the natural
    infant-mortality (burn-in) component.
    """

    weight: float
    tau_hours: float

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise InvalidConfigurationError("weight must be non-negative")
        if self.tau_hours <= 0:
            raise InvalidConfigurationError("tau must be positive")

    def hazard(self, t: float) -> float:
        return (self.weight / self.tau_hours) * math.exp(-max(t, 0.0) / self.tau_hours)

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        _check_window(t0, t1)
        return self.weight * (math.exp(-t0 / self.tau_hours) - math.exp(-t1 / self.tau_hours))


@dataclass(frozen=True)
class BathtubCurve(FaultCurve):
    """Classic bathtub hazard: infancy + useful life + wear-out (paper §2).

    Modelled as the superposition of a decaying burn-in hazard with total
    mass ``infant_weight`` (≈ fraction of machines lost to infancy — the
    default 2% matches published disk studies), a constant baseline
    (useful life) and an increasing Weibull (wear-out).  The defaults
    produce a disk-like curve with a ~4% AFR useful-life floor.
    """

    infant_scale_hours: float = 2_000.0
    infant_weight: float = 0.02
    baseline_rate_per_hour: float = 4.7e-6  # ≈ 4% AFR useful-life floor
    wearout_shape: float = 4.0
    wearout_scale_hours: float = 45_000.0  # ≈ 5 years

    def __post_init__(self) -> None:
        for name in ("infant_scale_hours", "wearout_shape", "wearout_scale_hours"):
            if getattr(self, name) <= 0:
                raise InvalidConfigurationError(f"{name} must be positive")
        if self.baseline_rate_per_hour < 0:
            raise InvalidConfigurationError("baseline rate must be non-negative")
        if self.infant_weight < 0:
            raise InvalidConfigurationError("infant_weight must be non-negative")

    def _components(self) -> tuple[FaultCurve, ...]:
        return (
            DecayingHazard(self.infant_weight, self.infant_scale_hours),
            ConstantHazard(self.baseline_rate_per_hour),
            WeibullCurve(self.wearout_shape, self.wearout_scale_hours),
        )

    def hazard(self, t: float) -> float:
        return sum(c.hazard(t) for c in self._components())

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        return sum(c.cumulative_hazard(t0, t1) for c in self._components())


@dataclass(frozen=True)
class EmpiricalCurve(FaultCurve):
    """Hazard interpolated from telemetry observations.

    ``times_hours`` / ``hazards_per_hour`` are sample points; the hazard is
    linearly interpolated between them and held constant beyond the ends.
    This is the output shape of :func:`repro.telemetry.ingest.empirical_hazard`.
    """

    times_hours: tuple[float, ...]
    hazards_per_hour: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times_hours) != len(self.hazards_per_hour):
            raise InvalidConfigurationError("times and hazards must have equal length")
        if len(self.times_hours) < 2:
            raise InvalidConfigurationError("empirical curve needs at least two points")
        if any(t1 <= t0 for t0, t1 in zip(self.times_hours, self.times_hours[1:])):
            raise InvalidConfigurationError("times must be strictly increasing")
        if any(h < 0 for h in self.hazards_per_hour):
            raise InvalidConfigurationError("hazards must be non-negative")

    def hazard(self, t: float) -> float:
        return float(np.interp(t, self.times_hours, self.hazards_per_hour))

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        _check_window(t0, t1)
        if t1 == t0:
            return 0.0
        # Integrate the piecewise-linear interpolant exactly via trapezoid
        # rule over the knots that fall inside the window.
        knots = [t for t in self.times_hours if t0 < t < t1]
        grid = np.array([t0, *knots, t1])
        values = np.array([self.hazard(t) for t in grid])
        return float(np.trapezoid(values, grid))


@dataclass(frozen=True)
class ScaledCurve(FaultCurve):
    """A curve whose hazard is a constant multiple of another curve's.

    Useful for "this SKU is 3× flakier than that one" style modelling, and
    for deriving the rare-Byzantine component of a mixture from a crash
    curve (paper §2: Byzantine faults ≈ 0.01% vs 4% AFR crashes).
    """

    base: FaultCurve
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise InvalidConfigurationError(f"scale factor must be non-negative, got {self.factor}")

    def hazard(self, t: float) -> float:
        return self.factor * self.base.hazard(t)

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        return self.factor * self.base.cumulative_hazard(t0, t1)


@dataclass(frozen=True)
class _SumCurve(FaultCurve):
    """Superposition of independent failure processes (internal)."""

    parts: tuple[FaultCurve, ...]

    def hazard(self, t: float) -> float:
        return sum(p.hazard(t) for p in self.parts)

    def cumulative_hazard(self, t0: float, t1: float) -> float:
        return sum(p.cumulative_hazard(t0, t1) for p in self.parts)


def curve_from_samples(times_hours: Sequence[float], hazards: Sequence[float]) -> EmpiricalCurve:
    """Convenience constructor for :class:`EmpiricalCurve` from sequences."""
    return EmpiricalCurve(tuple(float(t) for t in times_hours), tuple(float(h) for h in hazards))
