"""Probabilistic failure detection — φ-accrual (paper §4).

"Probabilistic approaches can be further used to design new types of
failure detectors, which are more realistic and accurate."  The φ-accrual
detector (Hayashibara et al.) is the canonical probabilistic detector: it
outputs a continuous suspicion level

    φ(t) = -log10( P(heartbeat arrives after t | arrival history) )

instead of a binary verdict, letting callers pick their own
false-positive/detection-latency point — the same nines-style thinking the
paper advocates for consensus guarantees.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import InvalidConfigurationError


@dataclass(frozen=True)
class SuspicionLevel:
    """φ value plus the derived binary verdict at a threshold."""

    phi: float
    threshold: float

    @property
    def suspected(self) -> bool:
        return self.phi >= self.threshold

    @property
    def false_positive_probability(self) -> float:
        """P(node actually alive despite φ at this level) = 10^-φ."""
        return 10.0 ** (-self.phi)


class PhiAccrualDetector:
    """φ-accrual failure detector over one monitored node's heartbeats.

    Inter-arrival times are modelled as a normal distribution fitted to a
    sliding window; φ is the -log10 of the normal tail beyond the current
    silence.  ``min_std`` guards degenerate windows (perfectly regular
    heartbeats would make any delay infinitely suspicious).
    """

    def __init__(
        self,
        *,
        window_size: int = 200,
        threshold: float = 8.0,
        min_std: float = 0.05,
    ):
        if window_size < 2:
            raise InvalidConfigurationError("window_size must be at least 2")
        if threshold <= 0:
            raise InvalidConfigurationError("threshold must be positive")
        if min_std <= 0:
            raise InvalidConfigurationError("min_std must be positive")
        self._intervals: deque[float] = deque(maxlen=window_size)
        self._last_arrival: float | None = None
        self.threshold = threshold
        self._min_std = min_std

    @property
    def observed_heartbeats(self) -> int:
        return len(self._intervals)

    def heartbeat(self, arrival_time: float) -> None:
        """Record a heartbeat arrival (monotonically increasing times)."""
        if self._last_arrival is not None:
            interval = arrival_time - self._last_arrival
            if interval < 0:
                raise InvalidConfigurationError("heartbeat times must be non-decreasing")
            self._intervals.append(interval)
        self._last_arrival = arrival_time

    def _statistics(self) -> tuple[float, float]:
        intervals = list(self._intervals)
        mean = sum(intervals) / len(intervals)
        variance = sum((x - mean) ** 2 for x in intervals) / max(len(intervals) - 1, 1)
        std = max(math.sqrt(variance), self._min_std * max(mean, 1e-9))
        return mean, std

    def phi(self, now: float) -> float:
        """Current suspicion level; 0 while the history is too short."""
        if self._last_arrival is None or len(self._intervals) < 2:
            return 0.0
        elapsed = now - self._last_arrival
        if elapsed < 0:
            raise InvalidConfigurationError("now precedes the last heartbeat")
        mean, std = self._statistics()
        z = (elapsed - mean) / std
        tail = _normal_sf(z)
        if tail <= 0.0:
            return float("inf")
        return -math.log10(tail)

    def level(self, now: float) -> SuspicionLevel:
        return SuspicionLevel(phi=self.phi(now), threshold=self.threshold)

    def time_to_suspicion(self, phi_target: float | None = None) -> float:
        """Silence duration after which φ reaches the (given or own) threshold."""
        target = self.threshold if phi_target is None else phi_target
        if target <= 0:
            raise InvalidConfigurationError("phi target must be positive")
        if len(self._intervals) < 2:
            return float("inf")
        mean, std = self._statistics()
        z = _normal_isf(10.0 ** (-target))
        return mean + z * std


def _normal_sf(z: float) -> float:
    """Standard normal survival function."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def _normal_isf(p: float) -> float:
    """Inverse survival function via scipy (exact, no approximation drift)."""
    from scipy import stats

    return float(stats.norm.isf(p))
