"""End-to-end guarantee translation (paper §4, challenge 2).

"Applications care about end-to-end reliability guarantees, where
consensus is a small part of the system.  Traditional reliability
guarantees, expressed in terms of nines of availability or durability, do
not align well with even the probabilistic type of safety and liveness
offered by consensus."

This module performs the translation the paper asks for:

* **availability** — a live consensus core is not automatically available:
  every leader failure costs a detection + election outage, and losing
  quorum costs the full repair time.  We combine the Markov repair model
  (long outages) with the leader-churn model (short outages) into annual
  downtime and availability nines.
* **durability** — an unsafe or quorum-wiped window may still preserve
  data (both forks retained), and a live system may still lose data.
  We translate per-window data-loss probability into S3-style annual
  durability nines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.result import nines
from repro.errors import InvalidConfigurationError
from repro.faults.afr import afr_to_hourly_rate
from repro.faults.curves import HOURS_PER_YEAR


@dataclass(frozen=True)
class AvailabilityEstimate:
    """Annualised availability broken down by outage class."""

    quorum_loss_downtime_hours: float
    election_downtime_hours: float

    @property
    def total_downtime_hours(self) -> float:
        return self.quorum_loss_downtime_hours + self.election_downtime_hours

    @property
    def availability(self) -> float:
        return max(0.0, 1.0 - self.total_downtime_hours / HOURS_PER_YEAR)

    @property
    def availability_nines(self) -> float:
        return nines(self.availability)

    @property
    def downtime_minutes_per_year(self) -> float:
        return self.total_downtime_hours * 60.0


def estimate_availability(
    *,
    n: int,
    node_afr: float,
    mean_time_to_repair_hours: float,
    election_seconds: float,
    quorum_size: int | None = None,
) -> AvailabilityEstimate:
    """End-to-end availability of a consensus-backed service.

    Two outage classes:

    * **quorum loss** — steady-state unavailability of the repairable
      cluster, answered by the engine's ``availability`` backend (an
      :class:`~repro.engine.AvailabilityQuery` over the same CTMC the
      Markov builders solve — bit-identical, but batched and memoised
      across repeated planner sweeps) times the year;
    * **leader elections** — every node failure may depose a leader; we
      charge ``election_seconds`` per node failure scaled by the chance
      the failed node was leading (1/n under rotation).

    The decomposition matches the paper's point that a ">0% available"
    live protocol can still miss availability SLOs when recovery is slow.
    """
    if n <= 0:
        raise InvalidConfigurationError("n must be positive")
    if not 0.0 <= node_afr < 1.0:
        raise InvalidConfigurationError("node_afr must be in [0, 1)")
    if mean_time_to_repair_hours <= 0 or election_seconds < 0:
        raise InvalidConfigurationError("repair time must be positive, election non-negative")
    quorum = quorum_size if quorum_size is not None else n // 2 + 1
    if not 0 < quorum <= n:
        raise InvalidConfigurationError(f"quorum {quorum} outside (0, {n}]")

    from repro.engine import AvailabilityQuery, default_engine

    rate = afr_to_hourly_rate(node_afr)
    query = AvailabilityQuery.for_cluster(
        n,
        afr=node_afr,
        mttr_hours=mean_time_to_repair_hours,
        quorum_size=quorum,
        label=f"slo/n={n}",
    )
    answer = default_engine().run_query(query).value
    unavailability = answer.unavailability
    quorum_loss_hours = unavailability * HOURS_PER_YEAR

    failures_per_year = n * rate * HOURS_PER_YEAR
    leader_failures = failures_per_year / n  # rotation: 1/n of failures hit the leader
    election_hours = leader_failures * election_seconds / 3600.0
    return AvailabilityEstimate(
        quorum_loss_downtime_hours=quorum_loss_hours,
        election_downtime_hours=election_hours,
    )


@dataclass(frozen=True)
class DurabilityEstimate:
    """Annualised durability from per-window loss probability."""

    loss_probability_per_window: float
    windows_per_year: float

    @property
    def annual_durability(self) -> float:
        survive = (1.0 - self.loss_probability_per_window) ** self.windows_per_year
        return survive

    @property
    def durability_nines(self) -> float:
        return nines(self.annual_durability)


def estimate_durability(
    loss_probability_per_window: float, *, window_hours: float
) -> DurabilityEstimate:
    """Translate a per-window data-loss probability into annual nines.

    This is how an S3-style "eleven nines of durability" statement is
    assembled from the per-window analysis of
    :mod:`repro.protocols.reliability_aware` or the Markov MTTDL view.
    """
    if not 0.0 <= loss_probability_per_window <= 1.0:
        raise InvalidConfigurationError("loss probability must be in [0, 1]")
    if window_hours <= 0:
        raise InvalidConfigurationError("window must be positive")
    return DurabilityEstimate(
        loss_probability_per_window=loss_probability_per_window,
        windows_per_year=HOURS_PER_YEAR / window_hours,
    )


@dataclass(frozen=True)
class SLOReport:
    """One deployment's end-to-end guarantee sheet."""

    availability: AvailabilityEstimate
    durability: DurabilityEstimate

    def summary(self) -> str:
        return (
            f"availability: {self.availability.availability:.6f} "
            f"({self.availability.availability_nines:.2f} nines, "
            f"{self.availability.downtime_minutes_per_year:.1f} min/yr down — "
            f"{self.availability.quorum_loss_downtime_hours * 60:.1f} min quorum loss, "
            f"{self.availability.election_downtime_hours * 60:.1f} min elections); "
            f"durability: {self.durability.durability_nines:.1f} nines/yr"
        )


def slo_report(
    *,
    n: int,
    node_afr: float,
    mean_time_to_repair_hours: float,
    election_seconds: float,
    loss_probability_per_window: float,
    window_hours: float,
    quorum_size: int | None = None,
) -> SLOReport:
    """Assemble the full end-to-end guarantee sheet for a deployment."""
    return SLOReport(
        availability=estimate_availability(
            n=n,
            node_afr=node_afr,
            mean_time_to_repair_hours=mean_time_to_repair_hours,
            election_seconds=election_seconds,
            quorum_size=quorum_size,
        ),
        durability=estimate_durability(
            loss_probability_per_window, window_hours=window_hours
        ),
    )
