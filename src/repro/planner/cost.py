"""Cost, energy and carbon models for fleet planning (paper §3).

"If these resources are 10× cheaper (e.g., spot instances, older
hardware), this yields a 3× reduction in cost."  This module carries the
price-book side of that argument: node SKUs with failure probability,
hourly price, power draw and embodied carbon, and deployment plans that
aggregate them.  Default SKUs follow the paper's assumptions (reliability
proportional to price, 10× spot discount at 8× the failure rate).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidConfigurationError, InvalidProbabilityError
from repro.faults.mixture import Fleet, NodeModel


@dataclass(frozen=True)
class NodeSKU:
    """A purchasable node class.

    ``p_fail`` is the per-analysis-window failure probability (the paper's
    ``p_u``); cost and sustainability metadata feed the optimizer.
    """

    name: str
    p_fail: float
    price_per_hour: float
    power_watts: float = 150.0
    embodied_carbon_kg: float = 1_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_fail <= 1.0:
            raise InvalidProbabilityError(f"p_fail must be in [0, 1], got {self.p_fail}")
        if self.price_per_hour < 0 or self.power_watts < 0 or self.embodied_carbon_kg < 0:
            raise InvalidConfigurationError("cost/power/carbon must be non-negative")

    def node_model(self, *, byzantine_fraction: float = 0.0) -> NodeModel:
        """Project the SKU onto the analysis window's node model."""
        return NodeModel(
            p_crash=self.p_fail * (1.0 - byzantine_fraction),
            p_byzantine=self.p_fail * byzantine_fraction,
            label=self.name,
            cost_per_hour=self.price_per_hour,
        )

    def discounted(self, price_factor: float) -> "NodeSKU":
        """Same hardware at a different price (e.g. spot vs on-demand)."""
        if price_factor < 0:
            raise InvalidConfigurationError("price_factor must be non-negative")
        return replace(
            self,
            name=f"{self.name}@x{price_factor:g}",
            price_per_hour=self.price_per_hour * price_factor,
        )


#: The paper's §1/§3 cost-equivalence scenario: reliable on-demand nodes at
#: 1% window failure, versus 10×-cheaper spot-class nodes at 8%.
RELIABLE_SKU = NodeSKU("reliable-ondemand", p_fail=0.01, price_per_hour=1.00)
SPOT_SKU = NodeSKU("spot", p_fail=0.08, price_per_hour=0.10, power_watts=150.0)
MIDGRADE_SKU = NodeSKU("midgrade", p_fail=0.04, price_per_hour=0.40)
REFURB_SKU = NodeSKU(
    "refurbished", p_fail=0.02, price_per_hour=0.55, embodied_carbon_kg=0.0
)

DEFAULT_PRICE_BOOK: tuple[NodeSKU, ...] = (RELIABLE_SKU, MIDGRADE_SKU, REFURB_SKU, SPOT_SKU)


@dataclass(frozen=True)
class DeploymentPlan:
    """A homogeneous deployment: ``count`` nodes of one SKU."""

    sku: NodeSKU
    count: int

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise InvalidConfigurationError(f"count must be positive, got {self.count}")

    def fleet(self, *, byzantine_fraction: float = 0.0) -> Fleet:
        return Fleet((self.sku.node_model(byzantine_fraction=byzantine_fraction),) * self.count)

    @property
    def hourly_cost(self) -> float:
        return self.sku.price_per_hour * self.count

    @property
    def annual_cost(self) -> float:
        from repro.faults.curves import HOURS_PER_YEAR

        return self.hourly_cost * HOURS_PER_YEAR

    @property
    def power_watts(self) -> float:
        return self.sku.power_watts * self.count

    @property
    def embodied_carbon_kg(self) -> float:
        return self.sku.embodied_carbon_kg * self.count

    def annual_energy_kwh(self) -> float:
        from repro.faults.curves import HOURS_PER_YEAR

        return self.power_watts * HOURS_PER_YEAR / 1_000.0

    def describe(self) -> str:
        return (
            f"{self.count} × {self.sku.name} (p_fail={self.sku.p_fail:.2%}) — "
            f"${self.hourly_cost:.2f}/h, {self.power_watts:.0f} W"
        )


def cost_ratio(baseline: DeploymentPlan, candidate: DeploymentPlan) -> float:
    """Baseline-over-candidate hourly cost ratio (>1 means candidate cheaper)."""
    if candidate.hourly_cost <= 0:
        raise InvalidConfigurationError("candidate plan has zero cost; ratio undefined")
    return baseline.hourly_cost / candidate.hourly_cost
