"""Committee-sampled deployments (paper §4, third step).

"In deployments where nodes' reliability exceeds application requirements,
probabilistic protocols can sample committees."  These helpers answer the
planning question: *if I run consensus on a random k-of-n committee, what
Safe/Live guarantee do I actually get — and what is the smallest committee
meeting my target?*

Reliability of a sampled committee is the expectation of the base
protocol's reliability over the committee draw: computed exactly by
enumerating committees for small ``n`` (or collapsing by symmetry for
homogeneous fleets), and by seeded sampling otherwise.

Committee evaluation runs on the reliability engine: every candidate
committee of one assessment shares the same spec and size, so the whole
draw — thousands of sub-fleets — is submitted as one
:class:`~repro.engine.ScenarioSet` and lands in a single shared
counting-DP sweep, with duplicate committees answered from the engine's
cache.  Per-committee values are bit-identical to scalar evaluation.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Sequence

from repro._rng import SeedLike, as_generator
from repro.analysis.counting import counting_reliability
from repro.analysis.result import from_nines
from repro.engine import Scenario, default_engine
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet
from repro.protocols.base import ProtocolSpec

SpecFactory = Callable[[int], ProtocolSpec]

#: Enumerate committees exactly up to this many combinations.
_EXACT_COMMITTEE_LIMIT = 50_000


@dataclass(frozen=True)
class CommitteeAssessment:
    """Expected reliability of running the protocol on a sampled committee."""

    n: int
    committee_size: int
    safe: float
    live: float
    safe_and_live: float
    method: str


def _subfleet(fleet: Fleet, members: tuple[int, ...]) -> Fleet:
    return Fleet(tuple(fleet[i] for i in members))


def _mean_committee_reliability(
    spec: ProtocolSpec, fleet: Fleet, committees: Sequence[tuple[int, ...]]
) -> tuple[float, float, float]:
    """Mean Safe/Live/Safe&Live over candidate committees, engine-batched.

    One :class:`ScenarioSet` for all committees: same spec, same size, so
    the engine runs a single shared DP sweep over the distinct sub-fleets.
    The accumulation order matches the historical per-committee loop, so
    the means are bit-identical.
    """
    scenarios = [
        Scenario(spec=spec, fleet=_subfleet(fleet, members), method="counting")
        for members in committees
    ]
    results = default_engine().run(scenarios).results
    safe = live = both = 0.0
    for result in results:
        safe += result.safe.value
        live += result.live.value
        both += result.safe_and_live.value
    count = len(committees)
    return safe / count, live / count, both / count


def committee_reliability(
    spec_factory: SpecFactory,
    fleet: Fleet,
    committee_size: int,
    *,
    samples: int = 2_000,
    seed: SeedLike = None,
) -> CommitteeAssessment:
    """Expected Safe/Live of the protocol over a uniform committee draw.

    Homogeneous fleets collapse to a single evaluation; heterogeneous ones
    are enumerated exactly when ``C(n, k)`` is small and sampled otherwise.
    """
    if not 0 < committee_size <= fleet.n:
        raise InvalidConfigurationError(
            f"committee_size={committee_size} outside (0, {fleet.n}]"
        )
    spec = spec_factory(committee_size)
    if not spec.symmetric:
        raise InvalidConfigurationError("committee analysis needs a symmetric base spec")

    if fleet.is_homogeneous:
        result = counting_reliability(spec, _subfleet(fleet, tuple(range(committee_size))))
        return CommitteeAssessment(
            n=fleet.n,
            committee_size=committee_size,
            safe=result.safe.value,
            live=result.live.value,
            safe_and_live=result.safe_and_live.value,
            method="homogeneous",
        )

    total_committees = math.comb(fleet.n, committee_size)
    if total_committees <= _EXACT_COMMITTEE_LIMIT:
        committees = list(itertools.combinations(range(fleet.n), committee_size))
        safe, live, both = _mean_committee_reliability(spec, fleet, committees)
        return CommitteeAssessment(
            n=fleet.n,
            committee_size=committee_size,
            safe=safe,
            live=live,
            safe_and_live=both,
            method=f"exact over {total_committees} committees",
        )

    # Committee draws keep the historical generator stream; only the
    # evaluations are batched.
    rng = as_generator(seed)
    committees = [
        tuple(int(i) for i in rng.choice(fleet.n, size=committee_size, replace=False))
        for _ in range(samples)
    ]
    safe, live, both = _mean_committee_reliability(spec, fleet, committees)
    return CommitteeAssessment(
        n=fleet.n,
        committee_size=committee_size,
        safe=safe,
        live=live,
        safe_and_live=both,
        method=f"sampled over {samples} committees",
    )


def smallest_committee_for_target(
    spec_factory: SpecFactory,
    fleet: Fleet,
    target_nines: float,
    *,
    sizes: range | None = None,
    seed: SeedLike = None,
) -> CommitteeAssessment | None:
    """Smallest odd committee whose expected Safe&Live meets the target.

    Returns ``None`` when even the full cluster misses it — the signal to
    buy better nodes instead of bigger committees.
    """
    if target_nines <= 0:
        raise InvalidConfigurationError("target_nines must be positive")
    target = from_nines(target_nines)
    scan = sizes if sizes is not None else range(1, fleet.n + 1, 2)
    for size in scan:
        if not 0 < size <= fleet.n:
            continue
        assessment = committee_reliability(spec_factory, fleet, size, seed=seed)
        if assessment.safe_and_live >= target:
            return assessment
    return None
