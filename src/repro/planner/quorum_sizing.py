"""Dynamic quorum sizing (paper §4: "choose quorum sizes dynamically").

Given fault curves and a nines target, pick the smallest quorums that hit
the target — for sampled (probabilistic) quorums, for view-change trigger
quorums ("Q_vc_t of size f+1 is overkill", §3), and for flexible
(persistence, view-change) threshold pairs trading safety against
liveness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.counting import counting_reliability
from repro.analysis.result import from_nines
from repro.errors import InvalidConfigurationError
from repro.faults.mixture import Fleet
from repro.protocols.raft import FlexibleRaftSpec
from repro.quorums.committee import required_committee_size
from repro.quorums.probabilistic import (
    minimum_quorum_size_for_correct_intersection,
    minimum_quorum_size_for_intersection,
)


@dataclass(frozen=True)
class QuorumSizing:
    """Recommended quorum sizes for one deployment and target."""

    n: int
    target_nines: float
    sampled_quorum: int
    sampled_quorum_correct_overlap: int
    view_change_trigger: int

    def describe(self) -> str:
        return (
            f"n={self.n}, target={self.target_nines} nines: sampled quorum {self.sampled_quorum} "
            f"(correct-overlap {self.sampled_quorum_correct_overlap}), "
            f"vc-trigger {self.view_change_trigger}"
        )


def size_quorums(n: int, p_fail: float, target_nines: float) -> QuorumSizing:
    """Smallest quorum sizes meeting ``target_nines`` for a uniform fleet.

    * ``sampled_quorum`` — two uniformly sampled quorums overlap w.p. ≥ target;
    * ``sampled_quorum_correct_overlap`` — they overlap in a *correct* node;
    * ``view_change_trigger`` — a sampled trigger set contains ≥1 correct
      node (the paper's N=100 example: 5 nodes already give ten nines,
      versus the f+1 = 34 worst-case rule).
    """
    if n <= 0:
        raise InvalidConfigurationError(f"n must be positive, got {n}")
    if not 0.0 < p_fail < 1.0:
        raise InvalidConfigurationError("p_fail must lie in (0, 1)")
    if target_nines <= 0:
        raise InvalidConfigurationError("target_nines must be positive")
    return QuorumSizing(
        n=n,
        target_nines=target_nines,
        sampled_quorum=minimum_quorum_size_for_intersection(n, target_nines),
        sampled_quorum_correct_overlap=minimum_quorum_size_for_correct_intersection(
            n, p_fail, target_nines
        ),
        view_change_trigger=min(n, required_committee_size(p_fail, target_nines)),
    )


@dataclass(frozen=True)
class FlexiblePairChoice:
    """A (q_per, q_vc) pair with its exact safe&live probability."""

    q_per: int
    q_vc: int
    safe_and_live: float


def best_flexible_pair(
    fleet: Fleet, *, target_nines: float | None = None
) -> FlexiblePairChoice:
    """Exhaustively pick the structurally safe (q_per, q_vc) maximising S&L.

    Scans every Thm 3.2-safe pair, computes exact reliability with the
    counting estimator, and returns the best.  With ``target_nines`` set,
    the *smallest-quorum* pair meeting the target wins instead (smaller
    quorums = lower latency), falling back to the max-reliability pair.
    """
    n = fleet.n
    best: FlexiblePairChoice | None = None
    smallest_meeting: FlexiblePairChoice | None = None
    target = None if target_nines is None else from_nines(target_nines)
    for q_vc in range(n // 2 + 1, n + 1):
        for q_per in range(n - q_vc + 1, n + 1):
            spec = FlexibleRaftSpec(n, q_per, q_vc)
            if not spec.structurally_safe:
                continue
            result = counting_reliability(spec, fleet)
            choice = FlexiblePairChoice(q_per, q_vc, result.safe_and_live.value)
            if best is None or choice.safe_and_live > best.safe_and_live:
                best = choice
            if target is not None and choice.safe_and_live >= target:
                if smallest_meeting is None or (q_per + q_vc) < (
                    smallest_meeting.q_per + smallest_meeting.q_vc
                ):
                    smallest_meeting = choice
    if best is None:
        raise InvalidConfigurationError(f"no structurally safe quorum pair for n={n}")
    return smallest_meeting if smallest_meeting is not None else best
