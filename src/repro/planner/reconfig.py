"""Preemptive reconfiguration policy (paper §4).

"Predictive models for node reliability enable preemptive reconfiguration,
mitigating potential failures from jeopardizing safety or liveness."  The
policy here watches per-node fault curves over a rolling window: when the
deployment's projected Safe&Live probability dips below target, it greedily
replaces the highest-risk nodes with spares until the target is restored.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.counting import counting_reliability
from repro.analysis.result import from_nines
from repro.errors import InvalidConfigurationError
from repro.faults.curves import FaultCurve
from repro.faults.mixture import Fleet, NodeModel
from repro.protocols.base import ProtocolSpec


@dataclass(frozen=True)
class Replacement:
    """One node swap the policy decided on."""

    node_index: int
    old_p_fail: float
    new_p_fail: float


@dataclass(frozen=True)
class ReconfigDecision:
    """Outcome of one policy evaluation."""

    window_start_hours: float
    reliability_before: float
    reliability_after: float
    replacements: tuple[Replacement, ...] = field(default_factory=tuple)

    @property
    def acted(self) -> bool:
        return bool(self.replacements)


class PreemptiveReconfigPolicy:
    """Greedy fault-curve-driven replacement policy.

    Parameters
    ----------
    spec_factory:
        Protocol spec constructor (size → spec); sizes stay constant, only
        node quality changes.
    target_nines:
        Safe&Live target the deployment must keep over each window.
    spare:
        Node model of the replacement stock (assumed plentiful).
    max_replacements_per_window:
        Operational budget per evaluation (reconfiguration is costly, §2).
    """

    def __init__(
        self,
        spec_factory: Callable[[int], ProtocolSpec],
        target_nines: float,
        spare: NodeModel,
        *,
        max_replacements_per_window: int = 2,
    ):
        if target_nines <= 0:
            raise InvalidConfigurationError("target_nines must be positive")
        if max_replacements_per_window < 0:
            raise InvalidConfigurationError("replacement budget must be non-negative")
        self._spec_factory = spec_factory
        self._target = from_nines(target_nines)
        self._spare = spare
        self._budget = max_replacements_per_window

    def project_fleet(
        self,
        curves: Sequence[FaultCurve],
        window_start_hours: float,
        window_hours: float,
    ) -> Fleet:
        """Fleet as it will look over the upcoming window."""
        nodes = tuple(
            NodeModel(
                p_crash=curve.failure_probability(
                    window_start_hours, window_start_hours + window_hours
                )
            )
            for curve in curves
        )
        return Fleet(nodes)

    def evaluate(
        self,
        curves: Sequence[FaultCurve],
        window_start_hours: float,
        window_hours: float,
    ) -> ReconfigDecision:
        """Decide replacements for the window starting at ``window_start_hours``."""
        if window_hours <= 0:
            raise InvalidConfigurationError("window must be positive")
        fleet = self.project_fleet(curves, window_start_hours, window_hours)
        spec = self._spec_factory(fleet.n)
        before = counting_reliability(spec, fleet).safe_and_live.value

        replacements: list[Replacement] = []
        current = fleet
        reliability = before
        while reliability < self._target and len(replacements) < self._budget:
            candidate_index = max(
                range(current.n), key=lambda i: current[i].p_fail
            )
            worst = current[candidate_index]
            if worst.p_fail <= self._spare.p_fail:
                break  # spares are no better than what we have
            current = current.replace(candidate_index, self._spare)
            reliability = counting_reliability(spec, current).safe_and_live.value
            replacements.append(
                Replacement(
                    node_index=candidate_index,
                    old_p_fail=worst.p_fail,
                    new_p_fail=self._spare.p_fail,
                )
            )
        return ReconfigDecision(
            window_start_hours=window_start_hours,
            reliability_before=before,
            reliability_after=reliability,
            replacements=tuple(replacements),
        )

    def simulate_schedule(
        self,
        curves: Sequence[FaultCurve],
        *,
        total_hours: float,
        window_hours: float,
    ) -> list[ReconfigDecision]:
        """Run the policy over consecutive windows (curves stay attached to slots).

        Replaced slots get a constant-hazard curve matching the spare's
        window probability from the moment of replacement.
        """
        from repro.faults.curves import ConstantHazard

        if total_hours <= 0 or window_hours <= 0:
            raise InvalidConfigurationError("durations must be positive")
        working = list(curves)
        decisions = []
        start = 0.0
        while start < total_hours:
            decision = self.evaluate(working, start, window_hours)
            for replacement in decision.replacements:
                working[replacement.node_index] = ConstantHazard.from_window_probability(
                    self._spare.p_fail, window_hours
                )
            decisions.append(decision)
            start += window_hours
        return decisions
