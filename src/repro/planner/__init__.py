"""Probability-native planning toolbox (paper §4).

* :mod:`repro.planner.cost` — SKUs, price books, deployment plans;
* :mod:`repro.planner.optimizer` — cheapest plan meeting a nines target;
* :mod:`repro.planner.quorum_sizing` — dynamic quorum/committee sizing;
* :mod:`repro.planner.leader` — reliability-aware leader selection;
* :mod:`repro.planner.reconfig` — preemptive reconfiguration policy;
* :mod:`repro.planner.detector` — φ-accrual probabilistic failure detector.
"""

from repro.planner.committee import (
    CommitteeAssessment,
    committee_reliability,
    smallest_committee_for_target,
)
from repro.planner.cost import (
    DEFAULT_PRICE_BOOK,
    MIDGRADE_SKU,
    REFURB_SKU,
    RELIABLE_SKU,
    SPOT_SKU,
    DeploymentPlan,
    NodeSKU,
    cost_ratio,
)
from repro.planner.detector import PhiAccrualDetector, SuspicionLevel
from repro.planner.leader import (
    LeaderPolicyComparison,
    LeaderRanking,
    compare_leader_policies,
    expected_leader_tenure_hours,
    expected_view_changes_per_year,
    rank_leaders,
    rank_leaders_by_curves,
)
from repro.planner.optimizer import (
    OptimizationOutcome,
    PlanEvaluation,
    equivalent_reliability_size,
    evaluate_plan,
    find_cheapest_plan,
)
from repro.planner.quorum_sizing import (
    FlexiblePairChoice,
    QuorumSizing,
    best_flexible_pair,
    size_quorums,
)
from repro.planner.slo import (
    AvailabilityEstimate,
    DurabilityEstimate,
    SLOReport,
    estimate_availability,
    estimate_durability,
    slo_report,
)
from repro.planner.reconfig import (
    PreemptiveReconfigPolicy,
    ReconfigDecision,
    Replacement,
)

__all__ = [
    "NodeSKU",
    "CommitteeAssessment",
    "committee_reliability",
    "smallest_committee_for_target",
    "DeploymentPlan",
    "cost_ratio",
    "DEFAULT_PRICE_BOOK",
    "RELIABLE_SKU",
    "SPOT_SKU",
    "MIDGRADE_SKU",
    "REFURB_SKU",
    "evaluate_plan",
    "find_cheapest_plan",
    "equivalent_reliability_size",
    "PlanEvaluation",
    "OptimizationOutcome",
    "size_quorums",
    "best_flexible_pair",
    "QuorumSizing",
    "FlexiblePairChoice",
    "rank_leaders",
    "rank_leaders_by_curves",
    "expected_leader_tenure_hours",
    "expected_view_changes_per_year",
    "compare_leader_policies",
    "LeaderRanking",
    "LeaderPolicyComparison",
    "PreemptiveReconfigPolicy",
    "ReconfigDecision",
    "Replacement",
    "PhiAccrualDetector",
    "AvailabilityEstimate",
    "DurabilityEstimate",
    "SLOReport",
    "estimate_availability",
    "estimate_durability",
    "slo_report",
    "SuspicionLevel",
]
