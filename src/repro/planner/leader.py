"""Reliability-aware leader selection (paper §4 second step).

"Probabilistic approaches can choose leaders among the most reliable
nodes, avoiding more failure-prone nodes" — improving tail latency and
reducing view-change churn.  This module ranks candidate leaders by
survival probability over a leadership horizon, computes expected tenure
from fault curves, and quantifies the view-change-rate win over
reliability-oblivious (round-robin) election.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import InvalidConfigurationError
from repro.faults.curves import FaultCurve
from repro.faults.mixture import Fleet


@dataclass(frozen=True)
class LeaderRanking:
    """Nodes ordered best-leader-first with their survival probabilities."""

    order: tuple[int, ...]
    survival: tuple[float, ...]  # aligned with `order`

    @property
    def best(self) -> int:
        return self.order[0]


def rank_leaders(fleet: Fleet) -> LeaderRanking:
    """Rank nodes by window survival probability (ties keep index order)."""
    if fleet.n == 0:
        raise InvalidConfigurationError("cannot rank leaders of an empty fleet")
    order = fleet.sorted_by_reliability()
    survival = tuple(1.0 - fleet[i].p_fail for i in order)
    return LeaderRanking(order=order, survival=survival)


def rank_leaders_by_curves(
    curves: Sequence[FaultCurve], horizon_hours: float, *, start_hours: float = 0.0
) -> LeaderRanking:
    """Rank by survival over a leadership horizon computed from fault curves.

    Time-awareness matters: a wear-out-stage node may out-rank a
    burn-in-stage node over short horizons and lose over long ones.
    """
    if horizon_hours <= 0:
        raise InvalidConfigurationError("horizon must be positive")
    survival_by_index = [
        (i, curve.survival_probability(start_hours, start_hours + horizon_hours))
        for i, curve in enumerate(curves)
    ]
    survival_by_index.sort(key=lambda pair: (-pair[1], pair[0]))
    return LeaderRanking(
        order=tuple(i for i, _ in survival_by_index),
        survival=tuple(s for _, s in survival_by_index),
    )


def expected_leader_tenure_hours(
    curve: FaultCurve, *, start_hours: float = 0.0, horizon_hours: float = 10.0 * 8766.0
) -> float:
    """E[time to leader failure] = ∫ S(t) dt, truncated at the horizon.

    Numeric integration of the survival function; the truncation bounds the
    integral for curves with sub-exponential tails.
    """
    if horizon_hours <= 0:
        raise InvalidConfigurationError("horizon must be positive")
    grid = np.linspace(start_hours, start_hours + horizon_hours, 2048)
    survival = np.array([curve.survival_probability(start_hours, t) for t in grid])
    return float(np.trapezoid(survival, grid))


def expected_view_changes_per_year(curve: FaultCurve) -> float:
    """View-change rate if this node leads continuously and is replaced on failure.

    Renewal-theory approximation: one view change per leader failure, so
    the annual rate is ``HOURS_PER_YEAR / E[tenure]``.
    """
    from repro.faults.curves import HOURS_PER_YEAR

    tenure = expected_leader_tenure_hours(curve)
    if tenure <= 0:
        return float("inf")
    return HOURS_PER_YEAR / tenure


@dataclass(frozen=True)
class LeaderPolicyComparison:
    """Reliability-aware vs oblivious leader choice for one fleet."""

    aware_failure_probability: float
    oblivious_failure_probability: float

    @property
    def improvement_factor(self) -> float:
        if self.aware_failure_probability <= 0:
            return float("inf")
        return self.oblivious_failure_probability / self.aware_failure_probability


def compare_leader_policies(fleet: Fleet) -> LeaderPolicyComparison:
    """P(current leader fails in-window): best-node choice vs uniform choice.

    Uniform (round-robin over all nodes) is what Raft's randomized election
    approximates in the long run; reliability-aware selection pins the most
    reliable node.
    """
    if fleet.n == 0:
        raise InvalidConfigurationError("fleet is empty")
    probabilities = fleet.failure_probabilities
    aware = min(probabilities)
    oblivious = sum(probabilities) / len(probabilities)
    return LeaderPolicyComparison(
        aware_failure_probability=aware, oblivious_failure_probability=oblivious
    )
