"""Fleet optimisation: cheapest deployment meeting a nines target (paper §3).

"Hardware operators can use this analysis to pick the most sustainable,
affordable, and/or performant hardware with no reliability trade-off."
The optimizer scans (SKU, cluster size) combinations, computes exact
reliability with the counting estimator, and minimises cost (or power, or
embodied carbon) subject to the reliability target.

Candidate evaluation goes through the reliability engine
(:mod:`repro.engine`): the whole (SKU × size) grid is submitted as one
:class:`~repro.engine.ScenarioSet`, so every size shares a single batched
counting-DP sweep across SKUs and repeated candidates hit the engine's
memo cache.  Values are bit-identical to per-candidate evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analysis.result import ReliabilityResult, from_nines
from repro.engine import Scenario, default_engine
from repro.errors import InvalidConfigurationError
from repro.planner.cost import DeploymentPlan, NodeSKU
from repro.protocols.base import ProtocolSpec
from repro.protocols.raft import RaftSpec

SpecFactory = Callable[[int], ProtocolSpec]


@dataclass(frozen=True)
class PlanEvaluation:
    """One optimisation candidate with its reliability and cost."""

    plan: DeploymentPlan
    result: ReliabilityResult

    @property
    def reliability(self) -> float:
        return self.result.safe_and_live.value

    @property
    def hourly_cost(self) -> float:
        return self.plan.hourly_cost

    def meets(self, target_probability: float) -> bool:
        return self.reliability >= target_probability


@dataclass(frozen=True)
class OptimizationOutcome:
    """Winner plus the full ranked candidate list for transparency."""

    best: PlanEvaluation | None
    candidates: tuple[PlanEvaluation, ...]

    def table(self) -> list[dict[str, str]]:
        rows = []
        for cand in self.candidates:
            rows.append(
                {
                    "plan": cand.plan.describe(),
                    "safe&live": f"{cand.reliability:.10f}",
                    "$/h": f"{cand.hourly_cost:.2f}",
                }
            )
        return rows


def _plan_scenario(
    plan: DeploymentPlan,
    spec_factory: SpecFactory,
    byzantine_fraction: float,
) -> Scenario:
    return Scenario(
        spec=spec_factory(plan.count),
        fleet=plan.fleet(byzantine_fraction=byzantine_fraction),
        method="counting",
        label=plan.describe(),
    )


def evaluate_plan(
    plan: DeploymentPlan,
    *,
    spec_factory: SpecFactory = RaftSpec,
    byzantine_fraction: float = 0.0,
) -> PlanEvaluation:
    """Exact reliability of one deployment plan under the given protocol."""
    outcome = default_engine().run_one(
        _plan_scenario(plan, spec_factory, byzantine_fraction)
    )
    return PlanEvaluation(plan, outcome.result)


def evaluate_plans(
    plans: Sequence[DeploymentPlan],
    *,
    spec_factory: SpecFactory = RaftSpec,
    byzantine_fraction: float = 0.0,
) -> list[PlanEvaluation]:
    """Exact reliability of many plans, batched through the engine.

    Same-size plans share one counting-DP sweep regardless of SKU; values
    are bit-identical to calling :func:`evaluate_plan` per plan.
    """
    scenarios = [
        _plan_scenario(plan, spec_factory, byzantine_fraction) for plan in plans
    ]
    engine_result = default_engine().run(scenarios)
    return [
        PlanEvaluation(plan, result)
        for plan, result in zip(plans, engine_result.results)
    ]


def find_cheapest_plan(
    skus: Sequence[NodeSKU],
    target_nines: float,
    *,
    spec_factory: SpecFactory = RaftSpec,
    sizes: Iterable[int] = range(3, 16, 2),
    objective: str = "cost",
    byzantine_fraction: float = 0.0,
) -> OptimizationOutcome:
    """Scan the (SKU × size) grid for the cheapest plan meeting the target.

    ``objective`` selects the minimised metric: ``"cost"`` ($/h),
    ``"power"`` (watts) or ``"carbon"`` (embodied kg).  All candidates are
    returned sorted by the objective so callers can inspect the frontier.
    """
    if not skus:
        raise InvalidConfigurationError("at least one SKU is required")
    objectives: dict[str, Callable[[DeploymentPlan], float]] = {
        "cost": lambda p: p.hourly_cost,
        "power": lambda p: p.power_watts,
        "carbon": lambda p: p.embodied_carbon_kg,
    }
    if objective not in objectives:
        raise InvalidConfigurationError(f"unknown objective {objective!r}")
    metric = objectives[objective]
    target_probability = from_nines(target_nines)

    plans = []
    for sku in skus:
        for size in sizes:
            if size <= 0:
                raise InvalidConfigurationError(f"cluster size must be positive, got {size}")
            plans.append(DeploymentPlan(sku, size))
    # One engine submission for the whole grid: each cluster size becomes a
    # single DP sweep shared by every SKU.
    candidates = evaluate_plans(
        plans, spec_factory=spec_factory, byzantine_fraction=byzantine_fraction
    )
    candidates.sort(key=lambda c: (metric(c.plan), -c.reliability))
    feasible = [c for c in candidates if c.meets(target_probability)]
    return OptimizationOutcome(
        best=feasible[0] if feasible else None,
        candidates=tuple(candidates),
    )


def equivalent_reliability_size(
    reference_plan: DeploymentPlan,
    candidate_sku: NodeSKU,
    *,
    spec_factory: SpecFactory = RaftSpec,
    max_size: int = 99,
    byzantine_fraction: float = 0.0,
    tolerance: float = 5e-5,
) -> PlanEvaluation | None:
    """Smallest candidate-SKU cluster matching the reference's reliability.

    The paper's E2 experiment: a 3-node p=1% Raft cluster is matched by a
    9-node p=8% cluster; with the 10× price gap that is a ~3× cost saving.
    ``tolerance`` allows a shortfall up to that probability mass — the
    default corresponds to "equal at the paper's printed 99.97% precision"
    (the 9-node spot cluster is 99.9686% vs the reference's 99.9702%).
    Returns ``None`` when no size up to ``max_size`` comes close enough.
    """
    if tolerance < 0:
        raise InvalidConfigurationError("tolerance must be non-negative")
    reference = evaluate_plan(
        reference_plan, spec_factory=spec_factory, byzantine_fraction=byzantine_fraction
    )
    # Submit candidate sizes to the engine in chunks: batched evaluation
    # without computing the whole range when a small cluster already
    # matches (the common case: the paper's E2 match is found at size 9).
    sizes = list(range(1, max_size + 1, 2))  # odd sizes: even ones waste a vote
    chunk = 8
    for start in range(0, len(sizes), chunk):
        candidates = evaluate_plans(
            [DeploymentPlan(candidate_sku, size) for size in sizes[start : start + chunk]],
            spec_factory=spec_factory,
            byzantine_fraction=byzantine_fraction,
        )
        for candidate in candidates:
            if candidate.reliability >= reference.reliability - tolerance:
                return candidate
    return None
