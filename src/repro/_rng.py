"""Seeded random-number helpers shared across the library.

Every stochastic component in repro (Monte-Carlo estimators, the
discrete-event simulator, the telemetry generator) accepts either an integer
seed or a ready-made :class:`numpy.random.Generator`.  Centralising the
coercion here keeps seeding behaviour identical everywhere, which is what
makes whole-experiment runs reproducible from a single seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator, an ``int`` yields a
    deterministic PCG64 stream, and an existing generator is passed through
    unchanged (so callers can share one stream across components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Used to give each simulated node / injector its own stream so that
    adding a component never perturbs the random sequence seen by others.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def stable_stream(root_seed: int, *labels: object) -> np.random.Generator:
    """Return a generator keyed by ``root_seed`` and a tuple of labels.

    The same (seed, labels) pair always produces the same stream, regardless
    of call order — handy for per-entity streams such as "node 3's failure
    clock in trial 17".
    """
    mixed = hash((root_seed,) + tuple(labels)) & 0xFFFF_FFFF_FFFF_FFFF
    return np.random.default_rng(mixed)


def optional_choice(rng: Optional[np.random.Generator], seed: SeedLike) -> np.random.Generator:
    """Pick ``rng`` if given, otherwise build one from ``seed``."""
    if rng is not None:
        return rng
    return as_generator(seed)
