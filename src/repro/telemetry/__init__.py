"""Synthetic fleet telemetry substrate (stands in for proprietary data).

Generation (:mod:`repro.telemetry.fleet`), built-in hardware catalogue
(:mod:`repro.telemetry.datasets`) and the ingest pipeline back to fault
curves (:mod:`repro.telemetry.ingest`).
"""

from repro.telemetry.datasets import (
    HARDWARE_CATALOG,
    HardwareModel,
    model_by_name,
    rollout_risk_curve,
    spot_eviction_curve,
)
from repro.telemetry.fleet import (
    FleetTelemetry,
    MachineRecord,
    ShockEvent,
    generate_fleet_telemetry,
)
from repro.telemetry.ingest import (
    ModelCurves,
    empirical_hazard,
    fit_model_curves,
    fleet_from_telemetry,
)

__all__ = [
    "HARDWARE_CATALOG",
    "HardwareModel",
    "model_by_name",
    "spot_eviction_curve",
    "rollout_risk_curve",
    "FleetTelemetry",
    "MachineRecord",
    "ShockEvent",
    "generate_fleet_telemetry",
    "empirical_hazard",
    "fit_model_curves",
    "fleet_from_telemetry",
    "ModelCurves",
]
