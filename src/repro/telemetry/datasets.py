"""Built-in synthetic hardware-reliability datasets.

Substitute for the proprietary fleet telemetry the paper cites (Backblaze
drive stats, Google/Meta silent-corruption studies, Azure spot-eviction
traces).  Shapes and magnitudes follow the published literature:

* per-model AFR spread roughly 0.5%–8% (Backblaze Q1-2024 spread);
* bathtub aging: infant-mortality spike, flat useful life, wear-out after
  ~4–5 years (Pinheiro et al., FAST '07);
* server-class AFR ≈ 4% with silent/Byzantine corruption ≈ 0.01%
  (Hochschild et al. / Dixit et al., the paper's §2 numbers);
* spot instances: high "failure" (eviction) rates, 5–15%/window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.curves import (
    BathtubCurve,
    ConstantHazard,
    FaultCurve,
    ScaledCurve,
)


@dataclass(frozen=True)
class HardwareModel:
    """One synthetic hardware model's reliability profile."""

    model: str
    vendor: str
    afr: float  # useful-life annual failure rate
    infant_mortality_factor: float  # hazard multiplier during burn-in
    wearout_years: float  # onset of the wear-out stage
    byzantine_afr: float = 0.0  # silent-corruption (Byzantine) AFR

    def crash_curve(self) -> FaultCurve:
        """Bathtub curve matching this model's profile."""
        from repro.faults.afr import afr_to_hourly_rate

        baseline = afr_to_hourly_rate(self.afr)
        return BathtubCurve(
            infant_scale_hours=2_000.0,
            infant_weight=0.01 * self.infant_mortality_factor,
            baseline_rate_per_hour=baseline,
            wearout_shape=4.0,
            wearout_scale_hours=self.wearout_years * 8766.0,
        )

    def byzantine_curve(self) -> FaultCurve:
        """Constant silent-corruption hazard (0 when the model has none)."""
        from repro.faults.afr import afr_to_hourly_rate

        if self.byzantine_afr <= 0.0:
            return ConstantHazard(0.0)
        return ConstantHazard(afr_to_hourly_rate(self.byzantine_afr))


#: Synthetic fleet catalogue, shaped after the public drive-stats spread.
HARDWARE_CATALOG: tuple[HardwareModel, ...] = (
    HardwareModel("HMS-D14", "Heliodyne", afr=0.005, infant_mortality_factor=2.0, wearout_years=6.0),
    HardwareModel("HMS-D12", "Heliodyne", afr=0.011, infant_mortality_factor=2.5, wearout_years=5.0),
    HardwareModel("VX-900", "Vortexa", afr=0.022, infant_mortality_factor=4.0, wearout_years=4.5),
    HardwareModel(
        "SRV-STD",
        "Generic",
        afr=0.04,
        infant_mortality_factor=3.0,
        wearout_years=5.0,
        byzantine_afr=0.0001,  # the paper's mercurial-core rate
    ),
    HardwareModel("VX-750", "Vortexa", afr=0.055, infant_mortality_factor=5.0, wearout_years=3.5),
    HardwareModel("ECO-R2", "Refurbco", afr=0.08, infant_mortality_factor=6.0, wearout_years=3.0),
)


def model_by_name(model: str) -> HardwareModel:
    """Look up a catalogue entry; raises ``KeyError`` with the known names."""
    for entry in HARDWARE_CATALOG:
        if entry.model == model:
            return entry
    raise KeyError(f"unknown model {model!r}; known: {[m.model for m in HARDWARE_CATALOG]}")


def spot_eviction_curve(hourly_eviction_rate: float = 1e-4) -> FaultCurve:
    """Constant-hazard eviction model for spot instances.

    The default gives ≈8.4% eviction probability per 1000-hour window —
    the paper's 8% spot-class failure probability.
    """
    return ConstantHazard(hourly_eviction_rate)


def rollout_risk_curve(base: FaultCurve, *, spike_factor: float = 50.0) -> FaultCurve:
    """A fault curve with rollout-window hazard amplification (§2 point 2).

    Returns the base hazard scaled by ``spike_factor`` — apply it to the
    rollout window via :class:`repro.faults.curves.PiecewiseConstantCurve`
    composition or use directly as the "during rollout" model.
    """
    return ScaledCurve(base, spike_factor)
