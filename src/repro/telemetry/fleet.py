"""Synthetic fleet telemetry generator.

Produces per-machine failure logs of the shape large operators keep
(paper §2: "fault curves ... can be computed using the large amount of
telemetry that modern deployments track").  Machines are drawn from the
hardware catalogue, live through bathtub aging, and can be hit by
correlated shock events (rollouts, rack incidents).  The output feeds
:mod:`repro.telemetry.ingest` → :mod:`repro.faults.fitting`, closing the
telemetry → fault-curve → analysis pipeline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro._rng import SeedLike, as_generator
from repro.errors import InvalidConfigurationError
from repro.telemetry.datasets import HARDWARE_CATALOG, HardwareModel


@dataclass(frozen=True)
class MachineRecord:
    """One machine's observed lifetime in the telemetry window.

    ``failed`` is False for right-censored machines (still alive when the
    observation window closed); ``cause`` distinguishes intrinsic hardware
    failures from correlated shock casualties.
    """

    machine_id: int
    model: str
    vendor: str
    lifetime_hours: float
    failed: bool
    cause: str = ""


@dataclass(frozen=True)
class ShockEvent:
    """A correlated incident that hit the fleet at ``time_hours``."""

    time_hours: float
    name: str
    casualties: tuple[int, ...]


@dataclass
class FleetTelemetry:
    """Everything the generator observed over the window."""

    window_hours: float
    records: list[MachineRecord] = field(default_factory=list)
    shocks: list[ShockEvent] = field(default_factory=list)

    def observed_afr(self, model: str | None = None) -> float:
        """Empirical annualized failure rate (failures / machine-years)."""
        relevant = [r for r in self.records if model is None or r.model == model]
        if not relevant:
            raise InvalidConfigurationError(f"no records for model {model!r}")
        machine_years = sum(r.lifetime_hours for r in relevant) / 8766.0
        failures = sum(1 for r in relevant if r.failed)
        if machine_years <= 0:
            return 0.0
        return failures / machine_years

    def durations_and_flags(self, model: str | None = None) -> tuple[list[float], list[bool]]:
        """The (durations, observed) pair :mod:`repro.faults.fitting` consumes."""
        relevant = [r for r in self.records if model is None or r.model == model]
        return [r.lifetime_hours for r in relevant], [r.failed for r in relevant]

    def models_present(self) -> list[str]:
        return sorted({r.model for r in self.records})


def generate_fleet_telemetry(
    *,
    machines_per_model: int = 200,
    window_hours: float = 2.0 * 8766.0,
    models: Sequence[HardwareModel] = HARDWARE_CATALOG,
    rollout_probability_per_month: float = 0.05,
    rollout_lethality: float = 0.02,
    seed: SeedLike = None,
) -> FleetTelemetry:
    """Simulate a fleet's failure log over an observation window.

    Each machine samples an intrinsic failure time from its model's bathtub
    curve.  Monthly software rollouts fire with the given probability and
    kill a random ``rollout_lethality`` fraction of the still-alive fleet —
    the §2 correlated-fault mechanism.
    """
    if machines_per_model <= 0 or window_hours <= 0:
        raise InvalidConfigurationError("machines_per_model and window must be positive")
    if not 0.0 <= rollout_probability_per_month <= 1.0:
        raise InvalidConfigurationError("rollout probability must be in [0, 1]")
    if not 0.0 <= rollout_lethality <= 1.0:
        raise InvalidConfigurationError("rollout lethality must be in [0, 1]")

    rng = as_generator(seed)
    telemetry = FleetTelemetry(window_hours=window_hours)

    # Intrinsic (independent, bathtub-shaped) failure times.
    intrinsic: list[tuple[int, HardwareModel, float]] = []
    machine_id = 0
    for model in models:
        curve = model.crash_curve()
        for _ in range(machines_per_model):
            t_fail = curve.sample_failure_time(rng, horizon=window_hours)
            intrinsic.append((machine_id, model, t_fail))
            machine_id += 1

    # Correlated rollout shocks, monthly cadence.
    hours_per_month = 8766.0 / 12.0
    shock_deaths: dict[int, tuple[float, str]] = {}
    month = 0
    while (month + 1) * hours_per_month <= window_hours:
        month += 1
        if rng.random() >= rollout_probability_per_month:
            continue
        shock_time = month * hours_per_month
        casualties = []
        for mid, _model, t_fail in intrinsic:
            alive_at_shock = t_fail > shock_time and mid not in shock_deaths
            if alive_at_shock and rng.random() < rollout_lethality:
                shock_deaths[mid] = (shock_time, f"rollout-{month}")
                casualties.append(mid)
        if casualties:
            telemetry.shocks.append(
                ShockEvent(time_hours=shock_time, name=f"rollout-{month}", casualties=tuple(casualties))
            )

    # Materialise per-machine records (earliest cause wins).
    for mid, model, t_fail in intrinsic:
        shock = shock_deaths.get(mid)
        intrinsic_death = t_fail if math.isfinite(t_fail) and t_fail < window_hours else None
        shock_death = shock[0] if shock is not None else None
        if intrinsic_death is None and shock_death is None:
            telemetry.records.append(
                MachineRecord(mid, model.model, model.vendor, window_hours, failed=False)
            )
        elif shock_death is not None and (intrinsic_death is None or shock_death < intrinsic_death):
            telemetry.records.append(
                MachineRecord(
                    mid, model.model, model.vendor, shock_death, failed=True, cause=shock[1]
                )
            )
        else:
            telemetry.records.append(
                MachineRecord(
                    mid, model.model, model.vendor, intrinsic_death, failed=True, cause="hardware"
                )
            )
    return telemetry
