"""Telemetry → fault-curve ingestion pipeline (paper §4 "accurate fault curves").

Turns raw machine lifetime logs into the :class:`repro.faults.FaultCurve`
objects the analysis layer consumes: empirical hazard estimation, model
fitting per hardware model, and fleet construction for a chosen analysis
window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigurationError
from repro.faults.curves import EmpiricalCurve, FaultCurve
from repro.faults.fitting import CurveFit, select_best_fit
from repro.faults.mixture import Fleet, NodeModel
from repro.telemetry.fleet import FleetTelemetry


def empirical_hazard(
    durations: list[float],
    observed: list[bool],
    *,
    n_bins: int = 12,
) -> EmpiricalCurve:
    """Nonparametric hazard estimate: events / exposure per age bin.

    The standard actuarial estimator; returns an interpolatable curve with
    knots at bin midpoints.
    """
    if len(durations) != len(observed) or not durations:
        raise InvalidConfigurationError("durations/observed must be equal-length and non-empty")
    if n_bins < 2:
        raise InvalidConfigurationError("need at least 2 bins")
    durations_arr = np.asarray(durations, dtype=float)
    observed_arr = np.asarray(observed, dtype=bool)
    horizon = float(durations_arr.max())
    if horizon <= 0:
        raise InvalidConfigurationError("all durations are zero")
    edges = np.linspace(0.0, horizon, n_bins + 1)
    midpoints: list[float] = []
    hazards: list[float] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        exposure = float(np.clip(np.minimum(durations_arr, hi) - lo, 0.0, None).sum())
        events = int((observed_arr & (durations_arr > lo) & (durations_arr <= hi)).sum())
        midpoints.append(0.5 * (lo + hi))
        hazards.append(events / exposure if exposure > 0 else 0.0)
    return EmpiricalCurve(tuple(midpoints), tuple(hazards))


@dataclass(frozen=True)
class ModelCurves:
    """Fitted reliability description of one hardware model."""

    model: str
    fit: CurveFit
    observed_afr: float

    @property
    def curve(self) -> FaultCurve:
        return self.fit.curve


def fit_model_curves(telemetry: FleetTelemetry) -> dict[str, ModelCurves]:
    """Fit a best-AIC fault curve per hardware model in the telemetry."""
    curves: dict[str, ModelCurves] = {}
    for model in telemetry.models_present():
        durations, observed = telemetry.durations_and_flags(model)
        fit = select_best_fit(durations, observed)
        curves[model] = ModelCurves(
            model=model,
            fit=fit,
            observed_afr=telemetry.observed_afr(model),
        )
    return curves


def fleet_from_telemetry(
    telemetry: FleetTelemetry,
    composition: list[tuple[str, int]],
    *,
    window_hours: float = 30.0 * 24.0,
    deployment_age_hours: float = 8766.0,
) -> Fleet:
    """Build an analysis fleet from fitted telemetry curves.

    ``composition`` lists (model, count) pairs; each node's window failure
    probability comes from its model's fitted curve evaluated at the
    deployment's age — the full telemetry → fault curve → fleet pipeline.
    """
    if window_hours <= 0 or deployment_age_hours < 0:
        raise InvalidConfigurationError("window/age must be positive")
    fitted = fit_model_curves(telemetry)
    nodes: list[NodeModel] = []
    for model, count in composition:
        if model not in fitted:
            raise InvalidConfigurationError(
                f"model {model!r} absent from telemetry; present: {sorted(fitted)}"
            )
        if count <= 0:
            raise InvalidConfigurationError(f"count for {model!r} must be positive")
        p_fail = fitted[model].curve.failure_probability(
            deployment_age_hours, deployment_age_hours + window_hours
        )
        nodes.extend([NodeModel(p_crash=p_fail, label=model)] * count)
    return Fleet(tuple(nodes))
