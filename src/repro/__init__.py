"""repro — probabilistic consensus reliability toolkit.

Reproduction of *"Real Life Is Uncertain. Consensus Should Be Too!"*
(HotOS 2025): fault curves, per-configuration safety/liveness predicates
for Raft and PBFT, exact and sampled probability aggregation, storage-style
Markov metrics, probability-native planning tools, a discrete-event
consensus simulator for empirical validation, and a declarative fault-plan
subsystem (:mod:`repro.injection`) that replays outages and Byzantine
attacks through seeded simulation campaigns.

Quickstart
----------
The front door is the Scenario/Engine API: describe each reliability
question as a :class:`Scenario`, submit batches as a :class:`ScenarioSet`,
and let the :class:`ReliabilityEngine` pick estimators, share DP sweeps
and cache repeats:

>>> from repro import RaftSpec, Scenario, default_engine, uniform_fleet
>>> scenario = Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01))
>>> round(default_engine().run_one(scenario).result.safe_and_live.value, 6)
0.999702

The classic one-shot helper is a shim over the same engine:

>>> from repro import analyze
>>> result = analyze(RaftSpec(3), uniform_fleet(3, 0.01))
>>> round(result.safe_and_live.value, 6)
0.999702
"""

from repro.engine import (
    AnswerSet,
    AvailabilityQuery,
    EngineResult,
    MTTFQuery,
    QuerySet,
    ReliabilityEngine,
    ReliabilityQuery,
    Scenario,
    ScenarioSet,
    SimulationQuery,
    default_engine,
    register_backend,
    register_estimator,
)
from repro.analysis import (
    Estimate,
    FailureConfig,
    FaultKind,
    ReliabilityResult,
    analyze,
    counting_reliability,
    exact_reliability,
    format_probability,
    from_nines,
    monte_carlo_reliability,
    nines,
    predicate_probability,
)
from repro.faults import (
    BathtubCurve,
    ConstantHazard,
    FaultCurve,
    Fleet,
    NodeModel,
    WeibullCurve,
    byzantine_fleet,
    heterogeneous_fleet,
    uniform_fleet,
)
from repro.protocols import (
    BenOrSpec,
    PBFTSpec,
    ProtocolSpec,
    RaftSpec,
    ReliabilityAwareRaftSpec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # engine
    "Scenario",
    "ScenarioSet",
    "QuerySet",
    "ReliabilityQuery",
    "AvailabilityQuery",
    "MTTFQuery",
    "SimulationQuery",
    "ReliabilityEngine",
    "EngineResult",
    "AnswerSet",
    "default_engine",
    "register_estimator",
    "register_backend",
    # analysis
    "analyze",
    "counting_reliability",
    "exact_reliability",
    "monte_carlo_reliability",
    "predicate_probability",
    "Estimate",
    "ReliabilityResult",
    "FailureConfig",
    "FaultKind",
    "nines",
    "from_nines",
    "format_probability",
    # faults
    "FaultCurve",
    "ConstantHazard",
    "WeibullCurve",
    "BathtubCurve",
    "NodeModel",
    "Fleet",
    "uniform_fleet",
    "heterogeneous_fleet",
    "byzantine_fleet",
    # protocols
    "ProtocolSpec",
    "RaftSpec",
    "PBFTSpec",
    "BenOrSpec",
    "ReliabilityAwareRaftSpec",
]
