"""repro — probabilistic consensus reliability toolkit.

Reproduction of *"Real Life Is Uncertain. Consensus Should Be Too!"*
(HotOS 2025): fault curves, per-configuration safety/liveness predicates
for Raft and PBFT, exact and sampled probability aggregation, storage-style
Markov metrics, probability-native planning tools, and a discrete-event
consensus simulator for empirical validation.

Quickstart
----------
>>> from repro import RaftSpec, uniform_fleet, analyze
>>> result = analyze(RaftSpec(3), uniform_fleet(3, 0.01))
>>> round(result.safe_and_live.value, 6)
0.999702
"""

from repro.analysis import (
    Estimate,
    FailureConfig,
    FaultKind,
    ReliabilityResult,
    analyze,
    counting_reliability,
    exact_reliability,
    format_probability,
    from_nines,
    monte_carlo_reliability,
    nines,
    predicate_probability,
)
from repro.faults import (
    BathtubCurve,
    ConstantHazard,
    FaultCurve,
    Fleet,
    NodeModel,
    WeibullCurve,
    byzantine_fleet,
    heterogeneous_fleet,
    uniform_fleet,
)
from repro.protocols import (
    BenOrSpec,
    PBFTSpec,
    ProtocolSpec,
    RaftSpec,
    ReliabilityAwareRaftSpec,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "analyze",
    "counting_reliability",
    "exact_reliability",
    "monte_carlo_reliability",
    "predicate_probability",
    "Estimate",
    "ReliabilityResult",
    "FailureConfig",
    "FaultKind",
    "nines",
    "from_nines",
    "format_probability",
    # faults
    "FaultCurve",
    "ConstantHazard",
    "WeibullCurve",
    "BathtubCurve",
    "NodeModel",
    "Fleet",
    "uniform_fleet",
    "heterogeneous_fleet",
    "byzantine_fleet",
    # protocols
    "ProtocolSpec",
    "RaftSpec",
    "PBFTSpec",
    "BenOrSpec",
    "ReliabilityAwareRaftSpec",
]
