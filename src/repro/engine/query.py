"""Typed queries: a scenario plus the *question* being asked of it.

PR 2 made the :class:`~repro.engine.Scenario` the unit of work, but the
engine could only answer one question shape — point reliability of a spec
over a fleet within one window.  The time-domain questions the paper pairs
with it (MTTF/MTTDL and steady-state availability from
:mod:`repro.markov`, trace-driven safety/liveness campaigns from
:mod:`repro.sim`) lived behind free-function side doors with ad-hoc result
types and none of the engine's batching, caching, sharding or provenance.

A :class:`Query` couples a scenario with a question kind:

``ReliabilityQuery``
    Today's behaviour, unchanged — the scenario's estimator answers it.
``AvailabilityQuery``
    Steady-state availability (and optional window unavailability) of the
    repairable cluster, from the CTMC builders.
``MTTFQuery``
    Mean time to losing liveness (MTTF) and to losing data (MTTDL).
``SimulationQuery``
    ``replicas`` seeded discrete-event protocol executions audited by
    :func:`repro.sim.checker.audit_run`, reported as violation rates with
    Wilson bounds.

:class:`QuerySet` is the mixed-kind batch the engine executes; it carries
the same dict/JSON codecs as :class:`~repro.engine.ScenarioSet`, so one
``scenarios.json`` file can mix reliability, availability, MTTF and
simulation questions.  Each kind routes to a backend registered via
:func:`repro.engine.registry.register_backend`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import ClassVar, Iterable, Iterator, Mapping, Type

from repro.errors import InvalidConfigurationError
from repro.faults.afr import afr_to_hourly_rate
from repro.faults.mixture import uniform_fleet
from repro.engine.scenario import Scenario, ScenarioSet
from repro.injection.plan import FaultPlan
from repro.injection.plan import jsonable_value as _jsonable
from repro.protocols.raft import RaftSpec, majority

#: Client-command schedule the simulation backend uses for every replica:
#: first submit at ``_COMMANDS_START`` sim-seconds, one every
#: ``_COMMAND_INTERVAL`` after that (the bench_sim_validation cadence).
_COMMANDS_START = 1.0
_COMMAND_INTERVAL = 0.1


# ---------------------------------------------------------------------------
# Query kinds
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Query:
    """Base class: one scenario plus a question kind.

    Subclasses set :attr:`kind` (the backend-registry key) and add their
    question parameters as dataclass fields; those fields round-trip
    through :meth:`to_dict` / :func:`query_from_dict` automatically.
    """

    scenario: Scenario

    #: Backend-registry key; also the ``"kind"`` field of the dict form.
    kind: ClassVar[str] = ""

    @property
    def n(self) -> int:
        return self.scenario.n

    @property
    def label(self) -> str:
        return self.scenario.label

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form: ``kind`` + scenario + question parameters."""
        data: dict = {"kind": self.kind, "scenario": self.scenario.to_dict()}
        for spec in fields(self):
            if spec.name == "scenario":
                continue
            value = getattr(self, spec.name)
            if value != spec.default:
                data[spec.name] = _jsonable(value)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "Query":
        """Rebuild a query of this class from its dict form."""
        payload = dict(data)
        payload.pop("kind", None)
        scenario_data = payload.pop("scenario", None)
        if scenario_data is None:
            raise InvalidConfigurationError(
                f"{cls.kind or cls.__name__} dict needs a 'scenario' field"
            )
        known = {spec.name for spec in fields(cls)} - {"scenario"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidConfigurationError(
                f"unknown {cls.kind} query fields {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(scenario=Scenario.from_dict(scenario_data), **cls._coerce(payload))

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        """Hook for subclasses to coerce JSON primitives into field types."""
        return payload


_QUERY_KINDS: dict[str, Type[Query]] = {}


def register_query_kind(cls: Type[Query]) -> Type[Query]:
    """Class decorator: make ``cls`` addressable by its :attr:`Query.kind`.

    Registration feeds :func:`query_from_dict` (and therefore the CLI's
    JSON query files); the *execution* backend is registered separately
    via :func:`repro.engine.registry.register_backend` under the same
    kind string.  Idempotent per kind — last registration wins.
    """
    if not cls.kind:
        raise InvalidConfigurationError(f"{cls.__name__} must define a non-empty kind")
    _QUERY_KINDS[cls.kind] = cls
    return cls


def registered_query_kinds() -> tuple[str, ...]:
    return tuple(sorted(_QUERY_KINDS))


def query_from_dict(data: Mapping) -> Query:
    """Rebuild any registered query from its dict form.

    A dict without a ``"kind"`` field is treated as a bare scenario dict
    (or ``{"scenario": {...}}`` wrapper) and becomes a
    :class:`ReliabilityQuery` — the shape every pre-query scenario file
    already used.
    """
    if "kind" not in data:
        scenario_data = data.get("scenario", data)
        return ReliabilityQuery(Scenario.from_dict(scenario_data))
    kind = str(data["kind"])
    cls = _QUERY_KINDS.get(kind)
    if cls is None:
        raise InvalidConfigurationError(
            f"unknown query kind {kind!r}; registered: {sorted(_QUERY_KINDS)}"
        )
    return cls.from_dict(data)


@register_query_kind
@dataclass(frozen=True)
class ReliabilityQuery(Query):
    """Point reliability of the scenario — the engine's historical question.

    Carries no parameters of its own: the scenario's ``method``, ``trials``
    and ``seed`` already pin the estimator and its budget.  Submitting a
    bare :class:`~repro.engine.Scenario` to the engine is equivalent to
    wrapping it in one of these.
    """

    kind: ClassVar[str] = "reliability"


@dataclass(frozen=True)
class _MarkovQuery(Query):
    """Shared fields of the CTMC-backed questions.

    The cluster model is the birth–death chain of
    :class:`repro.markov.builders.ClusterMarkovModel`: per-replica hazard
    ``failure_rate_per_hour`` (λ), per-repair-slot rate
    ``repair_rate_per_hour`` (μ), and ``repair_slots`` concurrent repairs.
    Queries sharing :meth:`chain_key` share one CTMC solve inside the
    engine's Markov backends.
    """

    failure_rate_per_hour: float = 0.0
    repair_rate_per_hour: float = 0.0
    repair_slots: int = 1
    quorum_size: int | None = None

    def __post_init__(self) -> None:
        if self.failure_rate_per_hour < 0 or self.repair_rate_per_hour < 0:
            raise InvalidConfigurationError("rates must be non-negative")
        if self.repair_slots < 0:
            raise InvalidConfigurationError("repair_slots must be non-negative")
        quorum = self.resolved_quorum
        if not 0 < quorum <= self.n:
            raise InvalidConfigurationError(
                f"quorum {quorum} outside (0, {self.n}]"
            )

    @property
    def resolved_quorum(self) -> int:
        """Quorum the question is about (majority of the fleet by default)."""
        return majority(self.n) if self.quorum_size is None else self.quorum_size

    def chain_key(self) -> tuple:
        """Chains with equal keys are the same CTMC — solved once per batch."""
        return (
            self.n,
            self.failure_rate_per_hour,
            self.repair_rate_per_hour,
            self.repair_slots,
        )

    @classmethod
    def from_afr(
        cls,
        scenario: Scenario,
        *,
        afr: float,
        mttr_hours: float,
        **params,
    ) -> "_MarkovQuery":
        """Operator-friendly constructor: annual failure rate + MTTR.

        Performs exactly the conversions the legacy callers performed
        (:func:`repro.faults.afr.afr_to_hourly_rate` and ``1 / MTTR``), so
        answers are bit-identical to the historical direct-builder calls.
        """
        if mttr_hours <= 0:
            raise InvalidConfigurationError("mttr_hours must be positive")
        return cls(
            scenario=scenario,
            failure_rate_per_hour=afr_to_hourly_rate(afr),
            repair_rate_per_hour=1.0 / mttr_hours,
            **params,
        )

    @classmethod
    def for_cluster(
        cls, n: int, *, afr: float, mttr_hours: float, label: str = "", **params
    ) -> "_MarkovQuery":
        """Spec-free constructor for questions posed directly about an
        ``n``-replica cluster (the CLI ``mttf`` / SLO-report shape).

        The Markov backends read only the rates, ``n`` and the quorum, but
        every query carries a scenario for labeling and serialization; this
        synthesizes the neutral carrier in one place — majority-quorum
        RaftSpec over a zero-probability fleet — so callers don't each
        invent a fleet whose ``p_fail`` misstates the AFR as a per-window
        probability.
        """
        if n <= 0:
            raise InvalidConfigurationError(f"n must be positive, got {n}")
        scenario = Scenario(
            spec=RaftSpec(n),
            fleet=uniform_fleet(n, 0.0),
            label=label or f"cluster/n={n}",
        )
        return cls.from_afr(scenario, afr=afr, mttr_hours=mttr_hours, **params)

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        for name in ("failure_rate_per_hour", "repair_rate_per_hour"):
            if name in payload:
                payload[name] = float(payload[name])
        if "repair_slots" in payload:
            payload["repair_slots"] = int(payload["repair_slots"])
        if payload.get("quorum_size") is not None:
            payload["quorum_size"] = int(payload["quorum_size"])
        return payload


@register_query_kind
@dataclass(frozen=True)
class AvailabilityQuery(_MarkovQuery):
    """Steady-state availability of a ``resolved_quorum`` quorum under repair.

    With ``window_hours`` set the answer additionally carries the
    no-mid-window-repair unavailability of that window — the diagnostic
    linking the Markov view to the paper's per-window probabilities.
    """

    kind: ClassVar[str] = "availability"

    window_hours: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        # Steady-state availability is undefined without repair; failing
        # here (at parse time for JSON query files) beats the same error
        # surfacing as a backend traceback mid-run.
        if self.repair_rate_per_hour <= 0:
            raise InvalidConfigurationError("availability under repair needs μ > 0")
        if self.window_hours is not None and self.window_hours <= 0:
            raise InvalidConfigurationError("window_hours must be positive")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        payload = super()._coerce(payload)
        if payload.get("window_hours") is not None:
            payload["window_hours"] = float(payload["window_hours"])
        return payload


@register_query_kind
@dataclass(frozen=True)
class MTTFQuery(_MarkovQuery):
    """Mean time to losing liveness (MTTF) and to losing data (MTTDL).

    Liveness is lost when fewer than ``resolved_quorum`` replicas remain;
    data is lost when ``persistence_quorum`` replicas (default: the same
    quorum) are simultaneously down — the adversarial durability model of
    :meth:`repro.markov.builders.ClusterMarkovModel.mttdl`.
    """

    kind: ClassVar[str] = "mttf"

    persistence_quorum: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        pq = self.resolved_persistence_quorum
        if not 0 < pq <= self.n:
            raise InvalidConfigurationError(
                f"persistence_quorum={pq} outside (0, {self.n}]"
            )

    @property
    def resolved_persistence_quorum(self) -> int:
        return (
            self.resolved_quorum
            if self.persistence_quorum is None
            else self.persistence_quorum
        )

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        payload = super()._coerce(payload)
        if payload.get("persistence_quorum") is not None:
            payload["persistence_quorum"] = int(payload["persistence_quorum"])
        return payload


@register_query_kind
@dataclass(frozen=True)
class SimulationQuery(Query):
    """A campaign of seeded discrete-event protocol executions.

    Each replica compiles the query's fault plan against the scenario —
    window outcomes sampled from the fleet (or its correlation model),
    crash/recovery schedules, partitions, bursts, and Byzantine behaviour
    activation via :mod:`repro.injection` — runs the resulting
    :class:`repro.sim.cluster.Cluster`, feeds ``commands`` client
    commands, and audits the trace with
    :func:`repro.sim.checker.audit_run`.  The answer reports safety and
    liveness violation rates with Wilson bounds, how often the run
    verdict disagreed with the §3 liveness predicate, and how many
    stalled runs were stalled *only* by partition-era commands.

    ``faults=None`` runs the default crash-only plan — behaviourally (and
    bit-for-bit) the pre-fault-plan campaign.  Replica ``i`` draws from
    child ``i`` of the scenario seed's ``SeedSequence`` (PR 3's
    spawned-stream contract), so answers depend only on
    ``(replicas, seed)`` — never on the
    :class:`~repro.engine.ExecutionPolicy` worker count or shard size.
    """

    kind: ClassVar[str] = "simulation"

    replicas: int = 20
    duration: float = 12.0
    commands: int = 4
    crash_window: tuple[float, float] = (0.0, 0.4)
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise InvalidConfigurationError(
                "faults must be a repro.injection.FaultPlan (or None for the "
                "default crash-only plan)"
            )
        self._check_byzantine_support()
        if self.replicas <= 0:
            raise InvalidConfigurationError(
                f"replicas must be positive, got {self.replicas}"
            )
        if self.duration <= 0:
            raise InvalidConfigurationError("duration must be positive")
        if self.commands < 0:
            raise InvalidConfigurationError("commands must be non-negative")
        if self.commands > 0:
            last_submit = _COMMANDS_START + _COMMAND_INTERVAL * (self.commands - 1)
            if last_submit >= self.duration:
                raise InvalidConfigurationError(
                    f"{self.commands} commands submit until t={last_submit:g} "
                    f"but the run ends at duration={self.duration:g}; commands "
                    "submitted after the end are never decided and would "
                    "read as a 100% liveness-violation rate"
                )
        window = tuple(float(edge) for edge in self.crash_window)
        if len(window) != 2 or not 0.0 <= window[0] < window[1] <= self.duration:
            raise InvalidConfigurationError(
                f"invalid crash window {self.crash_window} for duration {self.duration}"
            )
        object.__setattr__(self, "crash_window", window)
        if self.faults is not None:
            # Parse-time bounds check: a JSON fault plan referencing nodes
            # outside the fleet or times outside the run fails here, not as
            # a backend traceback mid-campaign.
            self.faults.validate(self.n, self.duration)

    def _byzantine_slots(self) -> tuple[bool, bool]:
        """Which behaviour slots can materialise: ``(node 0, any other)``.

        Node 0 runs the mix's ``primary_behaviour``, every other Byzantine
        node its ``behaviour`` — only slots some replica can actually fill
        need a resolvable name, so a non-PBFT family with (say) only an
        accomplice behaviour registered can still declare an adversary
        that avoids node 0.
        """
        from repro.analysis.config import FaultKind

        plan = self.faults
        declared = (
            set(plan.adversary.nodes)
            if plan is not None and plan.adversary is not None
            else set()
        )
        primary = 0 in declared
        others = bool(declared - {0})
        if plan is None or plan.sample_faults:
            if self.scenario.correlation is not None:
                if self.scenario.failure_kind is FaultKind.BYZANTINE:
                    marginals = self.scenario.correlation.marginal_probabilities()
                    primary = primary or float(marginals[0]) > 0.0
                    others = others or any(float(p) > 0.0 for p in marginals[1:])
            else:
                probabilities = [node.p_byzantine for node in self.scenario.fleet]
                primary = primary or probabilities[0] > 0.0
                others = others or any(p > 0.0 for p in probabilities[1:])
        return primary, others

    @property
    def byzantine_possible(self) -> bool:
        """Whether any compiled replica can contain a Byzantine node."""
        primary, others = self._byzantine_slots()
        return primary or others

    @property
    def adversary_mix(self):
        """The behaviour mix Byzantine outcomes run (declared or default)."""
        from repro.injection.plan import DEFAULT_ADVERSARY

        plan = self.faults
        if plan is not None and plan.adversary is not None:
            return plan.adversary
        return DEFAULT_ADVERSARY

    def _check_byzantine_support(self) -> None:
        """Byzantine outcomes need a registered, resolvable behaviour.

        Without one, a sampled "Byzantine" node would run honest code while
        the audit and the §3 predicate count it as faulty — the silent
        safety misreport the pre-fault-plan backend rejected wholesale.
        Both the family registration *and* the adversary mix's behaviour
        names resolve here, at parse time, not as a worker traceback
        mid-campaign.
        """
        from repro.injection import supports_byzantine

        if not self.byzantine_possible:
            return
        if not supports_byzantine(self.scenario.spec):
            raise InvalidConfigurationError(
                "this scenario can produce Byzantine nodes but no Byzantine "
                f"behaviour is registered for {type(self.scenario.spec).__qualname__}; "
                "simulation campaigns activate behaviours through fault plans "
                "(repro.injection: built-ins cover PBFTSpec; "
                "register_behaviour() adds other protocol families)"
            )
        self.behaviour_key()  # resolves the mix's names; raises for unknown

    def behaviour_key(self) -> tuple | None:
        """Resolved behaviour *implementations* (campaign cache component).

        ``None`` when no replica can contain a Byzantine node; each slot
        resolves only when it can materialise (see :meth:`_byzantine_slots`).
        Keys carry the registered build callables, not the names, so
        shadowing a behaviour via :func:`repro.injection.register_behaviour`
        naturally invalidates cached campaign answers — the same
        re-registration invariant the engine's estimator cache keys uphold.
        """
        from repro.injection import behaviour_build

        primary, others = self._byzantine_slots()
        if not (primary or others):
            return None
        mix = self.adversary_mix
        spec = self.scenario.spec
        return (
            behaviour_build(mix.behaviour, spec) if others else None,
            behaviour_build(mix.primary_behaviour, spec) if primary else None,
        )

    def seed_root(self):
        """The stream the per-replica ``SeedSequence`` children spawn from."""
        return self.scenario.seed

    def fault_key(self) -> tuple:
        """Hashable identity of the fault plan (campaign cache component).

        ``faults=None`` keys as the default plan it runs, so a bare query
        and one carrying an explicit all-default ``FaultPlan()`` — which
        compile to bit-identical campaigns — share one memo entry.
        """
        from repro.injection.plan import DEFAULT_PLAN

        return (DEFAULT_PLAN if self.faults is None else self.faults).cache_key()

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "replicas" in payload:
            payload["replicas"] = int(payload["replicas"])
        if "duration" in payload:
            payload["duration"] = float(payload["duration"])
        if "commands" in payload:
            payload["commands"] = int(payload["commands"])
        if "crash_window" in payload:
            payload["crash_window"] = tuple(float(e) for e in payload["crash_window"])
        if payload.get("faults") is not None:
            payload["faults"] = FaultPlan.from_dict(payload["faults"])
        return payload


# ---------------------------------------------------------------------------
# QuerySet
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class QuerySet:
    """An ordered, possibly mixed-kind batch of queries.

    The engine's time-domain unit of work: submitting one of these to
    :meth:`repro.engine.ReliabilityEngine.run` answers every row, routing
    each kind to its backend and batching within kinds (shared DP sweeps
    for reliability, shared CTMC solves for Markov questions, sharded
    replica fan-out for simulation campaigns).
    """

    queries: tuple[Query, ...] = ()

    def __post_init__(self) -> None:
        if not all(isinstance(q, Query) for q in self.queries):
            raise InvalidConfigurationError("QuerySet entries must be Query instances")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> Query:
        return self.queries[index]

    def extend(self, extra: Iterable[Query]) -> "QuerySet":
        return QuerySet(self.queries + tuple(extra))

    # -- builders ----------------------------------------------------------
    @classmethod
    def build(cls, queries: Iterable[Query]) -> "QuerySet":
        return cls(tuple(queries))

    @classmethod
    def from_scenarios(cls, scenarios: ScenarioSet | Iterable[Scenario]) -> "QuerySet":
        """Wrap every scenario in a :class:`ReliabilityQuery` (legacy shape)."""
        return cls(tuple(ReliabilityQuery(scenario) for scenario in scenarios))

    # -- serialization -----------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [query.to_dict() for query in self.queries]

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping]) -> "QuerySet":
        return cls(tuple(query_from_dict(row) for row in rows))

    def to_json(self) -> str:
        return json.dumps({"queries": self.to_dicts()}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "QuerySet":
        """Parse a query file — a superset of the scenario-file grammar.

        Accepted shapes::

            {"queries": [{...}, {...}]}          # mixed query dicts
            [{...}, {...}]                       # query or bare scenario dicts
            {"scenarios": [{...}]}               # ScenarioSet shape -> reliability
            {"grid": {...}}                      # grid shorthand -> reliability

        Rows without a ``"kind"`` field are bare scenario dicts and become
        :class:`ReliabilityQuery` rows, so every existing scenario file is
        a valid query file.
        """
        data = json.loads(text)
        if isinstance(data, list):
            return cls.from_dicts(data)
        if isinstance(data, Mapping):
            if "queries" in data:
                rows = data["queries"]
                if not isinstance(rows, list):
                    raise InvalidConfigurationError("'queries' must be a list")
                return cls.from_dicts(rows)
            if "scenarios" in data or "grid" in data:
                return cls.from_scenarios(ScenarioSet.from_json(text))
        raise InvalidConfigurationError(
            "query JSON must be a list, {'queries': [...]}, "
            "{'scenarios': [...]} or {'grid': {...}}"
        )


def coerce_query(item) -> Query:
    """Accept a :class:`Query` or a bare :class:`Scenario` (→ reliability)."""
    if isinstance(item, Query):
        return item
    if isinstance(item, Scenario):
        return ReliabilityQuery(item)
    raise InvalidConfigurationError(
        f"expected Query or Scenario, got {type(item).__name__}"
    )
