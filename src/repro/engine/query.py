"""Typed queries: a scenario plus the *question* being asked of it.

PR 2 made the :class:`~repro.engine.Scenario` the unit of work, but the
engine could only answer one question shape — point reliability of a spec
over a fleet within one window.  The time-domain questions the paper pairs
with it (MTTF/MTTDL and steady-state availability from
:mod:`repro.markov`, trace-driven safety/liveness campaigns from
:mod:`repro.sim`) lived behind free-function side doors with ad-hoc result
types and none of the engine's batching, caching, sharding or provenance.

A :class:`Query` couples a scenario with a question kind:

``ReliabilityQuery``
    Today's behaviour, unchanged — the scenario's estimator answers it.
``AvailabilityQuery``
    Steady-state availability (and optional window unavailability) of the
    repairable cluster, from the CTMC builders.
``MTTFQuery``
    Mean time to losing liveness (MTTF) and to losing data (MTTDL).
``SimulationQuery``
    ``replicas`` seeded discrete-event protocol executions audited by
    :func:`repro.sim.checker.audit_run`, reported as violation rates with
    Wilson bounds.

:class:`QuerySet` is the mixed-kind batch the engine executes; it carries
the same dict/JSON codecs as :class:`~repro.engine.ScenarioSet`, so one
``scenarios.json`` file can mix reliability, availability, MTTF and
simulation questions.  Each kind routes to a backend registered via
:func:`repro.engine.registry.register_backend`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import ClassVar, Iterable, Iterator, Mapping, Type

from repro.errors import InvalidConfigurationError
from repro.faults.afr import afr_to_hourly_rate
from repro.faults.mixture import uniform_fleet
from repro.engine.scenario import Scenario, ScenarioSet
from repro.protocols.raft import RaftSpec, majority

#: Client-command schedule the simulation backend uses for every replica:
#: first submit at ``_COMMANDS_START`` sim-seconds, one every
#: ``_COMMAND_INTERVAL`` after that (the bench_sim_validation cadence).
_COMMANDS_START = 1.0
_COMMAND_INTERVAL = 0.1


# ---------------------------------------------------------------------------
# Query kinds
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Query:
    """Base class: one scenario plus a question kind.

    Subclasses set :attr:`kind` (the backend-registry key) and add their
    question parameters as dataclass fields; those fields round-trip
    through :meth:`to_dict` / :func:`query_from_dict` automatically.
    """

    scenario: Scenario

    #: Backend-registry key; also the ``"kind"`` field of the dict form.
    kind: ClassVar[str] = ""

    @property
    def n(self) -> int:
        return self.scenario.n

    @property
    def label(self) -> str:
        return self.scenario.label

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form: ``kind`` + scenario + question parameters."""
        data: dict = {"kind": self.kind, "scenario": self.scenario.to_dict()}
        for spec in fields(self):
            if spec.name == "scenario":
                continue
            value = getattr(self, spec.name)
            if value != spec.default:
                data[spec.name] = _jsonable(value)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "Query":
        """Rebuild a query of this class from its dict form."""
        payload = dict(data)
        payload.pop("kind", None)
        scenario_data = payload.pop("scenario", None)
        if scenario_data is None:
            raise InvalidConfigurationError(
                f"{cls.kind or cls.__name__} dict needs a 'scenario' field"
            )
        known = {spec.name for spec in fields(cls)} - {"scenario"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidConfigurationError(
                f"unknown {cls.kind} query fields {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(scenario=Scenario.from_dict(scenario_data), **cls._coerce(payload))

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        """Hook for subclasses to coerce JSON primitives into field types."""
        return payload


def _jsonable(value):
    if isinstance(value, tuple):
        return list(value)
    return value


_QUERY_KINDS: dict[str, Type[Query]] = {}


def register_query_kind(cls: Type[Query]) -> Type[Query]:
    """Class decorator: make ``cls`` addressable by its :attr:`Query.kind`.

    Registration feeds :func:`query_from_dict` (and therefore the CLI's
    JSON query files); the *execution* backend is registered separately
    via :func:`repro.engine.registry.register_backend` under the same
    kind string.  Idempotent per kind — last registration wins.
    """
    if not cls.kind:
        raise InvalidConfigurationError(f"{cls.__name__} must define a non-empty kind")
    _QUERY_KINDS[cls.kind] = cls
    return cls


def registered_query_kinds() -> tuple[str, ...]:
    return tuple(sorted(_QUERY_KINDS))


def query_from_dict(data: Mapping) -> Query:
    """Rebuild any registered query from its dict form.

    A dict without a ``"kind"`` field is treated as a bare scenario dict
    (or ``{"scenario": {...}}`` wrapper) and becomes a
    :class:`ReliabilityQuery` — the shape every pre-query scenario file
    already used.
    """
    if "kind" not in data:
        scenario_data = data.get("scenario", data)
        return ReliabilityQuery(Scenario.from_dict(scenario_data))
    kind = str(data["kind"])
    cls = _QUERY_KINDS.get(kind)
    if cls is None:
        raise InvalidConfigurationError(
            f"unknown query kind {kind!r}; registered: {sorted(_QUERY_KINDS)}"
        )
    return cls.from_dict(data)


@register_query_kind
@dataclass(frozen=True)
class ReliabilityQuery(Query):
    """Point reliability of the scenario — the engine's historical question.

    Carries no parameters of its own: the scenario's ``method``, ``trials``
    and ``seed`` already pin the estimator and its budget.  Submitting a
    bare :class:`~repro.engine.Scenario` to the engine is equivalent to
    wrapping it in one of these.
    """

    kind: ClassVar[str] = "reliability"


@dataclass(frozen=True)
class _MarkovQuery(Query):
    """Shared fields of the CTMC-backed questions.

    The cluster model is the birth–death chain of
    :class:`repro.markov.builders.ClusterMarkovModel`: per-replica hazard
    ``failure_rate_per_hour`` (λ), per-repair-slot rate
    ``repair_rate_per_hour`` (μ), and ``repair_slots`` concurrent repairs.
    Queries sharing :meth:`chain_key` share one CTMC solve inside the
    engine's Markov backends.
    """

    failure_rate_per_hour: float = 0.0
    repair_rate_per_hour: float = 0.0
    repair_slots: int = 1
    quorum_size: int | None = None

    def __post_init__(self) -> None:
        if self.failure_rate_per_hour < 0 or self.repair_rate_per_hour < 0:
            raise InvalidConfigurationError("rates must be non-negative")
        if self.repair_slots < 0:
            raise InvalidConfigurationError("repair_slots must be non-negative")
        quorum = self.resolved_quorum
        if not 0 < quorum <= self.n:
            raise InvalidConfigurationError(
                f"quorum {quorum} outside (0, {self.n}]"
            )

    @property
    def resolved_quorum(self) -> int:
        """Quorum the question is about (majority of the fleet by default)."""
        return majority(self.n) if self.quorum_size is None else self.quorum_size

    def chain_key(self) -> tuple:
        """Chains with equal keys are the same CTMC — solved once per batch."""
        return (
            self.n,
            self.failure_rate_per_hour,
            self.repair_rate_per_hour,
            self.repair_slots,
        )

    @classmethod
    def from_afr(
        cls,
        scenario: Scenario,
        *,
        afr: float,
        mttr_hours: float,
        **params,
    ) -> "_MarkovQuery":
        """Operator-friendly constructor: annual failure rate + MTTR.

        Performs exactly the conversions the legacy callers performed
        (:func:`repro.faults.afr.afr_to_hourly_rate` and ``1 / MTTR``), so
        answers are bit-identical to the historical direct-builder calls.
        """
        if mttr_hours <= 0:
            raise InvalidConfigurationError("mttr_hours must be positive")
        return cls(
            scenario=scenario,
            failure_rate_per_hour=afr_to_hourly_rate(afr),
            repair_rate_per_hour=1.0 / mttr_hours,
            **params,
        )

    @classmethod
    def for_cluster(
        cls, n: int, *, afr: float, mttr_hours: float, label: str = "", **params
    ) -> "_MarkovQuery":
        """Spec-free constructor for questions posed directly about an
        ``n``-replica cluster (the CLI ``mttf`` / SLO-report shape).

        The Markov backends read only the rates, ``n`` and the quorum, but
        every query carries a scenario for labeling and serialization; this
        synthesizes the neutral carrier in one place — majority-quorum
        RaftSpec over a zero-probability fleet — so callers don't each
        invent a fleet whose ``p_fail`` misstates the AFR as a per-window
        probability.
        """
        if n <= 0:
            raise InvalidConfigurationError(f"n must be positive, got {n}")
        scenario = Scenario(
            spec=RaftSpec(n),
            fleet=uniform_fleet(n, 0.0),
            label=label or f"cluster/n={n}",
        )
        return cls.from_afr(scenario, afr=afr, mttr_hours=mttr_hours, **params)

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        for name in ("failure_rate_per_hour", "repair_rate_per_hour"):
            if name in payload:
                payload[name] = float(payload[name])
        if "repair_slots" in payload:
            payload["repair_slots"] = int(payload["repair_slots"])
        if payload.get("quorum_size") is not None:
            payload["quorum_size"] = int(payload["quorum_size"])
        return payload


@register_query_kind
@dataclass(frozen=True)
class AvailabilityQuery(_MarkovQuery):
    """Steady-state availability of a ``resolved_quorum`` quorum under repair.

    With ``window_hours`` set the answer additionally carries the
    no-mid-window-repair unavailability of that window — the diagnostic
    linking the Markov view to the paper's per-window probabilities.
    """

    kind: ClassVar[str] = "availability"

    window_hours: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        # Steady-state availability is undefined without repair; failing
        # here (at parse time for JSON query files) beats the same error
        # surfacing as a backend traceback mid-run.
        if self.repair_rate_per_hour <= 0:
            raise InvalidConfigurationError("availability under repair needs μ > 0")
        if self.window_hours is not None and self.window_hours <= 0:
            raise InvalidConfigurationError("window_hours must be positive")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        payload = super()._coerce(payload)
        if payload.get("window_hours") is not None:
            payload["window_hours"] = float(payload["window_hours"])
        return payload


@register_query_kind
@dataclass(frozen=True)
class MTTFQuery(_MarkovQuery):
    """Mean time to losing liveness (MTTF) and to losing data (MTTDL).

    Liveness is lost when fewer than ``resolved_quorum`` replicas remain;
    data is lost when ``persistence_quorum`` replicas (default: the same
    quorum) are simultaneously down — the adversarial durability model of
    :meth:`repro.markov.builders.ClusterMarkovModel.mttdl`.
    """

    kind: ClassVar[str] = "mttf"

    persistence_quorum: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        pq = self.resolved_persistence_quorum
        if not 0 < pq <= self.n:
            raise InvalidConfigurationError(
                f"persistence_quorum={pq} outside (0, {self.n}]"
            )

    @property
    def resolved_persistence_quorum(self) -> int:
        return (
            self.resolved_quorum
            if self.persistence_quorum is None
            else self.persistence_quorum
        )

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        payload = super()._coerce(payload)
        if payload.get("persistence_quorum") is not None:
            payload["persistence_quorum"] = int(payload["persistence_quorum"])
        return payload


@register_query_kind
@dataclass(frozen=True)
class SimulationQuery(Query):
    """A campaign of seeded discrete-event protocol executions.

    Each replica samples a window failure configuration from the
    scenario's fleet, injects the corresponding crashes into a
    :class:`repro.sim.cluster.Cluster` built from the scenario's spec,
    feeds ``commands`` client commands, and audits the trace with
    :func:`repro.sim.checker.audit_run`.  The answer reports safety and
    liveness violation rates with Wilson bounds, plus how often the run
    verdict disagreed with the §3 liveness predicate.

    Replica ``i`` draws from child ``i`` of the scenario seed's
    ``SeedSequence`` (PR 3's spawned-stream contract), so answers depend
    only on ``(replicas, seed)`` — never on the
    :class:`~repro.engine.ExecutionPolicy` worker count or shard size.
    """

    kind: ClassVar[str] = "simulation"

    replicas: int = 20
    duration: float = 12.0
    commands: int = 4
    crash_window: tuple[float, float] = (0.0, 0.4)

    def __post_init__(self) -> None:
        if self.scenario.correlation is not None:
            # The campaign injector samples independent per-node faults;
            # silently answering a correlated scenario with independent
            # draws (and sharing cache entries with the uncorrelated one)
            # would misreport exactly the clustered-failure risk the
            # correlation model exists to expose.
            raise InvalidConfigurationError(
                "SimulationQuery does not support correlated scenarios; "
                "drop the correlation model or use a reliability query"
            )
        if any(node.p_byzantine > 0.0 for node in self.scenario.fleet):
            # Same silent-misreport class: the injector only schedules
            # fail-stops, and the node factories build honest nodes, so a
            # sampled "Byzantine" node would behave correctly in the run
            # while the audit and the §3 predicate count it as faulty —
            # near-zero safety violations plus predicate-mismatch noise.
            # Reject until Byzantine behaviour injection lands.
            raise InvalidConfigurationError(
                "SimulationQuery only injects crash faults; fleets with "
                "Byzantine probability are not supported yet"
            )
        if self.replicas <= 0:
            raise InvalidConfigurationError(
                f"replicas must be positive, got {self.replicas}"
            )
        if self.duration <= 0:
            raise InvalidConfigurationError("duration must be positive")
        if self.commands < 0:
            raise InvalidConfigurationError("commands must be non-negative")
        if self.commands > 0:
            last_submit = _COMMANDS_START + _COMMAND_INTERVAL * (self.commands - 1)
            if last_submit >= self.duration:
                raise InvalidConfigurationError(
                    f"{self.commands} commands submit until t={last_submit:g} "
                    f"but the run ends at duration={self.duration:g}; commands "
                    "submitted after the end are never decided and would "
                    "read as a 100% liveness-violation rate"
                )
        window = tuple(float(edge) for edge in self.crash_window)
        if len(window) != 2 or not 0.0 <= window[0] < window[1] <= self.duration:
            raise InvalidConfigurationError(
                f"invalid crash window {self.crash_window} for duration {self.duration}"
            )
        object.__setattr__(self, "crash_window", window)

    def seed_root(self):
        """The stream the per-replica ``SeedSequence`` children spawn from."""
        return self.scenario.seed

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "replicas" in payload:
            payload["replicas"] = int(payload["replicas"])
        if "duration" in payload:
            payload["duration"] = float(payload["duration"])
        if "commands" in payload:
            payload["commands"] = int(payload["commands"])
        if "crash_window" in payload:
            payload["crash_window"] = tuple(float(e) for e in payload["crash_window"])
        return payload


# ---------------------------------------------------------------------------
# QuerySet
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class QuerySet:
    """An ordered, possibly mixed-kind batch of queries.

    The engine's time-domain unit of work: submitting one of these to
    :meth:`repro.engine.ReliabilityEngine.run` answers every row, routing
    each kind to its backend and batching within kinds (shared DP sweeps
    for reliability, shared CTMC solves for Markov questions, sharded
    replica fan-out for simulation campaigns).
    """

    queries: tuple[Query, ...] = ()

    def __post_init__(self) -> None:
        if not all(isinstance(q, Query) for q in self.queries):
            raise InvalidConfigurationError("QuerySet entries must be Query instances")

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self.queries)

    def __getitem__(self, index: int) -> Query:
        return self.queries[index]

    def extend(self, extra: Iterable[Query]) -> "QuerySet":
        return QuerySet(self.queries + tuple(extra))

    # -- builders ----------------------------------------------------------
    @classmethod
    def build(cls, queries: Iterable[Query]) -> "QuerySet":
        return cls(tuple(queries))

    @classmethod
    def from_scenarios(cls, scenarios: ScenarioSet | Iterable[Scenario]) -> "QuerySet":
        """Wrap every scenario in a :class:`ReliabilityQuery` (legacy shape)."""
        return cls(tuple(ReliabilityQuery(scenario) for scenario in scenarios))

    # -- serialization -----------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [query.to_dict() for query in self.queries]

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping]) -> "QuerySet":
        return cls(tuple(query_from_dict(row) for row in rows))

    def to_json(self) -> str:
        return json.dumps({"queries": self.to_dicts()}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "QuerySet":
        """Parse a query file — a superset of the scenario-file grammar.

        Accepted shapes::

            {"queries": [{...}, {...}]}          # mixed query dicts
            [{...}, {...}]                       # query or bare scenario dicts
            {"scenarios": [{...}]}               # ScenarioSet shape -> reliability
            {"grid": {...}}                      # grid shorthand -> reliability

        Rows without a ``"kind"`` field are bare scenario dicts and become
        :class:`ReliabilityQuery` rows, so every existing scenario file is
        a valid query file.
        """
        data = json.loads(text)
        if isinstance(data, list):
            return cls.from_dicts(data)
        if isinstance(data, Mapping):
            if "queries" in data:
                rows = data["queries"]
                if not isinstance(rows, list):
                    raise InvalidConfigurationError("'queries' must be a list")
                return cls.from_dicts(rows)
            if "scenarios" in data or "grid" in data:
                return cls.from_scenarios(ScenarioSet.from_json(text))
        raise InvalidConfigurationError(
            "query JSON must be a list, {'queries': [...]}, "
            "{'scenarios': [...]} or {'grid': {...}}"
        )


def coerce_query(item) -> Query:
    """Accept a :class:`Query` or a bare :class:`Scenario` (→ reliability)."""
    if isinstance(item, Query):
        return item
    if isinstance(item, Scenario):
        return ReliabilityQuery(item)
    raise InvalidConfigurationError(
        f"expected Query or Scenario, got {type(item).__name__}"
    )
