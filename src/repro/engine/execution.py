"""Execution policies: how the engine spreads a scenario set across cores.

An :class:`ExecutionPolicy` is the engine-level counterpart of the
``jobs=`` parameter on the sampling estimators: it picks an executor
(``serial`` / ``thread`` / ``process``), a worker count and an optional
shard size, and :meth:`repro.engine.ReliabilityEngine.run` uses it to

* fan independent single-estimator scenarios out over the pool,
* sweep the chunks of a shared counting-DP group concurrently, and
* switch the built-in sampling estimators to spawned-stream sharding
  (worker-count-independent, see :mod:`repro.analysis.kernels`).

The determinism contract mirrors the kernel layer's: every value in an
:class:`~repro.engine.EngineResult` depends on the scenarios and on
``shard_trials`` — never on ``mode`` or ``jobs``.  With no policy (or the
default :data:`SERIAL`), execution and results are byte-identical to the
pre-policy engine, including the legacy single-stream sampling mode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import InvalidConfigurationError
from repro.engine.runtime import FAILURE_MODES, Supervision

#: Executor modes a policy may request.
POLICY_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How one :meth:`ReliabilityEngine.run` call executes.

    ``mode``
        ``"serial"`` — the historical in-process loop (the default);
        ``"thread"`` — a thread pool (NumPy kernels release the GIL for
        much of the hot path, and nothing needs to pickle);
        ``"process"`` — a fork-based process pool (fully parallel Python;
        scenarios and estimator outputs must pickle).
    ``jobs``
        Worker count (≥ 1).  ``jobs`` never influences result values —
        only how many shards/scenarios are in flight at once.
    ``shard_trials``
        Optional per-shard trial budget for the sampling estimators under
        this policy; ``None`` uses the kernel layer's default plan.  Part
        of the determinism key (a different shard size is a different
        spawned-stream plan).
    ``timeout`` / ``retries`` / ``backoff`` / ``on_shard_failure``
        Fault-tolerance knobs, forwarded to the supervised runtime as a
        :class:`~repro.engine.runtime.Supervision` (see
        :attr:`supervision`).  None of them changes any result value —
        a retried shard re-executes the same spawned stream, so they are
        *not* part of the determinism key.  ``on_shard_failure="degrade"``
        opts campaigns into partial, provenance-flagged answers instead
        of a raised :class:`~repro.errors.ShardExecutionError`.
    ``checkpoint_dir``
        Directory for campaign checkpoint journals; ``None`` disables
        checkpoint/resume.  With it set, completed campaign shards journal
        as they finish and a rerun of the same campaign resumes from the
        journal, bit-identical to an uninterrupted run.
    ``chaos``
        Deterministic worker-fault injection for the runtime's own
        self-tests (a :class:`~repro.engine.chaos.ChaosPlan`); never set
        in production use.
    """

    mode: str = "serial"
    jobs: int = 1
    shard_trials: int | None = None
    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.05
    on_shard_failure: str = "raise"
    checkpoint_dir: str | None = None
    chaos: object | None = None

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise InvalidConfigurationError(
                f"unknown execution mode {self.mode!r}; expected one of {POLICY_MODES}"
            )
        if not isinstance(self.jobs, int) or isinstance(self.jobs, bool):
            raise InvalidConfigurationError(
                f"jobs must be an integer, got {self.jobs!r}"
            )
        if self.jobs < 1:
            raise InvalidConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.mode == "serial" and self.jobs != 1:
            raise InvalidConfigurationError(
                "serial execution cannot use multiple workers; pick mode='thread' "
                "or mode='process'"
            )
        if self.shard_trials is not None:
            if not isinstance(self.shard_trials, int) or isinstance(
                self.shard_trials, bool
            ):
                raise InvalidConfigurationError(
                    f"shard_trials must be an integer, got {self.shard_trials!r}"
                )
            if self.shard_trials <= 0:
                raise InvalidConfigurationError(
                    f"shard_trials must be positive, got {self.shard_trials}"
                )
        if self.on_shard_failure not in FAILURE_MODES:
            raise InvalidConfigurationError(
                f"unknown on_shard_failure {self.on_shard_failure!r}; "
                f"expected one of {FAILURE_MODES}"
            )
        # Delegate timeout/retries/backoff validation to Supervision so the
        # policy and the runtime can never disagree on what's legal.
        self._supervision()

    def _supervision(self) -> Supervision:
        return Supervision(
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            on_shard_failure=self.on_shard_failure,
        )

    @property
    def supervised(self) -> bool:
        """Whether this policy asks for the fault-tolerant runtime.

        True when any supervision knob, the checkpoint directory or chaos
        injection departs from the defaults; the bare dispatcher handles
        everything else (and stays on the historical fast path).
        """
        return (
            self.timeout is not None
            or self.retries != 0
            or self.on_shard_failure != "raise"
            or self.checkpoint_dir is not None
            or self.chaos is not None
        )

    @property
    def supervision(self) -> Supervision | None:
        """The runtime :class:`~repro.engine.runtime.Supervision`, if any."""
        return self._supervision() if self.supervised else None

    @property
    def parallel(self) -> bool:
        """Whether this policy runs work outside the calling thread."""
        return self.mode != "serial"

    @property
    def spawned_streams(self) -> bool:
        """Whether sampling estimators use per-shard spawned streams.

        Any non-serial policy does — including ``jobs=1`` — so that the
        same policy family gives identical values at every worker count.
        The serial policy keeps the legacy single stream (bit-compatible
        with the pre-policy engine).
        """
        return self.mode != "serial"

    @classmethod
    def from_jobs(
        cls, jobs: int | None, *, mode: str = "process", **supervision
    ) -> "ExecutionPolicy":
        """CLI-style constructor: ``--jobs N`` → a policy.

        ``None``/``0`` → the serial (legacy-stream) policy.  Any explicit
        ``N >= 1`` → a spawned-stream policy with ``N`` workers in
        ``mode`` — including ``N = 1``, so the numbers a user sees are
        identical for *every* ``--jobs`` value, as documented.  Negative
        → one worker per available CPU (still the same numbers: shard
        plans never depend on the worker count).  Extra keyword arguments
        (``timeout=...``, ``retries=...``, ``on_shard_failure=...``,
        ``checkpoint_dir=...``) forward to the policy so ``--jobs`` and
        the fault-tolerance flags compose; supervision on a serial policy
        builds an explicit serial policy rather than returning
        :data:`SERIAL`.
        """
        if jobs is not None and (
            not isinstance(jobs, int) or isinstance(jobs, bool)
        ):
            raise InvalidConfigurationError(
                f"jobs must be an integer (or None), got {jobs!r}"
            )
        if jobs is None or jobs == 0:
            return cls(**supervision) if supervision else SERIAL
        if jobs < 0:
            jobs = os.cpu_count() or 1
        return cls(mode=mode, jobs=jobs, **supervision)

    @classmethod
    def for_service(
        cls,
        jobs: int | None,
        *,
        timeout: float | None = 60.0,
        retries: int = 1,
        on_shard_failure: str = "degrade",
        checkpoint_dir: str | None = None,
        shard_trials: int | None = None,
    ) -> "ExecutionPolicy":
        """The always-supervised policy a long-running daemon executes under.

        A shared service cannot afford the batch defaults: one hung or
        poisoned shard must never wedge a request thread (``timeout`` +
        ``retries``), a campaign that exhausts its retries should return a
        partial, provenance-flagged answer instead of a 500
        (``on_shard_failure="degrade"``), and completed shards journal to
        ``checkpoint_dir`` so a daemon restart resumes campaigns instead
        of recomputing them.  The mode is always ``"thread"`` — even at
        ``jobs=1`` — so sampling stays on the spawned-stream plan and the
        numbers a client sees are identical for every ``--jobs`` value
        (the :meth:`from_jobs` contract); threads rather than processes
        because the campaign payloads share the daemon's warm engine and
        the NumPy kernels release the GIL on the hot path.  As everywhere
        else, none of the supervision knobs changes any answer value.
        """
        if jobs is not None and jobs < 0:
            jobs = os.cpu_count() or 1
        return cls(
            mode="thread",
            jobs=max(1, jobs or 1),
            shard_trials=shard_trials,
            timeout=timeout,
            retries=retries,
            on_shard_failure=on_shard_failure,
            checkpoint_dir=checkpoint_dir,
        )


#: The default policy: the historical serial, legacy-stream execution.
SERIAL = ExecutionPolicy()
