"""Execution policies: how the engine spreads a scenario set across cores.

An :class:`ExecutionPolicy` is the engine-level counterpart of the
``jobs=`` parameter on the sampling estimators: it picks an executor
(``serial`` / ``thread`` / ``process``), a worker count and an optional
shard size, and :meth:`repro.engine.ReliabilityEngine.run` uses it to

* fan independent single-estimator scenarios out over the pool,
* sweep the chunks of a shared counting-DP group concurrently, and
* switch the built-in sampling estimators to spawned-stream sharding
  (worker-count-independent, see :mod:`repro.analysis.kernels`).

The determinism contract mirrors the kernel layer's: every value in an
:class:`~repro.engine.EngineResult` depends on the scenarios and on
``shard_trials`` — never on ``mode`` or ``jobs``.  With no policy (or the
default :data:`SERIAL`), execution and results are byte-identical to the
pre-policy engine, including the legacy single-stream sampling mode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import InvalidConfigurationError

#: Executor modes a policy may request.
POLICY_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class ExecutionPolicy:
    """How one :meth:`ReliabilityEngine.run` call executes.

    ``mode``
        ``"serial"`` — the historical in-process loop (the default);
        ``"thread"`` — a thread pool (NumPy kernels release the GIL for
        much of the hot path, and nothing needs to pickle);
        ``"process"`` — a fork-based process pool (fully parallel Python;
        scenarios and estimator outputs must pickle).
    ``jobs``
        Worker count (≥ 1).  ``jobs`` never influences result values —
        only how many shards/scenarios are in flight at once.
    ``shard_trials``
        Optional per-shard trial budget for the sampling estimators under
        this policy; ``None`` uses the kernel layer's default plan.  Part
        of the determinism key (a different shard size is a different
        spawned-stream plan).
    """

    mode: str = "serial"
    jobs: int = 1
    shard_trials: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in POLICY_MODES:
            raise InvalidConfigurationError(
                f"unknown execution mode {self.mode!r}; expected one of {POLICY_MODES}"
            )
        if self.jobs < 1:
            raise InvalidConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.mode == "serial" and self.jobs != 1:
            raise InvalidConfigurationError(
                "serial execution cannot use multiple workers; pick mode='thread' "
                "or mode='process'"
            )
        if self.shard_trials is not None and self.shard_trials <= 0:
            raise InvalidConfigurationError(
                f"shard_trials must be positive, got {self.shard_trials}"
            )

    @property
    def parallel(self) -> bool:
        """Whether this policy runs work outside the calling thread."""
        return self.mode != "serial"

    @property
    def spawned_streams(self) -> bool:
        """Whether sampling estimators use per-shard spawned streams.

        Any non-serial policy does — including ``jobs=1`` — so that the
        same policy family gives identical values at every worker count.
        The serial policy keeps the legacy single stream (bit-compatible
        with the pre-policy engine).
        """
        return self.mode != "serial"

    @classmethod
    def from_jobs(cls, jobs: int | None, *, mode: str = "process") -> "ExecutionPolicy":
        """CLI-style constructor: ``--jobs N`` → a policy.

        ``None``/``0`` → the serial (legacy-stream) policy.  Any explicit
        ``N >= 1`` → a spawned-stream policy with ``N`` workers in
        ``mode`` — including ``N = 1``, so the numbers a user sees are
        identical for *every* ``--jobs`` value, as documented.  Negative
        → one worker per available CPU (still the same numbers: shard
        plans never depend on the worker count).
        """
        if jobs is None or jobs == 0:
            return SERIAL
        if jobs < 0:
            jobs = os.cpu_count() or 1
        return cls(mode=mode, jobs=jobs)


#: The default policy: the historical serial, legacy-stream execution.
SERIAL = ExecutionPolicy()
