"""Fault-tolerant shard execution: the supervised campaign runtime.

Every sharded execution path in this repository — spawned-stream
Monte-Carlo tallies, engine scenario fan-out, simulation campaigns —
used to assume a perfect executor: one hung or crashed worker killed the
whole run, and a long rare-event campaign restarted from zero.  This
module is the runtime that survives its own failures the way the
simulated clusters survive theirs:

* :func:`dispatch` — the bare pool fan-out previously inlined in
  :func:`repro.analysis.kernels.run_sharded` (which now delegates here).
  Thread pools propagate the *chronologically first* worker exception
  with its original traceback instead of whichever future the submission
  order iterated first, so a root cause is never masked by secondary
  cancellation errors.

* :func:`run_supervised` — the fault-tolerant dispatcher.  Per-shard
  wall-clock **timeouts**; bounded **retry** with exponential backoff;
  **worker-loss recovery** (a ``BrokenProcessPool`` or dead worker
  requeues only the in-flight shards onto a rebuilt pool instead of
  raising); **graceful degradation** (a shard that exhausts its retries
  can be dropped and reported instead of failing the campaign); and
  **checkpoint/resume** through a :class:`CampaignCheckpoint` journal.

**Determinism contract.**  A retried shard must be bit-identical to a
first-try shard.  Workers may mutate their payload's generator in place
(thread and serial pools share objects with the caller), so retries
never reuse a possibly-advanced payload: callers pass ``rebuild(index)``,
which reconstructs shard ``index``'s payload from its original
``SeedSequence.spawn`` child (see
:func:`repro.analysis.kernels.spawn_shard_sequences`).  Rebuilding from
the same child sequence yields the same stream, so every jobs/mode
invariance contract survives timeouts, retries and pool rebuilds.
Results merge in shard order regardless of completion order, exactly as
in the bare dispatcher.

Layering note: this module depends only on the standard library,
:mod:`repro.errors`, and the stdlib-only :mod:`repro.obs` tracing layer,
so the analysis kernels can delegate to it without an import cycle
through the engine package.
"""

from __future__ import annotations

import json
import hashlib
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import InvalidConfigurationError, ShardExecutionError
from repro.obs import clock as obs_clock
from repro.obs.trace import current_tracer

#: Executor modes accepted by :func:`dispatch` / :func:`run_supervised`.
EXECUTOR_MODES = ("serial", "thread", "process")

#: What to do with a shard that exhausted its retries.
FAILURE_MODES = ("raise", "degrade")


# ---------------------------------------------------------------------------
# Supervision policy
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Supervision:
    """Fault-tolerance parameters of one supervised execution.

    ``timeout``
        Per-shard wall clock in seconds; ``None`` disables.  A timed-out
        thread attempt is abandoned (threads cannot be interrupted — the
        stray attempt's result is discarded when it eventually lands); a
        timed-out process attempt terminates the worker pool, and the
        other in-flight shards are requeued onto a rebuilt pool at no
        cost to their retry budgets.  Serial execution cannot preempt the
        calling thread, so ``timeout`` is inert there.
    ``retries``
        How many times one shard may be re-executed after a failed
        attempt (worker exception or timeout).  Retries re-execute the
        same spawned shard stream via ``rebuild`` — bit-identical to a
        first-try shard.
    ``backoff``
        Base of the exponential retry delay: attempt ``k``'s retry waits
        ``backoff * 2**(k-1)`` seconds before resubmission.
    ``on_shard_failure``
        ``"raise"`` (default): a shard that exhausts its retries raises
        :class:`~repro.errors.ShardExecutionError`, chaining the original
        worker exception.  ``"degrade"``: the shard is dropped, its
        result slot stays ``None``, and the :class:`RunReport` records the
        drop so callers can return a partial, provenance-flagged answer.
    ``max_pool_rebuilds``
        Bound on *unattributed* pool losses (``BrokenProcessPool`` — the
        runtime cannot know which shard killed the worker, so requeues do
        not consume retry budgets).  Once exceeded, the shards in flight
        at the break are treated as failed (raise or degrade per
        ``on_shard_failure``) so a poisoned shard cannot rebuild forever.
        Timeout-triggered rebuilds are attributed to the overdue shard
        and never count against this bound.
    """

    timeout: float | None = None
    retries: int = 0
    backoff: float = 0.05
    on_shard_failure: str = "raise"
    max_pool_rebuilds: int = 3

    def __post_init__(self) -> None:
        if self.timeout is not None and not self.timeout > 0:
            raise InvalidConfigurationError(
                f"timeout must be positive (or None), got {self.timeout}"
            )
        if not isinstance(self.retries, int) or isinstance(self.retries, bool):
            raise InvalidConfigurationError(
                f"retries must be an integer, got {self.retries!r}"
            )
        if self.retries < 0:
            raise InvalidConfigurationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise InvalidConfigurationError(
                f"backoff must be >= 0, got {self.backoff}"
            )
        if self.on_shard_failure not in FAILURE_MODES:
            raise InvalidConfigurationError(
                f"unknown on_shard_failure {self.on_shard_failure!r}; "
                f"expected one of {FAILURE_MODES}"
            )
        if self.max_pool_rebuilds < 0:
            raise InvalidConfigurationError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )


@dataclass(frozen=True)
class RunReport:
    """What one supervised execution survived.

    ``dropped`` holds the shard indices abandoned after exhausting their
    retries (empty unless ``on_shard_failure="degrade"`` let the run
    continue); ``failures`` pairs each dropped shard with its last
    failure kind (``"error"``, ``"timeout"`` or ``"worker-loss"``).
    ``attempts`` counts worker invocations actually dispatched,
    ``restored`` the shards served straight from a checkpoint journal.
    """

    shards: int
    completed: int
    dropped: tuple[int, ...] = ()
    retried: tuple[int, ...] = ()
    failures: tuple[tuple[int, str], ...] = ()
    attempts: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    restored: int = 0

    @property
    def degraded(self) -> bool:
        """Whether the run dropped shards (partial results)."""
        return bool(self.dropped)

    def to_dict(self) -> dict:
        """JSON-ready form (stable schema, used by ``query --json`` rows)."""
        return {
            "shards": self.shards,
            "completed": self.completed,
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "restored": self.restored,
            "retried": list(self.retried),
            "dropped": list(self.dropped),
            "failures": [[index, kind] for index, kind in self.failures],
            "degraded": self.degraded,
        }


# ---------------------------------------------------------------------------
# Checkpoint journal
# ---------------------------------------------------------------------------
#: Per-journal-path locks: concurrent `record` calls on the same journal
#: (a long-running daemon sharing a checkpoint directory across request
#: threads) serialize in-process, so header creation and row appends can
#: never interleave.  Keyed by resolved path; never pruned (bounded by the
#: number of distinct campaigns a process touches).
_JOURNAL_LOCKS: dict[str, threading.Lock] = {}
_JOURNAL_LOCKS_GUARD = threading.Lock()


def _journal_lock(path: Path) -> threading.Lock:
    key = str(path)
    with _JOURNAL_LOCKS_GUARD:
        lock = _JOURNAL_LOCKS.get(key)
        if lock is None:
            lock = _JOURNAL_LOCKS[key] = threading.Lock()
        return lock


class CampaignCheckpoint:
    """Append-only journal of completed shard results, keyed by campaign.

    One JSON-lines file per campaign: a header line pinning the campaign
    key digest and shard count, then one ``{"shard": i, "value": ...}``
    line per completed shard.  :meth:`load` returns the completed shards
    of a *matching* journal (a header from a different campaign or shard
    plan discards the stale file), tolerating a torn *final* line from an
    interrupted write; a malformed row anywhere earlier is real corruption
    and discards the whole journal (the next :meth:`record` rewrites it
    from scratch) rather than silently resuming from a damaged prefix.
    Because every shard draws an independent ``SeedSequence.spawn``
    stream, a resumed campaign — journalled shards loaded, only the
    missing ones re-run — is bit-identical to an uninterrupted one.

    Durability: :meth:`record` appends each row with a single
    ``os.write`` on an ``O_APPEND`` descriptor (the header rides the
    first row's write on a fresh file) and ``os.fsync``\\ s before
    returning, so a crash loses at most the shard being recorded — the
    same fsync-before-trust discipline as :mod:`repro.engine.chaos`'s
    marker files.  Writers of the *same* campaign may interleave freely:
    two racing first writes can at worst duplicate the header line, which
    :meth:`load` tolerates; a writer that saw a stale (foreign or
    corrupt) journal re-loads it under the journal lock before replacing
    the file, so it can never truncate rows a concurrent same-campaign
    writer already recorded.

    ``encode``/``decode`` convert one shard's result to/from its JSON
    form (identity by default).
    """

    FORMAT = "repro-campaign-checkpoint/1"

    #: :meth:`load` refuses journals larger than this (corrupt or runaway
    #: files must not be slurped whole into a request thread's memory).
    MAX_JOURNAL_BYTES = 64 * 1024 * 1024

    def __init__(
        self,
        path: str | Path,
        *,
        key: str,
        shards: int,
        encode: Callable | None = None,
        decode: Callable | None = None,
    ):
        self.path = Path(path)
        self.key = str(key)
        self.shards = int(shards)
        self._encode = encode if encode is not None else (lambda value: value)
        self._decode = decode if decode is not None else (lambda value: value)
        self._stale = False
        self._loaded = False

    @staticmethod
    def digest(key: object) -> str:
        """Stable filename-safe digest of a campaign cache key."""
        return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()[:24]

    def _header(self) -> str:
        return json.dumps(
            {"format": self.FORMAT, "key": self.key, "shards": self.shards}
        )

    def load(self) -> dict[int, object]:
        """Completed ``{shard_index: result}`` entries of a matching journal."""
        self._loaded = True
        with _journal_lock(self.path):
            return self._load_locked()

    def _load_locked(self) -> dict[int, object]:
        if not self.path.exists():
            return {}
        completed: dict[int, object] = {}
        try:
            if self.path.stat().st_size > self.MAX_JOURNAL_BYTES:
                # A sane journal is header + one small row per shard; a
                # file this large is corrupt or not ours.  Discard rather
                # than read it whole into memory.
                self._stale = True
                return {}
            lines = self.path.read_text().splitlines()
        except OSError:
            self._stale = True
            return {}
        if not lines:
            return {}
        header_text = self._header()
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            header = None
        if (
            not isinstance(header, dict)
            or header.get("format") != self.FORMAT
            or header.get("key") != self.key
            or header.get("shards") != self.shards
        ):
            # A different campaign (or shard plan) owns this file: discard.
            self._stale = True
            return {}
        last = len(lines) - 1
        for position, line in enumerate(lines[1:], start=1):
            if line == header_text:
                # Duplicate header: two racing first writes on a fresh
                # file each carried the header with their row.  Benign.
                continue
            try:
                row = json.loads(line)
                index = int(row["shard"])
                value = self._decode(row["value"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                if position == last:
                    # Torn final line from an interrupted write: the rows
                    # before it are intact and fsync'd — keep them.
                    continue
                # A malformed row *before* the tail is real corruption,
                # not a torn write; nothing after it can be trusted.
                self._stale = True
                return {}
            if not 0 <= index < self.shards:
                if position == last:
                    continue
                self._stale = True
                return {}
            completed[index] = value
        return completed

    def record(self, index: int, value: object) -> None:
        """Append one completed shard (fsync'd so a crash loses at most it)."""
        if not self._loaded:
            # Callers normally load() first; keep the journal coherent anyway.
            self.load()
        row = json.dumps({"shard": int(index), "value": self._encode(value)}) + "\n"
        with _journal_lock(self.path):
            self.path.parent.mkdir(parents=True, exist_ok=True)
            if self._stale:
                # The journal we loaded was foreign, oversized or corrupt.
                # Re-load under the lock before replacing: another writer
                # of *our* campaign may have rewritten it cleanly since we
                # loaded, and blindly truncating would lose its rows — the
                # exact stale-truncation race the `"w"`-mode journal had.
                self._stale = False
                self._load_locked()
                if self._stale:
                    # Still foreign/corrupt on disk: ours now, from scratch.
                    self._replace_with(self._header() + "\n" + row)
                    self._stale = False
                    return
                # A clean journal of our campaign is on disk: append to it.
            flags = os.O_WRONLY | os.O_CREAT | os.O_APPEND
            handle = os.open(self.path, flags, 0o644)
            try:
                payload = row
                if os.fstat(handle).st_size == 0:
                    # Fresh file: the header rides the first row's write,
                    # so no interleaving can separate them.
                    payload = self._header() + "\n" + row
                os.write(handle, payload.encode("utf-8"))
                os.fsync(handle)
            finally:
                os.close(handle)

    def _replace_with(self, text: str) -> None:
        """Atomically install ``text`` as the whole journal (fsync'd)."""
        tmp = self.path.with_name(f"{self.path.name}.tmp.{os.getpid()}")
        handle = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(handle, text.encode("utf-8"))
            os.fsync(handle)
        finally:
            os.close(handle)
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# Bare dispatch (the run_sharded fast path)
# ---------------------------------------------------------------------------
def _make_pool(mode: str, workers: int):
    if mode == "thread":
        from concurrent.futures import ThreadPoolExecutor

        return ThreadPoolExecutor(max_workers=workers)
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    context = (
        multiprocessing.get_context("fork")
        if "fork" in multiprocessing.get_all_start_methods()
        else None
    )
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _check_mode(mode: str) -> None:
    if mode not in EXECUTOR_MODES:
        raise InvalidConfigurationError(
            f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}"
        )


def dispatch(worker, payloads: Sequence, *, jobs: int, mode: str = "process") -> list:
    """Map ``worker`` over shard payloads, preserving shard order.

    ``jobs <= 1`` (or a single payload, or ``mode='serial'``) runs
    in-process — the degenerate pool every sharded estimator uses for its
    determinism guarantee.  ``'thread'`` uses a thread pool, ``'process'``
    a fork-based process pool.  On a thread-pool worker exception, the
    *chronologically first* exception is raised with its original
    traceback and the not-yet-started shards are cancelled — submission
    order can no longer mask the root cause behind secondary errors.
    """
    _check_mode(mode)
    count = len(payloads)
    if jobs <= 1 or count <= 1 or mode == "serial":
        return [worker(payload) for payload in payloads]
    workers = min(jobs, count)
    with _make_pool(mode, workers) as pool:
        if mode == "thread":
            from concurrent.futures import as_completed

            futures = [pool.submit(worker, payload) for payload in payloads]
            for future in as_completed(futures):
                error = future.exception()
                if error is not None:
                    for pending in futures:
                        pending.cancel()
                    raise error
            return [future.result() for future in futures]
        return list(pool.map(worker, payloads))


# ---------------------------------------------------------------------------
# Supervised dispatch
# ---------------------------------------------------------------------------
class _ShardDropped(Exception):
    """Internal control flow: current shard failed permanently (degrade)."""


def _terminate_pool(pool) -> None:
    """Tear a process pool down even when its workers are hung.

    ``shutdown`` alone would join busy workers forever; terminating the
    worker processes directly is the only way to reclaim a hung shard.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
    for process in processes:
        process.join(timeout=2.0)


def run_supervised(
    worker,
    payloads: Sequence,
    *,
    jobs: int,
    mode: str = "process",
    supervision: Supervision | None = None,
    rebuild: Callable[[int], object] | None = None,
    checkpoint: CampaignCheckpoint | None = None,
    chaos=None,
) -> tuple[list, RunReport]:
    """Fault-tolerant :func:`dispatch`: returns ``(results, report)``.

    ``results`` holds one entry per payload in shard order; dropped
    shards (degrade mode only) leave ``None`` in their slot and are
    listed in the report.  ``rebuild(index)`` must return a fresh,
    never-executed payload for shard ``index`` — it is used for every
    re-execution so retried shards consume pristine spawned streams (see
    the module determinism contract).  Without it, retries reuse
    ``payloads[index]``, which is only sound under a process pool (the
    parent's payload is never advanced by a child).  ``checkpoint``
    journals completed shards and pre-loads any shards a previous
    interrupted run already completed.  ``chaos`` injects deterministic
    worker faults for self-tests (see :mod:`repro.engine.chaos`).
    """
    _check_mode(mode)
    sup = supervision if supervision is not None else Supervision()
    count = len(payloads)
    results: list = [None] * count
    done = [False] * count
    failures_used = [0] * count  # failed attempts so far, per shard
    dropped: list[int] = []
    drop_reasons: list[tuple[int, str]] = []
    retried: set[int] = set()
    stats = {"attempts": 0, "timeouts": 0, "rebuilds": 0}

    # Tracing (no-op unless a tracer is installed on this context).  The
    # run gets one "runtime.supervised" span; every worker dispatch gets a
    # "shard" slice keyed s{index}d{dispatch} (structural — never RNG), and
    # timeouts / retries / pool rebuilds land as instant events on the run
    # span.  None of this touches payloads or streams, so results are
    # bit-identical with tracing on or off.
    tracer = current_tracer()
    trace_on = tracer.enabled
    dispatches = [0] * count  # total dispatches per shard (span keys)

    with tracer.span(
        "runtime.supervised",
        shards=count,
        jobs=jobs,
        mode=mode,
        timeout=sup.timeout,
        retries=sup.retries,
    ) as run_span:

        def attempt_begin(index: int) -> tuple[float, int]:
            """Mark one worker dispatch; returns the span-timing token."""
            if not trace_on:
                return (0.0, 0)
            dispatches[index] += 1
            return (obs_clock.perf(), dispatches[index])

        def attempt_end(index: int, token: tuple[float, int], outcome: str) -> None:
            """Record one dispatched attempt as a slice on the shard track."""
            if not trace_on:
                return
            started, dispatch_no = token
            tracer.record_span(
                "shard",
                started,
                obs_clock.perf(),
                parent=run_span,
                key=f"s{index}d{dispatch_no}",
                track="shards",
                status="ok" if outcome in ("ok", "requeued") else "error",
                shard=index,
                attempt=failures_used[index] + 1,
                outcome=outcome,
            )

        restored = 0
        if checkpoint is not None:
            for index, value in checkpoint.load().items():
                if 0 <= index < count and not done[index]:
                    results[index] = value
                    done[index] = True
                    restored += 1
            if restored:
                run_span.event("restored", shards=restored)

        if chaos is not None:
            worker = chaos.bind(worker, mode)

        def payload_for(index: int) -> object:
            base = (
                rebuild(index)
                if rebuild is not None and failures_used[index] > 0
                else payloads[index]
            )
            return (index, base) if chaos is not None else base

        def finish(index: int, value) -> None:
            results[index] = value
            done[index] = True
            if checkpoint is not None:
                checkpoint.record(index, value)

        def fail(index: int, kind: str, error: BaseException | None) -> float | None:
            """Book one failed attempt; returns the retry-ready time, or
            ``None`` when the shard is permanently failed (raise or drop)."""
            failures_used[index] += 1
            if kind == "timeout":
                stats["timeouts"] += 1
                run_span.event("timeout", shard=index, attempt=failures_used[index])
            if failures_used[index] <= sup.retries:
                retried.add(index)
                delay = sup.backoff * (2 ** (failures_used[index] - 1))
                run_span.event(
                    "retry", shard=index, attempt=failures_used[index], backoff=delay
                )
                return time.monotonic() + delay
            if sup.on_shard_failure == "raise":
                raise ShardExecutionError(
                    f"shard {index} failed permanently after "
                    f"{failures_used[index]} attempt(s) (last failure: {kind}); "
                    "set on_shard_failure='degrade' to keep partial results"
                ) from error
            dropped.append(index)
            drop_reasons.append((index, kind))
            run_span.event("dropped", shard=index, kind=kind)
            raise _ShardDropped

        pending = [index for index in range(count) if not done[index]]

        if jobs <= 1 or count <= 1 or mode == "serial":
            # In-process execution: retries and degradation apply; the calling
            # thread cannot be preempted, so `timeout` is inert here.
            for index in pending:
                while True:
                    stats["attempts"] += 1
                    token = attempt_begin(index)
                    try:
                        value = worker(payload_for(index))
                    except Exception as error:
                        attempt_end(index, token, "error")
                        try:
                            ready_at = fail(index, "error", error)
                        except _ShardDropped:
                            break
                        delay = ready_at - time.monotonic()
                        if delay > 0:
                            time.sleep(delay)
                    else:
                        attempt_end(index, token, "ok")
                        finish(index, value)
                        break
        elif pending:
            _run_pooled(
                worker,
                payload_for,
                pending,
                jobs=jobs,
                mode=mode,
                sup=sup,
                fail=fail,
                finish=finish,
                stats=stats,
                run_span=run_span,
                attempt_begin=attempt_begin,
                attempt_end=attempt_end,
            )

        report = RunReport(
            shards=count,
            completed=sum(done),
            dropped=tuple(sorted(dropped)),
            retried=tuple(sorted(retried)),
            failures=tuple(sorted(drop_reasons)),
            attempts=stats["attempts"],
            timeouts=stats["timeouts"],
            pool_rebuilds=stats["rebuilds"],
            restored=restored,
        )
        if trace_on:
            run_span.set("attempts", report.attempts)
            run_span.set("completed", report.completed)
            run_span.set("timeouts", report.timeouts)
            run_span.set("pool_rebuilds", report.pool_rebuilds)
            run_span.set("restored", report.restored)
            if report.dropped:
                run_span.set("dropped", list(report.dropped))
    return results, report


def _run_pooled(
    worker,
    payload_for,
    pending: list[int],
    *,
    jobs: int,
    mode: str,
    sup: Supervision,
    fail,
    finish,
    stats: dict,
    run_span,
    attempt_begin,
    attempt_end,
) -> None:
    """The supervised pool loop shared by thread and process modes."""
    from concurrent.futures import BrokenExecutor, wait as wait_futures

    workers = min(jobs, len(pending))
    queue: list[tuple[int, float]] = [(index, 0.0) for index in pending]
    inflight: dict = {}  # future -> (index, deadline or None, trace token)
    abandoned = False  # thread attempts we gave up waiting on
    pool = _make_pool(mode, workers)

    def submit_ready(now: float) -> None:
        index_at = 0
        while index_at < len(queue) and len(inflight) < workers:
            index, ready_at = queue[index_at]
            if ready_at <= now:
                queue.pop(index_at)
                stats["attempts"] += 1
                deadline = None if sup.timeout is None else now + sup.timeout
                token = attempt_begin(index)
                inflight[pool.submit(worker, payload_for(index))] = (
                    index,
                    deadline,
                    token,
                )
            else:
                index_at += 1

    def requeue_inflight(now: float) -> None:
        """Put every in-flight shard back, retry budgets untouched."""
        for index, _, token in inflight.values():
            attempt_end(index, token, "requeued")
            queue.append((index, now))
        inflight.clear()

    def retry_or_drop(index: int, kind: str, error) -> None:
        try:
            ready_at = fail(index, kind, error)
        except _ShardDropped:
            return
        queue.append((index, ready_at))

    try:
        while queue or inflight:
            now = time.monotonic()
            submit_ready(now)
            if not inflight:
                # Everything queued is backing off; sleep to the earliest.
                time.sleep(max(0.0, min(at for _, at in queue) - now))
                continue

            horizons = [
                deadline - now
                for _, deadline, _ in inflight.values()
                if deadline is not None
            ]
            if queue and len(inflight) < workers:
                horizons.append(min(at for _, at in queue) - now)
            wait_s = max(0.0, min(horizons)) if horizons else None
            completed, _ = wait_futures(
                list(inflight), timeout=wait_s, return_when="FIRST_COMPLETED"
            )

            broken: list[int] = []
            for future in completed:
                index, _, token = inflight.pop(future)
                try:
                    value = future.result()
                except BrokenExecutor:
                    # The pool died under this shard; the loss is not
                    # attributable to any one shard, so no retry is burnt.
                    attempt_end(index, token, "worker-loss")
                    broken.append(index)
                except Exception as error:
                    attempt_end(index, token, "error")
                    retry_or_drop(index, "error", error)
                else:
                    attempt_end(index, token, "ok")
                    finish(index, value)

            if broken:
                stats["rebuilds"] += 1
                now = time.monotonic()
                casualties = [
                    (index, token) for index, _, token in inflight.values()
                ]
                for index, token in casualties:
                    attempt_end(index, token, "requeued")
                doomed = broken + [index for index, _ in casualties]
                inflight.clear()
                run_span.event(
                    "pool-rebuild", rebuilds=stats["rebuilds"], requeued=len(doomed)
                )
                if stats["rebuilds"] > sup.max_pool_rebuilds:
                    # Some in-flight shard keeps killing workers; fail the
                    # whole in-flight set rather than rebuilding forever.
                    for index in doomed:
                        retry_or_drop(index, "worker-loss", None)
                else:
                    for index in doomed:
                        queue.append((index, now))
                pool.shutdown(wait=False, cancel_futures=True)
                pool = _make_pool(mode, workers)
                continue

            # Enforce per-shard deadlines on whatever is still in flight.
            now = time.monotonic()
            overdue = [
                future
                for future, (_, deadline, _) in inflight.items()
                if deadline is not None and now >= deadline
            ]
            if not overdue:
                continue
            for future in overdue:
                index, _, token = inflight.pop(future)
                attempt_end(index, token, "timeout")
                if mode == "thread":
                    # Threads cannot be interrupted: abandon the attempt
                    # (its eventual result is discarded) and move on.
                    future.cancel()
                    abandoned = True
                retry_or_drop(index, "timeout", None)
            if mode == "process":
                # The hung worker still occupies a process; terminate the
                # pool and requeue the innocent in-flight shards.
                requeue_inflight(now)
                _terminate_pool(pool)
                pool = _make_pool(mode, workers)
    finally:
        clean = not queue and not inflight
        if mode == "process" and not clean:
            # Bailing out mid-run (raise mode): workers may be hung, and a
            # waiting shutdown would join them forever.
            _terminate_pool(pool)
        else:
            # Abandoned (timed-out) threads would block a waiting shutdown.
            pool.shutdown(wait=not abandoned, cancel_futures=True)
