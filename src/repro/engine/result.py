"""Engine results: per-scenario reliability plus execution provenance.

An :class:`EngineResult` answers two questions at once: *what are the
numbers* (the per-scenario :class:`~repro.analysis.result.ReliabilityResult`
values, in submission order, bit-identical to the scalar estimators) and
*how were they produced* (which estimator ran, whether the memo cache or a
shared DP batch served the scenario, and how long it took) — the
provenance an operator needs to trust a wall of nines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.result import ReliabilityResult, format_probability
from repro.engine.scenario import Scenario


@dataclass(frozen=True)
class Provenance:
    """How one scenario's numbers were obtained.

    ``shards`` counts the spawned-stream shards a sampling estimator split
    its trial budget into under an :class:`~repro.engine.ExecutionPolicy`
    (1 for exact estimators and for the legacy single-stream mode).
    """

    estimator: str
    cache_hit: bool = False
    batched: bool = False
    batch_size: int = 1
    seconds: float = 0.0
    shards: int = 1

    def describe(self) -> str:
        source = "cache" if self.cache_hit else (
            f"batch[{self.batch_size}]" if self.batched else "solo"
        )
        suffix = f"/shards[{self.shards}]" if self.shards > 1 else ""
        return f"{self.estimator}/{source}{suffix}"


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario, its reliability result, and how it was computed."""

    scenario: Scenario
    result: ReliabilityResult
    provenance: Provenance


@dataclass(frozen=True)
class EngineResult:
    """Ordered outcomes of one :meth:`ReliabilityEngine.run` call."""

    outcomes: tuple[ScenarioOutcome, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> ScenarioOutcome:
        return self.outcomes[index]

    @property
    def results(self) -> list[ReliabilityResult]:
        """Per-scenario reliability results in submission order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.provenance.cache_hit)

    @property
    def total_seconds(self) -> float:
        return sum(outcome.provenance.seconds for outcome in self.outcomes)

    def table(self) -> list[dict[str, str]]:
        """Paper-style rows with a provenance column for CLI rendering."""
        rows = []
        for outcome in self.outcomes:
            scenario, result = outcome.scenario, outcome.result
            rows.append(
                {
                    "label": scenario.label or f"{result.protocol}/n={result.n}",
                    "protocol": result.protocol,
                    "N": str(result.n),
                    "Safe %": format_probability(result.safe.value),
                    "Live %": format_probability(result.live.value),
                    "Safe and Live %": format_probability(result.safe_and_live.value),
                    "via": outcome.provenance.describe(),
                }
            )
        return rows
