"""Engine results: per-question answers plus execution provenance.

An :class:`EngineResult` answers two questions at once: *what are the
numbers* (the per-scenario :class:`~repro.analysis.result.ReliabilityResult`
values, in submission order, bit-identical to the scalar estimators) and
*how were they produced* (which estimator ran, whether the memo cache or a
shared DP batch served the scenario, and how long it took) — the
provenance an operator needs to trust a wall of nines.

The Query/Answer generalisation keeps the same shape for the time domain:
an :class:`Answer` pairs a :class:`~repro.engine.query.Query` with a typed
value — a ``ReliabilityResult``, an :class:`AvailabilityAnswer`, an
:class:`MTTFAnswer` or a :class:`SimulationAnswer` — plus a
:class:`Provenance` that records the backend, batch and shard counts; an
:class:`AnswerSet` is the ordered result of one mixed-kind
:meth:`~repro.engine.ReliabilityEngine.run` submission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.result import (
    Estimate,
    ReliabilityResult,
    format_probability,
    nines,
)
from repro.engine.query import Query
from repro.engine.runtime import RunReport
from repro.engine.scenario import Scenario
from repro.faults.curves import HOURS_PER_YEAR


@dataclass(frozen=True)
class Provenance:
    """How one question's numbers were obtained.

    ``shards`` counts the spawned-stream shards a sampling estimator (or a
    simulation campaign) split its budget into under an
    :class:`~repro.engine.ExecutionPolicy` (1 for exact estimators and for
    the legacy single-stream mode).  ``backend`` names the query backend
    that produced a time-domain answer; it is empty on the legacy
    scenario path, whose provenance strings are frozen by golden tests.

    ``degraded`` marks a partial answer: the supervised runtime dropped
    ``dropped_shards`` after exhausting their retries (opt-in via
    ``ExecutionPolicy(on_shard_failure="degrade")``), and
    ``effective_trials`` is the trial/replica count actually aggregated.
    All three stay at their defaults on complete answers so complete-run
    provenance (including :meth:`describe` strings and JSON forms) is
    byte-identical with and without supervision.

    ``report`` carries the full :class:`~repro.engine.runtime.RunReport`
    of a supervised execution (attempts, timeouts, retries, rebuilds,
    restores).  It is execution telemetry, not part of the answer: it
    never enters :meth:`Answer.to_dict` (recovery must not change output
    bytes) — surfacing layers (``repro-analyze query --json``, the serve
    ndjson stream) attach it as a separate ``"run"`` key.
    """

    estimator: str
    cache_hit: bool = False
    batched: bool = False
    batch_size: int = 1
    seconds: float = 0.0
    shards: int = 1
    backend: str = ""
    degraded: bool = False
    dropped_shards: tuple[int, ...] = ()
    effective_trials: int | None = None
    report: RunReport | None = None

    def describe(self) -> str:
        source = "cache" if self.cache_hit else (
            f"batch[{self.batch_size}]" if self.batched else "solo"
        )
        suffix = f"/shards[{self.shards}]" if self.shards > 1 else ""
        if self.degraded:
            suffix += f"/degraded[{len(self.dropped_shards)}]"
        head = f"{self.backend}:{self.estimator}" if self.backend else self.estimator
        return f"{head}/{source}{suffix}"


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario, its reliability result, and how it was computed."""

    scenario: Scenario
    result: ReliabilityResult
    provenance: Provenance


@dataclass(frozen=True)
class EngineResult:
    """Ordered outcomes of one :meth:`ReliabilityEngine.run` call."""

    outcomes: tuple[ScenarioOutcome, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[ScenarioOutcome]:
        return iter(self.outcomes)

    def __getitem__(self, index: int) -> ScenarioOutcome:
        return self.outcomes[index]

    @property
    def results(self) -> list[ReliabilityResult]:
        """Per-scenario reliability results in submission order."""
        return [outcome.result for outcome in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.provenance.cache_hit)

    @property
    def total_seconds(self) -> float:
        return sum(outcome.provenance.seconds for outcome in self.outcomes)

    def table(self) -> list[dict[str, str]]:
        """Paper-style rows with a provenance column for CLI rendering."""
        rows = []
        for outcome in self.outcomes:
            scenario, result = outcome.scenario, outcome.result
            rows.append(
                {
                    "label": scenario.label or f"{result.protocol}/n={result.n}",
                    "protocol": result.protocol,
                    "N": str(result.n),
                    "Safe %": format_probability(result.safe.value),
                    "Live %": format_probability(result.live.value),
                    "Safe and Live %": format_probability(result.safe_and_live.value),
                    "via": outcome.provenance.describe(),
                }
            )
        return rows


# ---------------------------------------------------------------------------
# Typed time-domain answer values
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AvailabilityAnswer:
    """Steady-state availability of a quorum under repair.

    ``availability`` is the long-run fraction of time a ``quorum_size``
    quorum is formable — bit-identical to
    :meth:`repro.markov.builders.ClusterMarkovModel.steady_state_availability`.
    ``window_unavailability`` is present when the query asked about a
    window (no-mid-window-repair loss-of-quorum probability).
    """

    quorum_size: int
    availability: float
    window_hours: float | None = None
    window_unavailability: float | None = None

    @property
    def unavailability(self) -> float:
        return 1.0 - self.availability

    @property
    def availability_nines(self) -> float:
        return nines(self.availability)

    def describe(self) -> str:
        text = f"availability {self.availability:.10f} ({self.availability_nines:.2f} nines)"
        if self.window_unavailability is not None:
            text += f", P(down @ {self.window_hours:g}h window) {self.window_unavailability:.3e}"
        return text

    def to_dict(self) -> dict:
        data = {
            "quorum_size": self.quorum_size,
            "availability": self.availability,
            "availability_nines": self.availability_nines,
        }
        if self.window_unavailability is not None:
            data["window_hours"] = self.window_hours
            data["window_unavailability"] = self.window_unavailability
        return data


@dataclass(frozen=True)
class MTTFAnswer:
    """Mean hours to losing liveness (MTTF) and to losing data (MTTDL)."""

    quorum_size: int
    persistence_quorum: int
    mttf_hours: float
    mttdl_hours: float

    @property
    def mttf_years(self) -> float:
        return self.mttf_hours / HOURS_PER_YEAR

    @property
    def mttdl_years(self) -> float:
        return self.mttdl_hours / HOURS_PER_YEAR

    def describe(self) -> str:
        return f"MTTF {self.mttf_years:.3e} yr, MTTDL {self.mttdl_years:.3e} yr"

    def to_dict(self) -> dict:
        return {
            "quorum_size": self.quorum_size,
            "persistence_quorum": self.persistence_quorum,
            "mttf_hours": self.mttf_hours,
            "mttf_years": self.mttf_years,
            "mttdl_hours": self.mttdl_hours,
            "mttdl_years": self.mttdl_years,
        }


@dataclass(frozen=True)
class SimulationAnswer:
    """Audited verdicts of a seeded simulation campaign.

    Violation rates are binomial proportions over ``replicas`` runs with
    Wilson 95% bounds (:class:`~repro.analysis.result.Estimate`).
    ``predicate_mismatches`` counts runs whose trace-level liveness verdict
    disagreed with the §3 predicate for the injected configuration — the
    simulator-vs-theory validation loop as a first-class number.
    ``partition_era_liveness_violations`` counts the stalled runs whose
    missing commands were *all* submitted during an injected network
    partition — a timing-based attribution separating stalls the
    partition plausibly explains from clear-network ones (a concurrent
    quorum-destroying crash can also stall a partition-era command).
    """

    replicas: int
    safety_violations: int
    liveness_violations: int
    predicate_mismatches: int
    safety_violation_rate: Estimate
    liveness_violation_rate: Estimate
    partition_era_liveness_violations: int = 0

    def describe(self) -> str:
        sv, lv = self.safety_violation_rate, self.liveness_violation_rate
        text = (
            f"{self.replicas} runs: unsafe {sv.value:.3f} "
            f"[{sv.ci_low:.3f}, {sv.ci_high:.3f}], "
            f"stalled {lv.value:.3f} [{lv.ci_low:.3f}, {lv.ci_high:.3f}]"
        )
        if self.partition_era_liveness_violations:
            text += f" ({self.partition_era_liveness_violations} partition-era)"
        return text

    def to_dict(self) -> dict:
        data = {
            "replicas": self.replicas,
            "safety_violations": self.safety_violations,
            "liveness_violations": self.liveness_violations,
            "predicate_mismatches": self.predicate_mismatches,
            "safety_violation_rate": self.safety_violation_rate.value,
            "safety_ci": [
                self.safety_violation_rate.ci_low,
                self.safety_violation_rate.ci_high,
            ],
            "liveness_violation_rate": self.liveness_violation_rate.value,
            "liveness_ci": [
                self.liveness_violation_rate.ci_low,
                self.liveness_violation_rate.ci_high,
            ],
        }
        if self.partition_era_liveness_violations:
            data["partition_era_liveness_violations"] = (
                self.partition_era_liveness_violations
            )
        return data


def describe_answer_value(value: object) -> str:
    """One-line rendering of any answer value (CLI table cell)."""
    if isinstance(value, ReliabilityResult):
        return (
            f"safe {format_probability(value.safe.value)}, "
            f"live {format_probability(value.live.value)}, "
            f"S&L {format_probability(value.safe_and_live.value)}"
        )
    describe = getattr(value, "describe", None)
    return describe() if callable(describe) else repr(value)


def answer_value_to_dict(value: object) -> dict:
    """JSON-ready form of any answer value (CLI ``--json`` output)."""
    if isinstance(value, ReliabilityResult):
        return {
            "protocol": value.protocol,
            "n": value.n,
            "method": value.method,
            "safe": value.safe.value,
            "live": value.live.value,
            "safe_and_live": value.safe_and_live.value,
        }
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return {"value": repr(value)}


# ---------------------------------------------------------------------------
# Answers
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Answer:
    """One query, its typed answer value, and how it was computed."""

    query: Query
    value: object
    provenance: Provenance

    @property
    def scenario(self) -> Scenario:
        return self.query.scenario

    @property
    def kind(self) -> str:
        return self.query.kind

    def to_dict(self) -> dict:
        """JSON-ready row: question identity + value + provenance.

        Degradation keys appear only on degraded answers, so complete
        runs — supervised or not, resumed or not — serialise to
        byte-identical JSON.
        """
        data = {
            "kind": self.kind,
            "label": self.query.label,
            "n": self.query.n,
            "answer": answer_value_to_dict(self.value),
            "backend": self.provenance.backend or self.provenance.estimator,
            "cache_hit": self.provenance.cache_hit,
            "batched": self.provenance.batched,
            "shards": self.provenance.shards,
        }
        if self.provenance.degraded:
            data["degraded"] = True
            data["dropped_shards"] = list(self.provenance.dropped_shards)
            if self.provenance.effective_trials is not None:
                data["effective_trials"] = self.provenance.effective_trials
        return data


@dataclass(frozen=True)
class AnswerSet:
    """Ordered answers of one mixed-kind :meth:`ReliabilityEngine.run` call."""

    answers: tuple[Answer, ...] = field(default_factory=tuple)

    def __len__(self) -> int:
        return len(self.answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(self.answers)

    def __getitem__(self, index: int) -> Answer:
        return self.answers[index]

    @property
    def values(self) -> list[object]:
        """Per-query answer values in submission order."""
        return [answer.value for answer in self.answers]

    @property
    def cache_hits(self) -> int:
        return sum(1 for answer in self.answers if answer.provenance.cache_hit)

    @property
    def total_seconds(self) -> float:
        return sum(answer.provenance.seconds for answer in self.answers)

    def table(self) -> list[dict[str, str]]:
        """Mixed-kind rows for CLI rendering."""
        rows = []
        for answer in self.answers:
            rows.append(
                {
                    "label": answer.query.label or f"{answer.kind}/n={answer.query.n}",
                    "kind": answer.kind,
                    "N": str(answer.query.n),
                    "answer": describe_answer_value(answer.value),
                    "via": answer.provenance.describe(),
                }
            )
        return rows
