"""Chaos self-test harness: inject faults into the campaign runtime itself.

The simulator injects faults into *clusters*; this module dogfoods the
same idea onto the execution layer, so every recovery path of
:func:`repro.engine.runtime.run_supervised` can be proven in CI instead
of trusted.  A :class:`ChaosPlan` marks deterministically chosen shards
with worker faults:

``raise``
    The attempt raises :class:`ChaosInjectedError` (retry / degradation
    paths).
``hang``
    The attempt sleeps ``seconds`` before completing (timeout paths; pick
    ``seconds`` well above the supervision timeout).
``delay``
    The attempt sleeps ``seconds`` and then succeeds (slow-but-healthy
    shards must pass untouched).
``kill``
    Under a process pool the attempt kills its worker process outright
    (``os._exit``), exercising ``BrokenProcessPool`` requeue + pool
    rebuild.  Under thread/serial execution — where killing the worker
    would kill the caller — it downgrades to ``raise``.

Faults are deterministic in (shard index, attempt number): each shard's
attempt counter lives in a marker file under ``state_dir``, so the count
survives worker-process death — a ``times=1`` fault hits exactly the
first attempt and the retry succeeds, in every executor mode.  Attempts
for one shard are strictly sequential (the runtime never runs two
attempts of a shard concurrently... a timed-out *thread* attempt may
still be unwinding, so thread-mode hang tests should use ``times=1``,
which the abandoned attempt has already consumed).

The injection subsystem itself supplies the vocabulary:
:func:`chaos_from_fault_plan` compiles a declarative
:class:`repro.injection.FaultPlan` against a fleet of *shards* — crash
events become worker faults for the shards they name (fail-once when the
event schedules a recovery, permanent otherwise) and adversary shards
hang — so the same plan language that attacks simulated clusters attacks
the runtime that runs them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

from repro.errors import InvalidConfigurationError

#: Worker-fault kinds a chaos plan may inject.
CHAOS_KINDS = ("raise", "hang", "delay", "kill")

#: ``times`` value meaning "every attempt" (a permanently poisoned shard).
ALWAYS = -1


class ChaosInjectedError(RuntimeError):
    """The deliberate worker failure a ``raise`` chaos fault produces."""


@dataclass(frozen=True)
class ShardFault:
    """One shard's injected worker fault.

    ``times`` bounds how many attempts the fault affects (:data:`ALWAYS`
    = every attempt); ``seconds`` is the sleep for ``hang``/``delay``.
    """

    kind: str
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise InvalidConfigurationError(
                f"unknown chaos fault kind {self.kind!r}; expected one of {CHAOS_KINDS}"
            )
        if self.times != ALWAYS and self.times < 1:
            raise InvalidConfigurationError(
                f"times must be >= 1 (or ALWAYS), got {self.times}"
            )
        if self.seconds < 0:
            raise InvalidConfigurationError(
                f"seconds must be >= 0, got {self.seconds}"
            )


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic shard-level fault assignment for one supervised run.

    ``state_dir`` holds the per-shard attempt markers; use a fresh
    temporary directory per run so attempt counts never leak between
    runs.  The plan travels inside the worker payload (it must pickle for
    process pools), and applies *before* the wrapped worker executes, so
    a faulted attempt never consumes its shard's random stream.
    """

    faults: tuple[tuple[int, ShardFault], ...]
    state_dir: str

    def __post_init__(self) -> None:
        faults = tuple(
            (int(index), fault) for index, fault in dict(self.faults).items()
        ) if isinstance(self.faults, Mapping) else tuple(self.faults)
        object.__setattr__(
            self, "faults", tuple(sorted(faults, key=lambda item: item[0]))
        )
        seen = set()
        for index, fault in self.faults:
            if index < 0:
                raise InvalidConfigurationError(
                    f"chaos shard index must be >= 0, got {index}"
                )
            if index in seen:
                raise InvalidConfigurationError(
                    f"duplicate chaos fault for shard {index}"
                )
            seen.add(index)
            if not isinstance(fault, ShardFault):
                raise InvalidConfigurationError(
                    "chaos faults must map shard index -> ShardFault"
                )
        if not str(self.state_dir):
            raise InvalidConfigurationError("chaos plan needs a state_dir")

    def fault_for(self, index: int) -> ShardFault | None:
        for shard, fault in self.faults:
            if shard == index:
                return fault
        return None

    def _attempt(self, index: int) -> int:
        """Record one attempt of shard ``index``; returns its 0-based number.

        The marker file's size is the attempt count — an append survives
        worker-process death, which is exactly what makes ``kill`` faults
        terminate: the respawned attempt sees the prior one happened.
        """
        directory = Path(self.state_dir)
        directory.mkdir(parents=True, exist_ok=True)
        marker = directory / f"shard-{index}.attempts"
        with marker.open("ab") as handle:
            handle.write(b".")
            handle.flush()
            os.fsync(handle.fileno())
            return handle.tell() - 1

    def apply(self, index: int, mode: str) -> None:
        """Inject shard ``index``'s fault for the current attempt, if any."""
        fault = self.fault_for(index)
        if fault is None:
            return
        attempt = self._attempt(index)
        if fault.times != ALWAYS and attempt >= fault.times:
            return
        if fault.kind == "delay":
            time.sleep(fault.seconds)
            return
        if fault.kind == "hang":
            time.sleep(fault.seconds)
            raise ChaosInjectedError(
                f"chaos hang on shard {index} outlived its sleep "
                "(supervision timeout should have fired first)"
            )
        if fault.kind == "kill" and mode == "process":
            os._exit(17)
        raise ChaosInjectedError(
            f"chaos {fault.kind} fault on shard {index} (attempt {attempt})"
        )

    def bind(self, worker, mode: str) -> "ChaosWorker":
        """Wrap ``worker`` for :func:`repro.engine.runtime.run_supervised`."""
        return ChaosWorker(worker, self, mode)


@dataclass(frozen=True)
class ChaosWorker:
    """Picklable worker wrapper: inject the shard's fault, then delegate.

    The runtime hands it ``(shard_index, payload)`` pairs — the index is
    what makes injection deterministic and independent of worker count.
    """

    worker: object = field()
    plan: ChaosPlan = field()
    mode: str = "process"

    def __call__(self, indexed_payload):
        index, payload = indexed_payload
        self.plan.apply(index, self.mode)
        return self.worker(payload)


def chaos_from_fault_plan(
    plan,
    *,
    shards: int,
    state_dir: str,
    duration: float | None = None,
    hang_seconds: float = 0.5,
    seed: int = 0,
) -> ChaosPlan:
    """Compile a :class:`repro.injection.FaultPlan` into runtime chaos.

    The plan is compiled by :func:`repro.injection.compile_faults` against
    a zero-failure fleet of ``shards`` "nodes" (one per shard), drawing
    any stochastic choices from ``seed``.  Each compiled outage maps to a
    worker fault on its shard: an outage *with* a scheduled recovery
    fails the shard once (retry succeeds), a terminal outage poisons it
    permanently; adversary (Byzantine) shards hang for ``hang_seconds``
    once.  Network events have no runtime analogue and are ignored.
    """
    from repro._rng import as_generator
    from repro.faults.mixture import uniform_fleet
    from repro.injection.campaign import compile_faults

    if shards <= 0:
        raise InvalidConfigurationError(f"shards must be positive, got {shards}")
    span = float(duration) if duration is not None else float(max(shards, 2))
    compiled = compile_faults(
        plan,
        fleet=uniform_fleet(shards, 0.0),
        duration=span,
        crash_window=(0.0, span / 2),
        rng=as_generator(seed),
    )
    faults: dict[int, ShardFault] = {}
    for shard, _, recover in compiled.outages:
        faults[shard] = ShardFault(
            kind="raise", times=1 if recover is not None else ALWAYS
        )
    for shard in compiled.behaviours:
        faults.setdefault(
            shard, ShardFault(kind="hang", times=1, seconds=hang_seconds)
        )
    return ChaosPlan(faults=tuple(sorted(faults.items())), state_dir=state_dir)
