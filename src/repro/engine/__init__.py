"""Scenario/Engine API: the batched front door to reliability analysis.

The paper's pitch is that consensus deployments should report guarantees
the way S3 reports durability — nines computed from explicit failure
scenarios.  This package makes the *scenario* the first-class object:

>>> from repro.engine import Scenario, ScenarioSet, default_engine
>>> from repro import RaftSpec, uniform_fleet
>>> outcome = default_engine().run_one(
...     Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01)))
>>> round(outcome.result.safe_and_live.value, 6)
0.999702

Sweeps submit a :class:`ScenarioSet` — built by hand, from the
:meth:`ScenarioSet.grid` builder, or from a JSON scenario file — and the
:class:`ReliabilityEngine` plans the execution: shared counting-DP sweeps
for same-size symmetric scenarios, a bounded memo cache for repeated
questions, and the pluggable estimator registry for everything else.
Every consumer in this repository (``analyze``/``analyze_batch``, the
planner, committee search, horizon sweeps, the CLI) now routes through
here, so batch execution is the default path, not something each caller
reinvents.

Beyond point reliability, the engine answers *time-domain* questions
through the same front door: a :class:`Query` couples a scenario with a
question kind (:class:`ReliabilityQuery`, :class:`AvailabilityQuery`,
:class:`MTTFQuery`, :class:`SimulationQuery`) and a mixed
:class:`QuerySet` routes each row to the backend registered for its kind
(:func:`register_backend`), batching same-chain CTMC solves and fanning
simulation replicas across the :class:`ExecutionPolicy` pool.
:class:`SimulationQuery` campaigns accept a declarative
:class:`repro.injection.FaultPlan` (``faults=``) describing outages,
partitions, bursts and Byzantine adversary mixes.  Answers come back as a
typed :class:`AnswerSet` whose :class:`Provenance` records backend, batch
and shard counts.

Campaign execution is fault-tolerant: an :class:`ExecutionPolicy` with
supervision knobs (``timeout``, ``retries``, ``on_shard_failure``,
``checkpoint_dir``) routes shard fan-out through
:func:`repro.engine.runtime.run_supervised` — per-shard timeouts, retries
that re-execute the same spawned stream bit-identically, worker-loss
recovery, graceful degradation with ``degraded`` provenance, and
checkpoint/resume journals (:class:`~repro.engine.runtime.CampaignCheckpoint`).
:mod:`repro.engine.chaos` injects deterministic worker faults to prove
every recovery path in CI.
"""

from repro.engine.chaos import (
    ChaosInjectedError,
    ChaosPlan,
    ShardFault,
    chaos_from_fault_plan,
)
from repro.engine.engine import ReliabilityEngine, default_engine
from repro.engine.execution import ExecutionPolicy
from repro.engine.runtime import (
    CampaignCheckpoint,
    RunReport,
    Supervision,
    dispatch,
    run_supervised,
)
from repro.engine.query import (
    AvailabilityQuery,
    MTTFQuery,
    Query,
    QuerySet,
    ReliabilityQuery,
    SimulationQuery,
    query_from_dict,
    register_query_kind,
    registered_query_kinds,
)
from repro.engine.registry import (
    get_backend,
    get_estimator,
    register_backend,
    register_estimator,
    registered_backends,
    registered_estimators,
)
from repro.engine.result import (
    Answer,
    AnswerSet,
    AvailabilityAnswer,
    EngineResult,
    MTTFAnswer,
    Provenance,
    ScenarioOutcome,
    SimulationAnswer,
)
from repro.engine.backends import register_simulation_factory
from repro.engine.scenario import (
    Scenario,
    ScenarioSet,
    SpecCodec,
    register_spec_codec,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "Scenario",
    "ScenarioSet",
    "Query",
    "QuerySet",
    "ReliabilityQuery",
    "AvailabilityQuery",
    "MTTFQuery",
    "SimulationQuery",
    "ReliabilityEngine",
    "ExecutionPolicy",
    "Supervision",
    "RunReport",
    "CampaignCheckpoint",
    "dispatch",
    "run_supervised",
    "ChaosPlan",
    "ShardFault",
    "ChaosInjectedError",
    "chaos_from_fault_plan",
    "EngineResult",
    "ScenarioOutcome",
    "Answer",
    "AnswerSet",
    "AvailabilityAnswer",
    "MTTFAnswer",
    "SimulationAnswer",
    "Provenance",
    "default_engine",
    "register_estimator",
    "get_estimator",
    "registered_estimators",
    "register_backend",
    "get_backend",
    "registered_backends",
    "register_query_kind",
    "registered_query_kinds",
    "query_from_dict",
    "register_simulation_factory",
    "SpecCodec",
    "register_spec_codec",
    "spec_to_dict",
    "spec_from_dict",
]
