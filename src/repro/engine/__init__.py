"""Scenario/Engine API: the batched front door to reliability analysis.

The paper's pitch is that consensus deployments should report guarantees
the way S3 reports durability — nines computed from explicit failure
scenarios.  This package makes the *scenario* the first-class object:

>>> from repro.engine import Scenario, ScenarioSet, default_engine
>>> from repro import RaftSpec, uniform_fleet
>>> outcome = default_engine().run_one(
...     Scenario(spec=RaftSpec(3), fleet=uniform_fleet(3, 0.01)))
>>> round(outcome.result.safe_and_live.value, 6)
0.999702

Sweeps submit a :class:`ScenarioSet` — built by hand, from the
:meth:`ScenarioSet.grid` builder, or from a JSON scenario file — and the
:class:`ReliabilityEngine` plans the execution: shared counting-DP sweeps
for same-size symmetric scenarios, a bounded memo cache for repeated
questions, and the pluggable estimator registry for everything else.
Every consumer in this repository (``analyze``/``analyze_batch``, the
planner, committee search, horizon sweeps, the CLI) now routes through
here, so batch execution is the default path, not something each caller
reinvents.
"""

from repro.engine.engine import ReliabilityEngine, default_engine
from repro.engine.execution import ExecutionPolicy
from repro.engine.registry import (
    get_estimator,
    register_estimator,
    registered_estimators,
)
from repro.engine.result import EngineResult, Provenance, ScenarioOutcome
from repro.engine.scenario import (
    Scenario,
    ScenarioSet,
    SpecCodec,
    register_spec_codec,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "Scenario",
    "ScenarioSet",
    "ReliabilityEngine",
    "ExecutionPolicy",
    "EngineResult",
    "ScenarioOutcome",
    "Provenance",
    "default_engine",
    "register_estimator",
    "get_estimator",
    "registered_estimators",
    "SpecCodec",
    "register_spec_codec",
    "spec_to_dict",
    "spec_from_dict",
]
