"""Scenario objects: one reliability question, fully specified.

The paper's front door is a question of the form *"what Safe/Live nines
does this deployment give me?"*.  A :class:`Scenario` pins everything that
question needs — protocol spec, fleet, estimator choice and budget, and
optionally a correlated-failure model or the horizon window the fleet was
projected for — into one frozen value that can be hashed (for the engine's
memo cache), grouped (for batched execution) and serialized (for the CLI's
JSON scenario files).

:class:`ScenarioSet` is the unit of work submitted to
:class:`repro.engine.ReliabilityEngine`: an ordered collection of
scenarios, with a :meth:`ScenarioSet.grid` builder for the
sizes × probabilities × protocols sweeps every consumer of this library
ends up writing.

Serialization covers the protocol-zoo specs registered via
:func:`register_spec_codec` (Raft, FlexRaft, PBFT out of the box; third
parties can register their own).  Scenarios carrying a live
:class:`~repro.faults.correlation.CorrelationModel` are *not*
serializable — correlation structures are process-local objects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro._rng import SeedLike
from repro.analysis.config import FaultKind
from repro.errors import InvalidConfigurationError
from repro.faults.correlation import CorrelationModel
from repro.faults.mixture import Fleet, NodeModel, byzantine_fleet, uniform_fleet
from repro.protocols.base import ProtocolSpec
from repro.protocols.benor import BenOrSpec, ByzantineBenOrSpec
from repro.protocols.pbft import PBFTSpec
from repro.protocols.raft import FlexibleRaftSpec, RaftSpec

#: Estimator names the default registry provides (see repro.engine.registry).
KNOWN_METHODS = ("auto", "counting", "exact", "monte-carlo", "importance")


# ---------------------------------------------------------------------------
# Spec codecs: (de)serialization of the protocol zoo
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SpecCodec:
    """How one protocol family round-trips through dicts/JSON."""

    name: str
    spec_type: type
    build: Callable[..., ProtocolSpec]
    params: Callable[[ProtocolSpec], dict]


_SPEC_CODECS: dict[str, SpecCodec] = {}
_SPEC_CODECS_BY_TYPE: dict[type, SpecCodec] = {}


def register_spec_codec(
    name: str,
    spec_type: type,
    build: Callable[..., ProtocolSpec],
    params: Callable[[ProtocolSpec], dict],
) -> SpecCodec:
    """Register a protocol family for scenario (de)serialization.

    ``build(**params)`` must reconstruct a spec whose predicates are
    identical to the one ``params`` was read from.  Registration is
    idempotent per name (last registration wins), so downstream packages
    can override the built-ins.
    """
    codec = SpecCodec(name=name, spec_type=spec_type, build=build, params=params)
    _SPEC_CODECS[name] = codec
    _SPEC_CODECS_BY_TYPE[spec_type] = codec
    return codec


register_spec_codec(
    "raft",
    RaftSpec,
    lambda n, q_per=None, q_vc=None: RaftSpec(n, q_per=q_per, q_vc=q_vc),
    lambda spec: {"n": spec.n, "q_per": spec.q_per, "q_vc": spec.q_vc},
)
register_spec_codec(
    "flexraft",
    FlexibleRaftSpec,
    lambda n, q_per, q_vc: FlexibleRaftSpec(n, q_per, q_vc),
    lambda spec: {"n": spec.n, "q_per": spec.q_per, "q_vc": spec.q_vc},
)
register_spec_codec(
    "benor",
    BenOrSpec,
    lambda n: BenOrSpec(n),
    lambda spec: {"n": spec.n},
)
register_spec_codec(
    "byz-benor",
    ByzantineBenOrSpec,
    lambda n: ByzantineBenOrSpec(n),
    lambda spec: {"n": spec.n},
)
register_spec_codec(
    "pbft",
    PBFTSpec,
    lambda n, q_eq=None, q_per=None, q_vc=None, q_vc_t=None: PBFTSpec(
        n, q_eq=q_eq, q_per=q_per, q_vc=q_vc, q_vc_t=q_vc_t
    ),
    lambda spec: {
        "n": spec.n,
        "q_eq": spec.q_eq,
        "q_per": spec.q_per,
        "q_vc": spec.q_vc,
        "q_vc_t": spec.q_vc_t,
    },
)


def spec_to_dict(spec: ProtocolSpec) -> dict:
    """Serializable form of a registered protocol spec."""
    codec = _SPEC_CODECS_BY_TYPE.get(type(spec))
    if codec is None:
        raise InvalidConfigurationError(
            f"no scenario codec registered for {type(spec).__qualname__}; "
            "use register_spec_codec() to add one"
        )
    return {"protocol": codec.name, **codec.params(spec)}


def spec_from_dict(data: Mapping) -> ProtocolSpec:
    """Rebuild a protocol spec from its dict form."""
    payload = dict(data)
    name = payload.pop("protocol", None)
    if name is None:
        raise InvalidConfigurationError("spec dict needs a 'protocol' field")
    codec = _SPEC_CODECS.get(name)
    if codec is None:
        raise InvalidConfigurationError(
            f"unknown protocol {name!r}; registered: {sorted(_SPEC_CODECS)}"
        )
    return codec.build(**payload)


def _fleet_to_dict(fleet: Fleet) -> dict:
    return {
        "nodes": [
            {"p_crash": node.p_crash, "p_byzantine": node.p_byzantine}
            for node in fleet
        ]
    }


def _fleet_from_dict(data: Mapping) -> Fleet:
    if "nodes" in data:
        return Fleet(
            tuple(
                NodeModel(
                    p_crash=float(node.get("p_crash", 0.0)),
                    p_byzantine=float(node.get("p_byzantine", 0.0)),
                )
                for node in data["nodes"]
            )
        )
    if "uniform" in data:
        spec = dict(data["uniform"])
        return uniform_fleet(
            int(spec["n"]),
            float(spec["p_fail"]),
            byzantine_fraction=float(spec.get("byzantine_fraction", 0.0)),
        )
    raise InvalidConfigurationError("fleet dict needs a 'nodes' list or a 'uniform' spec")


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One reliability question: a (spec, fleet) pair plus estimator budget.

    ``method`` is an estimator name from the engine registry (``"auto"``
    resolves exactly like :func:`repro.analysis.analyze` always has:
    counting DP for symmetric specs, exact enumeration for small
    asymmetric fleets, Monte-Carlo otherwise).  ``trials``/``seed`` budget
    the sampling estimators.  ``correlation`` switches Monte-Carlo to the
    correlated sampler with ``failure_kind`` outcomes.  ``window_hours``
    and ``label`` are provenance-only metadata (horizon sweeps stamp the
    window each scenario was projected for).
    """

    spec: ProtocolSpec
    fleet: Fleet
    method: str = "auto"
    trials: int = 100_000
    seed: SeedLike = None
    correlation: CorrelationModel | None = None
    failure_kind: FaultKind = FaultKind.CRASH
    window_hours: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        # trials is deliberately not validated here: only the sampling
        # estimators read it, and they raise at estimation time exactly as
        # the pre-engine free functions did (exact paths ignore it).
        if self.correlation is not None and self.correlation.n != self.spec.n:
            raise InvalidConfigurationError(
                f"correlation model has {self.correlation.n} nodes "
                f"but spec expects {self.spec.n}"
            )

    @property
    def n(self) -> int:
        return self.fleet.n

    def fleet_key(self) -> tuple:
        """Hashable identity of the fleet's failure probabilities.

        A tuple of primitive ``(p_crash, p_byzantine)`` pairs: node labels
        and costs do not participate (they never influence estimator
        output), and primitive tuples hash at C speed — this key sits on
        the engine's per-scenario hot path.
        """
        return tuple((node.p_crash, node.p_byzantine) for node in self.fleet.nodes)

    def cache_key(
        self, resolved_method: str, *, fleet_key: tuple | None = None
    ) -> tuple | None:
        """Memo-cache key, or ``None`` when the outcome is not reusable.

        Deterministic estimations (counting/exact, and sampling runs with
        an explicit *value* seed) are cacheable.  Unseeded sampling,
        generator-object seeds (stateful: every historical call advanced
        the stream) and correlated scenarios are not.  ``resolved_method``
        is the concrete estimator the engine picked after ``"auto"``
        resolution; pass ``fleet_key`` when already computed to avoid
        rebuilding it.  (The engine inlines this logic on its hot path,
        keying on the estimator function rather than the name; this method
        is the readable reference.)
        """
        if self.correlation is not None:
            return None
        if fleet_key is None:
            fleet_key = self.fleet_key()
        base = (self.spec.grouping_key(), fleet_key, resolved_method)
        if resolved_method in ("counting", "exact"):
            # Exact answers are budget-independent: any trials/seed hits.
            return base
        if not isinstance(self.seed, (int, np.integer)):
            return None
        return base + (self.trials, int(self.seed), self.failure_kind)

    def with_label(self, label: str) -> "Scenario":
        return replace(self, label=label)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready form; raises for process-local correlation models."""
        if self.correlation is not None:
            raise InvalidConfigurationError(
                "scenarios with a live correlation model are not serializable"
            )
        data: dict = {
            "spec": spec_to_dict(self.spec),
            "fleet": _fleet_to_dict(self.fleet),
            "method": self.method,
        }
        if self.trials != 100_000:
            data["trials"] = self.trials
        if self.seed is not None:
            data["seed"] = self.seed
        if self.failure_kind is not FaultKind.CRASH:
            data["failure_kind"] = self.failure_kind.name.lower()
        if self.window_hours is not None:
            data["window_hours"] = self.window_hours
        if self.label:
            data["label"] = self.label
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        kind_name = str(data.get("failure_kind", "crash")).upper()
        try:
            kind = FaultKind[kind_name]
        except KeyError:
            raise InvalidConfigurationError(f"unknown failure_kind {kind_name!r}")
        return cls(
            spec=spec_from_dict(data["spec"]),
            fleet=_fleet_from_dict(data["fleet"]),
            method=str(data.get("method", "auto")),
            trials=int(data.get("trials", 100_000)),
            seed=data.get("seed"),
            failure_kind=kind,
            window_hours=data.get("window_hours"),
            label=str(data.get("label", "")),
        )


# ---------------------------------------------------------------------------
# ScenarioSet
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSet:
    """An ordered batch of scenarios — the engine's unit of work."""

    scenarios: tuple[Scenario, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not all(isinstance(s, Scenario) for s in self.scenarios):
            raise InvalidConfigurationError("ScenarioSet entries must be Scenario instances")

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def extend(self, extra: Iterable[Scenario]) -> "ScenarioSet":
        return ScenarioSet(self.scenarios + tuple(extra))

    # -- builders ----------------------------------------------------------
    @classmethod
    def build(cls, scenarios: Iterable[Scenario]) -> "ScenarioSet":
        return cls(tuple(scenarios))

    @classmethod
    def grid(
        cls,
        protocols: Sequence[str] = ("raft",),
        sizes: Iterable[int] = (3, 5, 7),
        probabilities: Iterable[float] = (0.01,),
        *,
        byzantine_fraction: float | None = None,
        method: str = "auto",
        trials: int = 100_000,
        seed: SeedLike = None,
    ) -> "ScenarioSet":
        """Cross-product builder: protocols × sizes × probabilities.

        Protocol names resolve through the spec-codec registry with default
        quorum parameters.  With ``byzantine_fraction`` unset, each
        protocol gets its conventional fleet: PBFT the paper's Table-1
        worst case (every failure Byzantine), everything else a crash-only
        uniform fleet.  Setting ``byzantine_fraction`` gives **every
        protocol the same mixed-fault fleet** per grid cell — the "same
        deployment, every protocol" question — which lets the engine share
        one joint-count DP per fleet across all protocols of that size.
        Scenario labels encode the grid cell.
        """
        scenarios = []
        sizes = tuple(sizes)
        probabilities = tuple(probabilities)
        codecs = []
        for name in protocols:
            codec = _SPEC_CODECS.get(name)
            if codec is None:
                raise InvalidConfigurationError(
                    f"unknown protocol {name!r}; registered: {sorted(_SPEC_CODECS)}"
                )
            codecs.append((name, codec))
        for n in sizes:
            specs = [(name, codec.build(n)) for name, codec in codecs]
            for p in probabilities:
                shared = (
                    uniform_fleet(n, p, byzantine_fraction=byzantine_fraction)
                    if byzantine_fraction is not None
                    else None
                )
                for name, spec in specs:
                    if shared is not None:
                        fleet = shared
                    elif isinstance(spec, PBFTSpec):
                        fleet = byzantine_fleet(n, p)
                    else:
                        fleet = uniform_fleet(n, p)
                    scenarios.append(
                        Scenario(
                            spec=spec,
                            fleet=fleet,
                            method=method,
                            trials=trials,
                            seed=seed,
                            label=f"{name}/n={n}/p={p:g}",
                        )
                    )
        return cls(tuple(scenarios))

    # -- serialization -----------------------------------------------------
    def to_dicts(self) -> list[dict]:
        return [scenario.to_dict() for scenario in self.scenarios]

    @classmethod
    def from_dicts(cls, rows: Iterable[Mapping]) -> "ScenarioSet":
        return cls(tuple(Scenario.from_dict(row) for row in rows))

    def to_json(self) -> str:
        return json.dumps({"scenarios": self.to_dicts()}, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSet":
        """Parse a scenario file: a grid description or explicit scenarios.

        Accepted shapes::

            {"scenarios": [{...}, {...}]}
            [{...}, {...}]
            {"grid": {"protocols": ["raft", "pbft"], "sizes": [3, 5],
                      "probabilities": [0.01, 0.05]}}
        """
        data = json.loads(text)
        if isinstance(data, list):
            return cls.from_dicts(data)
        if isinstance(data, Mapping):
            if "grid" in data:
                grid = dict(data["grid"])
                known = {
                    "protocols",
                    "sizes",
                    "probabilities",
                    "byzantine_fraction",
                    "method",
                    "trials",
                    "seed",
                }
                unknown = sorted(set(grid) - known)
                if unknown:
                    raise InvalidConfigurationError(
                        f"unknown grid fields {unknown}; expected a subset of {sorted(known)}"
                    )
                fraction = grid.get("byzantine_fraction")
                return cls.grid(
                    protocols=tuple(grid.get("protocols", ("raft",))),
                    sizes=tuple(grid.get("sizes", (3, 5, 7))),
                    probabilities=tuple(grid.get("probabilities", (0.01,))),
                    byzantine_fraction=None if fraction is None else float(fraction),
                    method=str(grid.get("method", "auto")),
                    trials=int(grid.get("trials", 100_000)),
                    seed=grid.get("seed"),
                )
            if "scenarios" in data:
                return cls.from_dicts(data["scenarios"])
        raise InvalidConfigurationError(
            "scenario JSON must be a list, {'scenarios': [...]} or {'grid': {...}}"
        )
