"""Built-in query backends: reliability, availability, MTTF, simulation.

Each backend answers one same-kind batch of queries from a single
:meth:`~repro.engine.ReliabilityEngine.run` call:

``reliability``
    Delegates the scenarios back to the engine's scenario planner, so the
    whole PR 2/3 machinery (shared counting-DP sweeps, LRU memo, policy
    fan-out, spawned-stream sharding) applies unchanged; the resulting
    outcomes are re-wrapped as :class:`~repro.engine.result.Answer`\\ s.
``availability`` / ``mttf``
    CTMC questions batched *per chain*: queries whose
    :meth:`~repro.engine.query._MarkovQuery.chain_key` matches share one
    :class:`~repro.markov.builders.ClusterMarkovModel` solve (one
    steady-state system for availability; one absorption system per
    distinct threshold for MTTF/MTTDL), and every per-query value is
    produced by the same builder methods a direct caller would use — so
    answers are bit-identical to :mod:`repro.markov.builders`.
``simulation``
    Seeded discrete-event campaigns: replica ``i`` draws from child ``i``
    of the query seed's ``SeedSequence`` (the PR 3 spawned-stream
    contract) and replicas are fanned across the
    :class:`~repro.engine.ExecutionPolicy` pool in
    :func:`~repro.analysis.kernels.plan_shards` chunks, so the audited
    verdict counts depend only on ``(replicas, seed)`` — never on the
    worker count or executor mode.  Each replica's faults — sampled or
    correlated window outcomes, crash-recovery, partitions, bursts and
    Byzantine behaviours — are compiled from the query's
    :class:`repro.injection.FaultPlan` by :func:`repro.injection.run_replica`;
    campaign cache keys carry the plan's canonical form and the
    correlation model, so adversary mixes never share memo entries.

    Campaigns are *not* all-or-nothing: a policy with supervision knobs
    (``timeout``, ``retries``, ``on_shard_failure``, ``checkpoint_dir``)
    routes the fan-out through :func:`repro.engine.runtime.run_supervised`
    — failed shards retry on generators rebuilt from the same spawned
    children (bit-identical), a broken pool requeues only the in-flight
    shards, ``on_shard_failure="degrade"`` returns a partial answer over
    the surviving replicas with ``degraded`` provenance instead of
    raising, and ``checkpoint_dir`` journals completed shards so an
    interrupted campaign resumes bit-identically.  Degraded answers never
    enter the memo (a later run may complete the campaign).

Deterministic time-domain answers (Markov always; simulation when the
scenario seed is an ``int``) participate in the engine's bounded LRU memo
under kind-prefixed keys, so repeated questions — a planner loop asking
for the same availability, a re-submitted query file — are answered from
cache with ``cache_hit`` provenance exactly like reliability scenarios.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine.query import (
    AvailabilityQuery,
    MTTFQuery,
    Query,
    SimulationQuery,
)
from repro.engine.registry import register_backend
from repro.engine.result import (
    Answer,
    AvailabilityAnswer,
    MTTFAnswer,
    Provenance,
    SimulationAnswer,
)
from repro.errors import EstimationError
from repro.obs.trace import current_tracer, resolve_context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import ReliabilityEngine
    from repro.engine.execution import ExecutionPolicy
    from repro.protocols.base import ProtocolSpec


# ---------------------------------------------------------------------------
# Reliability: delegate to the scenario planner
# ---------------------------------------------------------------------------
@register_backend("reliability")
def reliability_backend(
    engine: "ReliabilityEngine",
    queries: Sequence[Query],
    policy: "ExecutionPolicy",
) -> list[Answer]:
    from dataclasses import replace

    outcomes = engine.run([query.scenario for query in queries], policy=policy)
    return [
        Answer(
            query=query,
            value=outcome.result,
            provenance=replace(outcome.provenance, backend="reliability"),
        )
        for query, outcome in zip(queries, outcomes)
    ]


# ---------------------------------------------------------------------------
# Markov backends: one CTMC solve per chain
# ---------------------------------------------------------------------------
def _cluster_model(query):
    from repro.markov.builders import ClusterMarkovModel

    return ClusterMarkovModel(
        query.n,
        query.failure_rate_per_hour,
        query.repair_rate_per_hour,
        repair_slots=query.repair_slots,
    )


def _run_markov_kind(
    engine: "ReliabilityEngine",
    queries: Sequence[Query],
    *,
    kind: str,
    question_key,
    answer_pending,
) -> list[Answer]:
    """Shared per-chain scaffolding of the two CTMC backends.

    Groups queries by :meth:`~repro.engine.query._MarkovQuery.chain_key`,
    serves memo hits (keys are ``(kind, chain_key) + question_key(q)``),
    and hands each chain's remaining queries to ``answer_pending`` — which
    performs at most one CTMC solve per distinct linear system and returns
    one value per query, in order.
    """
    answers: list[Answer | None] = [None] * len(queries)
    groups: dict[tuple, list[int]] = {}
    for index, query in enumerate(queries):
        groups.setdefault(query.chain_key(), []).append(index)
    for chain_key, indices in groups.items():
        start = time.perf_counter()
        batch_size = len(indices)
        pending: list[tuple[int, tuple]] = []
        for index in indices:
            query = queries[index]
            key = (kind, chain_key) + question_key(query)
            cached = engine.cache_lookup(key)
            if cached is not None:
                answers[index] = Answer(
                    query,
                    cached,
                    Provenance(estimator="ctmc", cache_hit=True, backend=kind),
                )
            else:
                pending.append((index, key))
        if not pending:
            continue
        values = answer_pending([queries[index] for index, _ in pending])
        share = (time.perf_counter() - start) / len(pending)
        provenance = Provenance(
            estimator="ctmc",
            batched=batch_size > 1,
            batch_size=batch_size,
            seconds=share,
            backend=kind,
        )
        for (index, key), value in zip(pending, values):
            engine.cache_store(key, value)
            answers[index] = Answer(queries[index], value, provenance)
    assert all(answer is not None for answer in answers)
    return answers  # type: ignore[return-value]


@register_backend("availability")
def availability_backend(
    engine: "ReliabilityEngine",
    queries: Sequence[AvailabilityQuery],
    policy: "ExecutionPolicy",
) -> list[Answer]:
    def answer_pending(pending: Sequence[AvailabilityQuery]):
        model = _cluster_model(pending[0])
        pi = model.steady_state_distribution()  # the one solve for this chain
        return [
            AvailabilityAnswer(
                quorum_size=query.resolved_quorum,
                availability=model.steady_state_availability(
                    query.resolved_quorum, pi=pi
                ),
                window_hours=query.window_hours,
                window_unavailability=(
                    None
                    if query.window_hours is None
                    else model.window_unavailability(
                        query.resolved_quorum, query.window_hours
                    )
                ),
            )
            for query in pending
        ]

    return _run_markov_kind(
        engine,
        queries,
        kind="availability",
        question_key=lambda q: (q.resolved_quorum, q.window_hours),
        answer_pending=answer_pending,
    )


@register_backend("mttf")
def mttf_backend(
    engine: "ReliabilityEngine",
    queries: Sequence[MTTFQuery],
    policy: "ExecutionPolicy",
) -> list[Answer]:
    def answer_pending(pending: Sequence[MTTFQuery]):
        model = _cluster_model(pending[0])
        hitting_times: dict[int, float] = {}  # threshold -> one solve each

        def mean_hours(threshold: int) -> float:
            # MTTF with an unreachable threshold is 0.0 by the same
            # convention as ClusterMarkovModel.mttf_liveness.
            if threshold <= 0:
                return 0.0
            value = hitting_times.get(threshold)
            if value is None:
                value = model.mean_time_to_failure_count(threshold)
                hitting_times[threshold] = value
            return value

        return [
            MTTFAnswer(
                quorum_size=query.resolved_quorum,
                persistence_quorum=query.resolved_persistence_quorum,
                mttf_hours=mean_hours(query.n - query.resolved_quorum + 1),
                mttdl_hours=mean_hours(query.resolved_persistence_quorum),
            )
            for query in pending
        ]

    return _run_markov_kind(
        engine,
        queries,
        kind="mttf",
        question_key=lambda q: (q.resolved_quorum, q.resolved_persistence_quorum),
        answer_pending=answer_pending,
    )


# ---------------------------------------------------------------------------
# Simulation backend: sharded seeded campaigns
# ---------------------------------------------------------------------------
#: spec type -> node-factory builder for simulation campaigns.
_SIM_FACTORIES: list[tuple[type, Callable]] = []


def register_simulation_factory(spec_type: type, build: Callable) -> None:
    """Make a protocol family runnable by :class:`SimulationQuery`.

    ``build(spec)`` must return a :data:`repro.sim.cluster.NodeFactory`
    whose nodes realise ``spec``'s quorum rules.  Later registrations take
    precedence, and subclasses are matched most-derived-first.
    """
    _SIM_FACTORIES.insert(0, (spec_type, build))


def _builtin_factories() -> None:
    from repro.protocols.pbft import PBFTSpec
    from repro.protocols.raft import RaftSpec

    def build_raft(spec):
        from repro.sim.raft import raft_node_factory

        return raft_node_factory(q_per=spec.q_per, q_vc=spec.q_vc)

    def build_pbft(spec):
        from repro.sim.pbft import pbft_node_factory

        return pbft_node_factory(
            q_eq=spec.q_eq, q_per=spec.q_per, q_vc=spec.q_vc, q_vc_t=spec.q_vc_t
        )

    # RaftSpec registered first so PBFT (and any third-party family)
    # matches ahead of it; FlexibleRaftSpec rides the RaftSpec entry.
    register_simulation_factory(RaftSpec, build_raft)
    register_simulation_factory(PBFTSpec, build_pbft)


_builtin_factories()


def _node_factory_for(spec: "ProtocolSpec"):
    for spec_type, build in _SIM_FACTORIES:
        if isinstance(spec, spec_type):
            return build(spec)
    raise EstimationError(
        f"no simulation node factory registered for {type(spec).__qualname__}; "
        "use repro.engine.backends.register_simulation_factory() to add one"
    )


#: Target chunk count when fanning a campaign's replicas across workers.
_SIM_SHARD_GRAIN = 16


def _command_schedule(commands: int) -> list[tuple[str, float]]:
    """The fixed client cadence every campaign replica replays.

    Submit times *accumulate* (``at += interval``) exactly as the
    pre-fault-plan loop computed them: the closed form differs by float
    ulps from the third command on, and the DES scheduler breaks
    equal-time ties by insertion order, so the accumulation is part of the
    bit-for-bit PR 4 reproduction contract.
    """
    from repro.engine.query import _COMMAND_INTERVAL, _COMMANDS_START

    schedule = []
    at = _COMMANDS_START
    for i in range(commands):
        schedule.append((f"cmd-{i}", at))
        at += _COMMAND_INTERVAL
    return schedule


def _campaign_chunk(payload):
    """Worker entry point: one shard of replicas, verdicts in replica order.

    Each replica's faults are compiled from its private spawned stream by
    :func:`repro.injection.run_replica`, so the verdicts depend only on
    the per-replica streams — never on how replicas are chunked.

    The payload's third element is the campaign's span context (or
    ``None``): thread-pool workers re-attach to the live tracer and
    record their chunk as a worker-track slice; process-pool children
    degrade to the no-op tracer (see
    :func:`repro.obs.trace.resolve_context`).  Tracing never touches the
    generators, so verdicts are bit-identical with tracing on or off.
    """
    from repro.injection import run_replica

    query, rngs, span_context = payload
    tracer, parent = resolve_context(span_context)
    scenario = query.scenario
    node_factory = _node_factory_for(scenario.spec)
    commands = _command_schedule(query.commands)
    with tracer.span(
        "campaign.chunk", parent=parent, track="workers", replicas=len(rngs)
    ):
        return [
            run_replica(
                scenario.spec,
                scenario.fleet,
                node_factory=node_factory,
                duration=query.duration,
                commands=commands,
                crash_window=query.crash_window,
                rng=rng,
                plan=query.faults,
                correlation=scenario.correlation,
                failure_kind=scenario.failure_kind,
            )
            for rng in rngs
        ]


def _campaign_cache_key(query: SimulationQuery):
    """Memo key for a seeded campaign, or ``None`` when not reusable.

    The key distinguishes everything that changes compiled faults: the
    fault plan's canonical form, the *resolved* Byzantine behaviour
    implementations (so re-registering a behaviour invalidates answers
    computed with the old one), the correlation model (hashable frozen
    models only — a third-party unhashable model simply opts the campaign
    out of the memo) and the sampled-outcome kind, alongside the PR 4
    components (spec, fleet, budget, seed).
    """
    import numpy as np

    scenario = query.scenario
    seed = scenario.seed
    if not isinstance(seed, (int, np.integer)):
        return None
    correlation = scenario.correlation
    if correlation is not None:
        try:
            hash(correlation)
        except TypeError:
            return None
    return (
        "simulation",
        scenario.spec.grouping_key(),
        scenario.fleet_key(),
        query.replicas,
        query.duration,
        query.commands,
        query.crash_window,
        int(seed),
        query.fault_key(),
        query.behaviour_key(),
        correlation,
        scenario.failure_kind,
    )


def _encode_verdicts(verdicts) -> list[list[bool]]:
    """Checkpoint form of one shard's verdict list (4 bools per replica)."""
    return [
        [v.unsafe, v.stalled, v.predicate_mismatch, v.partition_era_only]
        for v in verdicts
    ]


def _decode_verdicts(rows):
    from repro.injection.campaign import ReplicaVerdict

    return [ReplicaVerdict(*(bool(flag) for flag in row)) for row in rows]


def _campaign_checkpoint(policy: "ExecutionPolicy", key, shards: int):
    """The campaign's checkpoint journal, or ``None`` when not resumable.

    Checkpointing needs a stable campaign identity, so it requires both a
    policy ``checkpoint_dir`` and a memoisable cache key (int seed,
    hashable correlation) — the same precondition as the engine memo.
    """
    if policy.checkpoint_dir is None or key is None:
        return None
    from pathlib import Path

    from repro.engine.runtime import CampaignCheckpoint

    digest = CampaignCheckpoint.digest(key)
    return CampaignCheckpoint(
        Path(policy.checkpoint_dir) / f"campaign-{digest}.jsonl",
        key=digest,
        shards=shards,
        encode=_encode_verdicts,
        decode=_decode_verdicts,
    )


@register_backend("simulation")
def simulation_backend(
    engine: "ReliabilityEngine",
    queries: Sequence[SimulationQuery],
    policy: "ExecutionPolicy",
) -> list[Answer]:
    from repro.analysis.kernels import (
        plan_shards,
        rebuild_shard_generators,
        run_sharded,
        spawn_shard_sequences,
    )
    from repro.analysis.montecarlo import estimate_from_counts
    from repro.engine.runtime import run_supervised

    answers: list[Answer] = []
    for query in queries:
        scenario = query.scenario
        seed = scenario.seed
        key = _campaign_cache_key(query)
        if key is not None:
            cached = engine.cache_lookup(key)
            if cached is not None:
                answers.append(
                    Answer(
                        query,
                        cached,
                        Provenance(
                            estimator="des", cache_hit=True, backend="simulation"
                        ),
                    )
                )
                continue
        start = time.perf_counter()
        tracer = current_tracer()
        with tracer.span(
            "campaign",
            label=query.label or "",
            replicas=query.replicas,
            supervised=policy.supervision is not None,
        ) as campaign_span:
            # One spawned stream per *replica* (not per shard): replica i's
            # verdict depends only on (seed, i), making the campaign invariant
            # to worker count AND chunking.  plan_shards then merely groups
            # replicas into pool-sized work items.  Keeping the spawned
            # *children* (not generators) is what makes retries and resumes
            # bit-identical: a shard's payload can be rebuilt from the same
            # children at any time.
            children = spawn_shard_sequences(seed, query.replicas)
            chunk = policy.shard_trials or max(
                1, -(-query.replicas // _SIM_SHARD_GRAIN)
            )
            plan = plan_shards(query.replicas, chunk)
            campaign_span.set("shards", plan.num_shards)
            slices = []
            offset = 0
            for shard in plan.shards:
                slices.append((offset, offset + shard))
                offset += shard

            # The span context rides every payload so worker chunks can
            # re-attach to this trace across the pool hop (None when
            # tracing is disabled — payload shape is identical either way).
            span_context = campaign_span.context()

            def build_payload(
                bounds, query=query, children=children, span_context=span_context
            ):
                low, high = bounds
                return (
                    query,
                    rebuild_shard_generators(children[low:high]),
                    span_context,
                )

            payloads = [build_payload(bounds) for bounds in slices]
            jobs = policy.jobs if policy.parallel else 1
            mode = policy.mode if policy.parallel else "serial"
            supervision = policy.supervision
            if supervision is None:
                chunks = run_sharded(_campaign_chunk, payloads, jobs=jobs, mode=mode)
                report = None
            else:
                chunks, report = run_supervised(
                    _campaign_chunk,
                    payloads,
                    jobs=jobs,
                    mode=mode,
                    supervision=supervision,
                    rebuild=lambda index, slices=slices, build=build_payload: build(
                        slices[index]
                    ),
                    checkpoint=_campaign_checkpoint(policy, key, plan.num_shards),
                    chaos=policy.chaos,
                )
        verdicts = [
            verdict
            for chunk_result in chunks
            if chunk_result is not None
            for verdict in chunk_result
        ]
        degraded = report is not None and report.degraded
        effective = len(verdicts)
        if degraded and not effective:
            raise EstimationError(
                f"campaign for {query.label or query.scenario.spec!r} degraded "
                "to zero surviving replicas; nothing to aggregate"
            )
        unsafe = sum(1 for v in verdicts if v.unsafe)
        stalled = sum(1 for v in verdicts if v.stalled)
        mismatched = sum(1 for v in verdicts if v.predicate_mismatch)
        partition_era = sum(1 for v in verdicts if v.partition_era_only)
        value = SimulationAnswer(
            replicas=effective,
            safety_violations=unsafe,
            liveness_violations=stalled,
            predicate_mismatches=mismatched,
            safety_violation_rate=estimate_from_counts(unsafe, effective),
            liveness_violation_rate=estimate_from_counts(stalled, effective),
            partition_era_liveness_violations=partition_era,
        )
        # A degraded answer is a partial view of the campaign: it never
        # enters the memo (a later run may complete it) and its provenance
        # carries the dropped shard ids and the effective replica count.
        if key is not None and not degraded:
            engine.cache_store(key, value)
        answers.append(
            Answer(
                query,
                value,
                Provenance(
                    estimator="des",
                    seconds=time.perf_counter() - start,
                    shards=plan.num_shards,
                    backend="simulation",
                    degraded=degraded,
                    dropped_shards=report.dropped if degraded else (),
                    effective_trials=effective if degraded else None,
                    report=report,
                ),
            )
        )
    return answers
