"""Pluggable estimator registry for the reliability engine.

Every estimator is a callable ``(Scenario) -> ReliabilityResult`` published
under a name.  The four built-ins mirror the historical free functions —
``counting`` (exact DP, symmetric specs), ``exact`` (vectorized
enumeration), ``monte-carlo`` (batched sampling; correlated when the
scenario carries a model) and ``importance`` (tilted rare-event sampling)
— and third parties can :func:`register_estimator` their own, which makes
them addressable from ``Scenario.method`` and the CLI's JSON scenario
files with no engine changes.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.analysis.result import ReliabilityResult
from repro.errors import EstimationError
from repro.engine.scenario import Scenario

EstimatorFn = Callable[[Scenario], ReliabilityResult]

_ESTIMATORS: Dict[str, EstimatorFn] = {}


def register_estimator(name: str) -> Callable[[EstimatorFn], EstimatorFn]:
    """Decorator: publish ``fn`` as the estimator behind ``name``.

    Re-registering a name replaces the previous estimator, so tests and
    downstream packages can shadow the built-ins.
    """

    def decorator(fn: EstimatorFn) -> EstimatorFn:
        _ESTIMATORS[name] = fn
        return fn

    return decorator


def get_estimator(name: str) -> EstimatorFn:
    """Look up an estimator; error message matches the legacy ``analyze``."""
    try:
        return _ESTIMATORS[name]
    except KeyError:
        raise EstimationError(f"unknown analysis method {name!r}")


def registered_estimators() -> tuple[str, ...]:
    return tuple(sorted(_ESTIMATORS))


# ---------------------------------------------------------------------------
# Built-ins
# ---------------------------------------------------------------------------
@register_estimator("counting")
def _counting(scenario: Scenario) -> ReliabilityResult:
    from repro.analysis.counting import counting_reliability

    return counting_reliability(scenario.spec, scenario.fleet)


#: Stable reference to the built-in counting estimator: the engine's shared
#: DP sweep only substitutes for *this* implementation, so a replacement
#: registered under "counting" is honored instead of being bypassed.
BUILTIN_COUNTING = _counting


@register_estimator("exact")
def _exact(scenario: Scenario) -> ReliabilityResult:
    from repro.analysis.exact import exact_reliability

    return exact_reliability(scenario.spec, scenario.fleet)


@register_estimator("monte-carlo")
def _monte_carlo(scenario: Scenario) -> ReliabilityResult:
    from repro.analysis.montecarlo import monte_carlo_correlated, monte_carlo_reliability

    if scenario.correlation is not None:
        return monte_carlo_correlated(
            scenario.spec,
            scenario.correlation,
            trials=scenario.trials,
            seed=scenario.seed,
            failure_kind=scenario.failure_kind,
        )
    return monte_carlo_reliability(
        scenario.spec, scenario.fleet, trials=scenario.trials, seed=scenario.seed
    )


@register_estimator("importance")
def _importance(scenario: Scenario) -> ReliabilityResult:
    """Rare-event estimator: three tilted runs, one per reliability metric."""
    from repro.analysis.importance import importance_sample_violation

    estimates = {}
    for predicate in ("safe", "live", "safe_and_live"):
        outcome = importance_sample_violation(
            scenario.spec,
            scenario.fleet,
            predicate=predicate,
            trials=scenario.trials,
            seed=scenario.seed,
            failure_kind=scenario.failure_kind,
        )
        estimates[predicate] = outcome.reliability
    return ReliabilityResult(
        protocol=scenario.spec.name,
        n=scenario.fleet.n,
        safe=estimates["safe"],
        live=estimates["live"],
        safe_and_live=estimates["safe_and_live"],
        method="importance",
        detail=f"tilted sampling, {scenario.trials} trials per predicate",
    )


__all__ = [
    "EstimatorFn",
    "register_estimator",
    "get_estimator",
    "registered_estimators",
]
