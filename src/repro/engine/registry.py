"""Pluggable estimator and backend registries for the reliability engine.

Every estimator is a callable ``(Scenario) -> ReliabilityResult`` published
under a name.  The four built-ins mirror the historical free functions —
``counting`` (exact DP, symmetric specs), ``exact`` (vectorized
enumeration), ``monte-carlo`` (batched sampling; correlated when the
scenario carries a model) and ``importance`` (tilted rare-event sampling)
— and third parties can :func:`register_estimator` their own, which makes
them addressable from ``Scenario.method`` and the CLI's JSON scenario
files with no engine changes.

The *backend* registry is the same idea one level up, keyed by query
kind: a backend answers a whole same-kind batch of
:class:`~repro.engine.query.Query` objects at once — which is what lets
the Markov backends share one CTMC solve across a batch and the
simulation backend fan replicas over an
:class:`~repro.engine.ExecutionPolicy` pool.  The built-ins
(``reliability``, ``availability``, ``mttf``, ``simulation``) live in
:mod:`repro.engine.backends`; :func:`register_backend` makes third-party
question kinds addressable from ``QuerySet`` rows and the CLI's JSON
query files with no engine changes.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, TYPE_CHECKING

from repro.analysis.result import ReliabilityResult
from repro.errors import EstimationError
from repro.engine.scenario import Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.query import Query
    from repro.engine.result import Answer

EstimatorFn = Callable[[Scenario], ReliabilityResult]

#: A backend answers one same-kind batch: ``(engine, queries, policy)`` →
#: one :class:`~repro.engine.result.Answer` per query, in order.
BackendFn = Callable[..., "Sequence[Answer]"]

_ESTIMATORS: Dict[str, EstimatorFn] = {}
_BACKENDS: Dict[str, BackendFn] = {}


def register_backend(kind: str) -> Callable[[BackendFn], BackendFn]:
    """Decorator: publish ``fn`` as the backend answering ``kind`` queries.

    ``fn(engine, queries, policy)`` receives the submitting
    :class:`~repro.engine.ReliabilityEngine` (for its memo cache and the
    estimator registry), every query of its kind from one ``run`` call in
    submission order, and the active
    :class:`~repro.engine.ExecutionPolicy`; it must return one
    :class:`~repro.engine.result.Answer` per query, in order.
    Re-registering a kind replaces the previous backend.
    """

    def decorator(fn: BackendFn) -> BackendFn:
        _BACKENDS[kind] = fn
        return fn

    return decorator


def get_backend(kind: str) -> BackendFn:
    """Look up the backend answering ``kind`` queries."""
    try:
        return _BACKENDS[kind]
    except KeyError:
        raise EstimationError(
            f"no backend registered for query kind {kind!r}; "
            f"registered: {sorted(_BACKENDS)}"
        )


def registered_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def register_estimator(name: str) -> Callable[[EstimatorFn], EstimatorFn]:
    """Decorator: publish ``fn`` as the estimator behind ``name``.

    Re-registering a name replaces the previous estimator, so tests and
    downstream packages can shadow the built-ins.
    """

    def decorator(fn: EstimatorFn) -> EstimatorFn:
        _ESTIMATORS[name] = fn
        return fn

    return decorator


def get_estimator(name: str) -> EstimatorFn:
    """Look up an estimator; error message matches the legacy ``analyze``."""
    try:
        return _ESTIMATORS[name]
    except KeyError:
        raise EstimationError(f"unknown analysis method {name!r}")


def registered_estimators() -> tuple[str, ...]:
    return tuple(sorted(_ESTIMATORS))


# ---------------------------------------------------------------------------
# Built-ins
# ---------------------------------------------------------------------------
@register_estimator("counting")
def _counting(scenario: Scenario) -> ReliabilityResult:
    from repro.analysis.counting import counting_reliability

    return counting_reliability(scenario.spec, scenario.fleet)


#: Stable reference to the built-in counting estimator: the engine's shared
#: DP sweep only substitutes for *this* implementation, so a replacement
#: registered under "counting" is honored instead of being bypassed.
BUILTIN_COUNTING = _counting


@register_estimator("exact")
def _exact(scenario: Scenario) -> ReliabilityResult:
    from repro.analysis.exact import exact_reliability

    return exact_reliability(scenario.spec, scenario.fleet)


@register_estimator("monte-carlo")
def _monte_carlo(scenario: Scenario) -> ReliabilityResult:
    from repro.analysis.montecarlo import monte_carlo_correlated, monte_carlo_reliability

    if scenario.correlation is not None:
        return monte_carlo_correlated(
            scenario.spec,
            scenario.correlation,
            trials=scenario.trials,
            seed=scenario.seed,
            failure_kind=scenario.failure_kind,
        )
    return monte_carlo_reliability(
        scenario.spec, scenario.fleet, trials=scenario.trials, seed=scenario.seed
    )


#: Stable reference to the built-in Monte-Carlo estimator: the engine's
#: policy-aware dispatch only shards *this* implementation.
BUILTIN_MONTE_CARLO = _monte_carlo


def _importance_impl(
    scenario: Scenario,
    *,
    jobs: int | None = None,
    sharding: str = "auto",
    shard_trials: int | None = None,
    pool: str = "process",
) -> ReliabilityResult:
    """Rare-event estimator: three tilted runs, one per reliability metric."""
    from repro.analysis.importance import importance_sample_violation

    estimates = {}
    for predicate in ("safe", "live", "safe_and_live"):
        outcome = importance_sample_violation(
            scenario.spec,
            scenario.fleet,
            predicate=predicate,
            trials=scenario.trials,
            seed=scenario.seed,
            failure_kind=scenario.failure_kind,
            jobs=jobs,
            sharding=sharding,
            shard_trials=shard_trials,
            pool=pool,
        )
        estimates[predicate] = outcome.reliability
    return ReliabilityResult(
        protocol=scenario.spec.name,
        n=scenario.fleet.n,
        safe=estimates["safe"],
        live=estimates["live"],
        safe_and_live=estimates["safe_and_live"],
        method="importance",
        detail=f"tilted sampling, {scenario.trials} trials per predicate",
    )


@register_estimator("importance")
def _importance(scenario: Scenario) -> ReliabilityResult:
    return _importance_impl(scenario)


#: Stable reference to the built-in importance estimator (see above).
BUILTIN_IMPORTANCE = _importance

#: The stock estimators by name, frozen at import time.  A process-pool
#: child started without fork re-imports this module and sees exactly
#: these — so only (method, fn) pairs found here may be dispatched to a
#: process pool; anything else (per-engine overrides, shadowed built-ins,
#: third-party registrations) must run where its function object lives.
_STOCK_ESTIMATORS: Dict[str, EstimatorFn] = dict(_ESTIMATORS)


def is_stock_estimator(method: str, fn: EstimatorFn) -> bool:
    """Whether ``fn`` is the stock estimator shipped under ``method``."""
    return _STOCK_ESTIMATORS.get(method) is fn


def estimate_under_policy(
    estimator_fn: EstimatorFn,
    scenario: Scenario,
    policy,
    *,
    jobs: int | None = None,
) -> tuple[ReliabilityResult, int]:
    """Run one estimator under an :class:`~repro.engine.ExecutionPolicy`.

    Returns ``(result, shards)``.  Only the built-in sampling estimators
    understand policies: under a spawned-stream policy they shard their
    trial budget (worker-count-independently) and the shard count lands in
    the scenario's provenance.  Everything else — exact estimators,
    per-engine overrides, third-party registrations, correlated scenarios
    (whose models draw from one shared stream) — runs unchanged with
    ``shards=1``.  ``jobs`` overrides the estimator-level worker count;
    the engine passes 1 when it is already parallel at scenario
    granularity, so pools never nest.
    """
    if policy is None or not policy.spawned_streams:
        return estimator_fn(scenario), 1
    workers = policy.jobs if jobs is None else jobs
    if estimator_fn is BUILTIN_MONTE_CARLO and scenario.correlation is None:
        from repro.analysis.kernels import plan_shards
        from repro.analysis.montecarlo import monte_carlo_reliability

        result = monte_carlo_reliability(
            scenario.spec,
            scenario.fleet,
            trials=scenario.trials,
            seed=scenario.seed,
            jobs=workers,
            sharding="spawn",
            shard_trials=policy.shard_trials,
            pool=policy.mode if workers > 1 else "serial",
        )
        return result, plan_shards(scenario.trials, policy.shard_trials).num_shards
    if estimator_fn is BUILTIN_IMPORTANCE and scenario.correlation is None:
        from repro.analysis.kernels import plan_shards

        result = _importance_impl(
            scenario,
            jobs=workers,
            sharding="spawn",
            shard_trials=policy.shard_trials,
            pool=policy.mode if workers > 1 else "serial",
        )
        return result, plan_shards(scenario.trials, policy.shard_trials).num_shards
    return estimator_fn(scenario), 1


__all__ = [
    "EstimatorFn",
    "BackendFn",
    "register_estimator",
    "get_estimator",
    "registered_estimators",
    "register_backend",
    "get_backend",
    "registered_backends",
]
