"""ReliabilityEngine: one batched front door for every reliability question.

Consumers used to wire the estimators together by hand — the planner
looped ``counting_reliability`` over candidate plans, the horizon module
looped windows, the CLI looped table cells.  The engine replaces those
loops with a planner of its own: submit a :class:`ScenarioSet` and it

1. **deduplicates** — identical (spec, fleet, estimator) questions are
   answered once, both within a run and across runs via a bounded
   LRU memo;
2. **batches** — symmetric counting scenarios of the same fleet size share
   one vectorized joint-count DP sweep (one DP per *fleet*, reused across
   every spec of that size), the multi-spec batching the kernel layer was
   built for;
3. **falls back** — everything else routes through the estimator registry
   one scenario at a time.

Results are bit-identical to calling the scalar estimators directly: the
batched DP reproduces :func:`repro.analysis.counting.joint_count_pmf`
operation-for-operation and the reductions use the ordered
:func:`repro.analysis.kernels.masked_sum`.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.analysis.result import Estimate, ReliabilityResult
from repro.engine.execution import SERIAL, ExecutionPolicy
from repro.engine.query import Query, QuerySet, coerce_query
from repro.engine.registry import (
    BUILTIN_COUNTING,
    BackendFn,
    EstimatorFn,
    estimate_under_policy,
    get_backend,
    get_estimator,
)
from repro.engine.result import AnswerSet, EngineResult, Provenance, ScenarioOutcome
from repro.engine.scenario import Scenario, ScenarioSet
from repro.obs.trace import current_span, current_tracer

# Importing the backends module registers the built-in query backends
# (reliability / availability / mttf / simulation) with the registry.
import repro.engine.backends  # noqa: F401  (import-for-effect)

#: Above this configuration count, auto selection stops considering
#: enumeration (mirrors the historical ``analyze`` threshold).
EXACT_BUDGET = 1 << 20

#: Cap on floats materialised per batched-DP chunk (~32 MB of float64).
_BATCH_CHUNK_FLOATS = 1 << 22


def _resolve_method(scenario: Scenario) -> str:
    """Auto estimator selection — the exact policy ``analyze`` always used."""
    if scenario.method != "auto":
        return scenario.method
    if scenario.correlation is not None:
        return "monte-carlo"
    if scenario.spec.symmetric:
        return "counting"
    from repro.analysis.exact import configuration_count

    if configuration_count(scenario.fleet) <= EXACT_BUDGET:
        return "exact"
    return "monte-carlo"


class ReliabilityEngine:
    """Batching, caching facade over the estimator registry.

    Parameters
    ----------
    estimators:
        Optional per-engine estimator overrides (name → callable); names
        not present fall back to the global registry, so a custom engine
        still sees late third-party registrations.
    cache_size:
        Bound on the memo cache (least-recently-used eviction).  ``0``
        disables cross-run caching; in-run deduplication still applies.
    policy:
        Default :class:`~repro.engine.ExecutionPolicy` for :meth:`run`
        calls that do not pass one.  The default is serial execution —
        byte-identical to the pre-policy engine.
    """

    def __init__(
        self,
        *,
        estimators: Mapping[str, EstimatorFn] | None = None,
        cache_size: int = 1024,
        policy: ExecutionPolicy | None = None,
    ):
        self._overrides: dict[str, EstimatorFn] = dict(estimators or {})
        self._backend_overrides: dict[str, BackendFn] = {}
        self._cache_size = max(0, int(cache_size))
        self._policy = policy if policy is not None else SERIAL
        self._memo: OrderedDict[tuple, object] = OrderedDict()
        # One engine may be shared across request threads (repro.serve):
        # every memo access and counter update happens under this lock —
        # get + move_to_end must be atomic or a concurrent eviction turns
        # the recency refresh into a KeyError.
        self._lock = threading.RLock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- estimator / backend resolution -----------------------------------
    def estimator(self, name: str) -> EstimatorFn:
        override = self._overrides.get(name)
        return override if override is not None else get_estimator(name)

    def register(self, name: str, fn: EstimatorFn) -> None:
        """Install a per-engine estimator override."""
        self._overrides[name] = fn

    def backend(self, kind: str) -> BackendFn:
        override = self._backend_overrides.get(kind)
        return override if override is not None else get_backend(kind)

    def register_backend(self, kind: str, fn: BackendFn) -> None:
        """Install a per-engine query-backend override."""
        self._backend_overrides[kind] = fn

    # -- memo cache --------------------------------------------------------
    def cache_clear(self) -> None:
        with self._lock:
            self._memo.clear()

    def cache_info(self) -> dict:
        """Consistent snapshot of the memo counters (for /metrics et al.)."""
        with self._lock:
            hits, misses = self.cache_hits, self.cache_misses
            size = len(self._memo)
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "size": size,
            "max_size": self._cache_size,
            "hit_rate": (hits / lookups) if lookups else 0.0,
        }

    def cache_lookup(self, key: tuple | None):
        """Public memo probe for query backends.

        Refreshes LRU recency and counts a hit or miss; returns ``None``
        when the key is absent or uncacheable.  Backends prefix their keys
        with the query kind, so they can never collide with the scenario
        planner's estimator-keyed entries.
        """
        if key is None or self._cache_size == 0:
            return None
        with self._lock:
            value = self._memo.get(key)
            if value is not None:
                self._memo.move_to_end(key)
                self.cache_hits += 1
            else:
                self.cache_misses += 1
        return value

    def cache_store(self, key: tuple | None, value) -> None:
        """Public memo insert for query backends (bounded, LRU eviction)."""
        self._cache_put(key, value)

    def _cache_get(self, key: tuple | None) -> ReliabilityResult | None:
        if key is None or self._cache_size == 0:
            return None
        with self._lock:
            result = self._memo.get(key)
            if result is not None:
                self._memo.move_to_end(key)
        return result

    def _cache_put(self, key: tuple | None, result: ReliabilityResult) -> None:
        if key is None or self._cache_size == 0:
            return
        # Fresh keys land at the end (insertion order); _cache_get already
        # refreshes recency on hits, so no extra move is needed here.
        with self._lock:
            self._memo[key] = result
            while len(self._memo) > self._cache_size:
                self._memo.popitem(last=False)

    # -- execution ---------------------------------------------------------
    def run_one(
        self, scenario: Scenario, policy: ExecutionPolicy | None = None
    ) -> ScenarioOutcome:
        """Answer a single scenario (cache-aware, no batching)."""
        return self.run([scenario], policy=policy)[0]

    def run_query(self, query: Query, policy: ExecutionPolicy | None = None):
        """Answer a single query (cache-aware, no cross-query batching)."""
        return self.run([query], policy=policy)[0]

    def run(
        self,
        scenarios: QuerySet | ScenarioSet | Iterable[Query | Scenario],
        policy: ExecutionPolicy | None = None,
    ) -> EngineResult | AnswerSet:
        """Plan and execute a whole scenario or query set.

        A :class:`~repro.engine.QuerySet` (or any iterable containing
        :class:`~repro.engine.query.Query` objects; bare scenarios mixed
        in default to ``ReliabilityQuery``) routes each row to its kind's
        backend and returns an :class:`~repro.engine.AnswerSet` — see
        :meth:`_run_queries`.  A bare :class:`ScenarioSet` takes the
        historical scenario path below, bit-identical to every release
        since PR 2.

        Outcomes come back in submission order.  Counting scenarios are
        grouped by fleet size into shared DP sweeps over the *unique*
        fleets of each group; every other scenario runs through its
        estimator individually.  Identical questions — within the set or
        remembered from earlier runs — are answered from cache.

        ``policy`` (default: the engine's constructor policy, itself
        defaulting to serial) picks the executor: a thread or process
        policy fans independent scenarios across workers, sweeps counting
        DP chunks concurrently, and switches the built-in sampling
        estimators to spawned-stream sharding.  Result values depend only
        on the scenarios and the policy's ``shard_trials`` — never on the
        worker count or executor mode — and the serial policy is
        byte-identical to the pre-policy engine.
        """
        if isinstance(scenarios, QuerySet):
            return self._run_queries(list(scenarios), policy)
        scenarios = list(scenarios)
        if any(isinstance(item, Query) for item in scenarios):
            return self._run_queries(scenarios, policy)
        active = policy if policy is not None else self._policy
        tracer = current_tracer()
        with tracer.span(
            "engine.run", scenarios=len(scenarios), mode=active.mode, jobs=active.jobs
        ) as run_span:
            result = self._run_scenarios(scenarios, active)
            if tracer.enabled:
                hits = sum(1 for outcome in result if outcome.provenance.cache_hit)
                run_span.set("memo_hits", hits)
                run_span.set("memo_misses", len(result) - hits)
            return result

    def _run_scenarios(
        self, scenarios: list, active: ExecutionPolicy
    ) -> EngineResult:
        """Scenario-path planner body (contract documented on :meth:`run`)."""
        spawned = active.spawned_streams
        items = list(scenarios)
        outcomes: list[ScenarioOutcome | None] = [None] * len(items)
        groups: dict[int, list[tuple[int, Scenario, tuple | None, tuple]]] = {}
        singles: list[tuple[int, Scenario, str, EstimatorFn, tuple | None]] = []
        inflight: dict[tuple, int] = {}
        aliases: list[tuple[int, int]] = []  # (duplicate index, first index)
        use_memo = self._cache_size > 0

        # Hot loop: the per-scenario planning below inlines
        # Scenario.cache_key / the auto-method policy to keep facade
        # overhead a small fraction of even the cheapest estimation.
        for index, scenario in enumerate(items):
            spec = scenario.spec
            correlation = scenario.correlation
            method = scenario.method
            if method == "auto":
                if correlation is not None:
                    method = "monte-carlo"
                elif spec.symmetric:
                    method = "counting"
                else:
                    method = _resolve_method(scenario)
            estimator_fn = self._overrides.get(method)
            if estimator_fn is None:
                estimator_fn = get_estimator(method)
            fleet = scenario.fleet
            fleet_key = tuple(
                (node.p_crash, node.p_byzantine) for node in fleet.nodes
            )
            # Cache keys carry the estimator *function*, not its name, so
            # re-registering an estimator naturally invalidates its cached
            # answers.  Generator seeds are stateful — each historical call
            # advanced the stream — so only value seeds are reusable.
            key = None
            if correlation is None:
                if method == "counting" or method == "exact":
                    key = (spec.grouping_key(), fleet_key, estimator_fn)
                elif isinstance(scenario.seed, (int, np.integer)):
                    key = (
                        spec.grouping_key(),
                        fleet_key,
                        estimator_fn,
                        scenario.trials,
                        int(scenario.seed),
                        scenario.failure_kind,
                    )
                    # Spawned-stream values differ from legacy single-stream
                    # ones, and depend on the shard size: both join the key
                    # so policy families never share sampling cache entries.
                    if spawned:
                        key = key + ("spawn", active.shard_trials)
                if use_memo and key is not None:
                    with self._lock:
                        cached = self._memo.get(key)
                        if cached is not None:
                            self._memo.move_to_end(key)
                            self.cache_hits += 1
                    if cached is not None:
                        outcomes[index] = ScenarioOutcome(
                            scenario,
                            cached,
                            Provenance(estimator=method, cache_hit=True),
                        )
                        continue
                if key is not None:
                    first = inflight.get(key)
                    if first is not None:
                        aliases.append((index, first))
                        continue
                    inflight[key] = index
            with self._lock:
                self.cache_misses += 1
            # Invalid counting combinations (asymmetric spec, size
            # mismatch) fall through to the scalar estimator so they raise
            # the exact errors counting_reliability always raised.  The
            # shared DP sweep only substitutes for the *built-in* counting
            # estimator; an override takes the per-scenario path.
            if (
                method == "counting"
                and estimator_fn is BUILTIN_COUNTING
                and correlation is None
                and fleet.n == spec.n
                and spec.symmetric
            ):
                groups.setdefault(fleet.n, []).append(
                    (index, scenario, key, fleet_key)
                )
            else:
                singles.append((index, scenario, method, estimator_fn, key))

        for group in groups.values():
            if len(group) == 1:
                index, scenario, key, _ = group[0]
                singles.append((index, scenario, "counting", BUILTIN_COUNTING, key))
            else:
                self._run_counting_group(group, outcomes, active)

        if active.parallel and len(singles) > 1:
            self._run_singles_parallel(singles, outcomes, active)
        else:
            for index, scenario, method, estimator_fn, key in singles:
                start = time.perf_counter()
                result, shards = estimate_under_policy(estimator_fn, scenario, active)
                seconds = time.perf_counter() - start
                self._cache_put(key, result)
                outcomes[index] = ScenarioOutcome(
                    scenario,
                    result,
                    Provenance(estimator=method, seconds=seconds, shards=shards),
                )

        for index, first in aliases:
            source = outcomes[first]
            assert source is not None
            outcomes[index] = ScenarioOutcome(
                items[index],
                source.result,
                Provenance(
                    estimator=source.provenance.estimator,
                    cache_hit=True,
                    batched=source.provenance.batched,
                    batch_size=source.provenance.batch_size,
                ),
            )
            with self._lock:
                self.cache_hits += 1

        assert all(outcome is not None for outcome in outcomes)
        return EngineResult(tuple(outcomes))  # type: ignore[arg-type]

    def _run_queries(
        self,
        items: Sequence[Query | Scenario],
        policy: ExecutionPolicy | None,
    ) -> AnswerSet:
        """Route a mixed-kind query batch to its backends.

        Queries are grouped by kind (submission order preserved within
        each group) and each group is handed to the backend registered
        for that kind — per-engine overrides first, then the global
        registry.  Backends batch internally (shared DP sweeps, shared
        CTMC solves, sharded replica fan-out) and answers are scattered
        back into submission order.
        """
        from repro.errors import EstimationError

        active = policy if policy is not None else self._policy
        queries = [coerce_query(item) for item in items]
        answers: list = [None] * len(queries)
        by_kind: dict[str, list[int]] = {}
        for index, query in enumerate(queries):
            by_kind.setdefault(query.kind, []).append(index)
        tracer = current_tracer()
        with tracer.span("engine.queries", queries=len(queries), kinds=len(by_kind)):
            for kind, indices in by_kind.items():
                backend = self.backend(kind)
                with tracer.span(f"backend.{kind}", queries=len(indices)):
                    group = backend(self, [queries[i] for i in indices], active)
                if len(group) != len(indices):
                    raise EstimationError(
                        f"backend for {kind!r} returned {len(group)} answers "
                        f"for {len(indices)} queries"
                    )
                for index, answer in zip(indices, group):
                    answers[index] = answer
        assert all(answer is not None for answer in answers)
        return AnswerSet(tuple(answers))

    def _run_singles_parallel(
        self,
        singles: Sequence[tuple[int, Scenario, str, EstimatorFn, tuple | None]],
        outcomes: list[ScenarioOutcome | None],
        policy: ExecutionPolicy,
    ) -> None:
        """Fan independent single-estimator scenarios across the policy pool.

        Each scenario is computed exactly as it would be alone (its sampling
        streams are spawned per scenario), so values are identical at any
        worker count.  Cache writes and outcome assembly stay in the calling
        thread, in submission order — the LRU's recency order is therefore
        deterministic too.  Scenarios a pool cannot execute faithfully run
        in the calling thread instead: generator-object seeds (stateful —
        they must advance in submission order), and, under a process pool,
        anything but a stock estimator on an uncorrelated scenario (a
        child started without fork resolves estimators from a *fresh*
        registry import, so overrides, shadowed built-ins and third-party
        registrations must stay with their function objects; correlation
        models are process-local).
        """
        from repro.analysis.kernels import run_sharded
        from repro.engine.registry import is_stock_estimator

        pool_items: list[tuple[int, Scenario, str, EstimatorFn, tuple | None]] = []
        local_items: list[tuple[int, Scenario, str, EstimatorFn, tuple | None]] = []
        for entry in singles:
            _, scenario, method, estimator_fn, _ = entry
            if isinstance(scenario.seed, np.random.Generator):
                local_items.append(entry)
            elif policy.mode == "process" and (
                not is_stock_estimator(method, estimator_fn)
                or scenario.correlation is not None
            ):
                local_items.append(entry)
            else:
                pool_items.append(entry)

        completed: list[tuple[ReliabilityResult, int, float]] = []
        if len(pool_items) == 1:
            # A pool of one is pure overhead: run it locally with the full
            # estimator-level fan-out instead.
            local_items = list(singles)
            pool_items = []
        elif pool_items:
            if policy.mode == "thread":

                def worker(entry):
                    _, scenario, _, estimator_fn, _ = entry
                    start = time.perf_counter()
                    result, shards = estimate_under_policy(
                        estimator_fn, scenario, policy, jobs=1
                    )
                    return result, shards, time.perf_counter() - start

                completed = run_sharded(
                    # repro: allow[pool-safety] -- thread-only branch; never pickled
                    worker, pool_items, jobs=policy.jobs, mode="thread"
                )
            else:
                payloads = [
                    (scenario, method, policy)
                    for _, scenario, method, _, _ in pool_items
                ]
                completed = run_sharded(
                    _run_single_in_worker, payloads, jobs=policy.jobs, mode="process"
                )

        for entry, (result, shards, seconds) in zip(pool_items, completed):
            index, scenario, method, _, key = entry
            self._cache_put(key, result)
            outcomes[index] = ScenarioOutcome(
                scenario,
                result,
                Provenance(estimator=method, seconds=seconds, shards=shards),
            )
        for index, scenario, method, estimator_fn, key in local_items:
            start = time.perf_counter()
            result, shards = estimate_under_policy(estimator_fn, scenario, policy)
            seconds = time.perf_counter() - start
            self._cache_put(key, result)
            outcomes[index] = ScenarioOutcome(
                scenario,
                result,
                Provenance(estimator=method, seconds=seconds, shards=shards),
            )

    def _run_counting_group(
        self,
        group: Sequence[tuple[int, Scenario, tuple | None, tuple]],
        outcomes: list[ScenarioOutcome | None],
        policy: ExecutionPolicy = SERIAL,
    ) -> None:
        """One shared joint-count DP sweep for same-size counting scenarios.

        The DP depends only on the fleet, so each *unique* fleet is swept
        once and its PMF reused by every spec asking about it — the
        "multi-spec batches" execution plan.  The reductions are batched
        per spec through the order-preserving cumulative masked sum.
        Per-scenario values are bit-identical to scalar
        :func:`counting_reliability` (same DP update sequence, same
        left-to-right masked accumulation, same detail string).
        """
        from repro.analysis.kernels import (
            joint_count_pmf_batch,
            reliability_values_batch,
            verdict_masks,
        )

        start = time.perf_counter()
        n = group[0][1].fleet.n
        unique_index: dict[tuple, int] = {}
        unique_fleets: list = []
        # Scenarios sharing a spec (by grouping key) reduce together.
        by_spec: dict[tuple, list[tuple[int, Scenario, tuple | None, int]]] = {}
        for index, scenario, key, fleet_key in group:
            slot = unique_index.get(fleet_key)
            if slot is None:
                slot = len(unique_fleets)
                unique_index[fleet_key] = slot
                unique_fleets.append(scenario.fleet)
            by_spec.setdefault(scenario.spec.grouping_key(), []).append(
                (index, scenario, key, slot)
            )

        crash = np.array([fleet.crash_probabilities for fleet in unique_fleets])
        byz = np.array([fleet.byzantine_probabilities for fleet in unique_fleets])
        chunk = max(1, _BATCH_CHUNK_FLOATS // ((n + 1) * (n + 1)))
        total = crash.shape[0]

        detail = f"joint count DP over {(n + 1) * (n + 2) // 2} count pairs"
        batch_size = len(group)
        computed: list[tuple[int, Scenario, ReliabilityResult]] = []
        def reduce_chunk(lo: int, hi: int, pmfs: np.ndarray) -> None:
            for members in by_spec.values():
                selected = [entry for entry in members if lo <= entry[3] < hi]
                if not selected:
                    continue
                masks = verdict_masks(selected[0][1].spec)
                local_slots = [slot - lo for _, _, _, slot in selected]
                safe_v, live_v, both_v = reliability_values_batch(
                    pmfs[local_slots], masks
                )
                for position, (index, scenario, key, _) in enumerate(selected):
                    result = ReliabilityResult(
                        protocol=scenario.spec.name,
                        n=n,
                        safe=Estimate.exact(float(safe_v[position])),
                        live=Estimate.exact(float(live_v[position])),
                        safe_and_live=Estimate.exact(float(both_v[position])),
                        method="counting",
                        detail=detail,
                    )
                    self._cache_put(key, result)
                    computed.append((index, scenario, result))

        # Sweep and reduce one fleet-chunk at a time so peak memory stays
        # near the chunk cap: only a bounded number of chunks' PMFs are live,
        # never the whole group's.  Per-fleet values are chunk-independent,
        # so the split changes nothing bit-wise.  Under a parallel policy the
        # DP sweeps of up to ``jobs`` chunks run concurrently in threads (the
        # DP releases the GIL inside NumPy; PMFs never cross a process
        # boundary) while every reduction and cache write happens here, in
        # chunk order — bit-identical to the serial sweep.
        ranges = [(lo, min(lo + chunk, total)) for lo in range(0, total, chunk)]
        if policy.parallel and len(ranges) > 1:
            from repro.analysis.kernels import run_sharded

            sweep = lambda bounds: joint_count_pmf_batch(  # noqa: E731
                crash[bounds[0] : bounds[1]], byz[bounds[0] : bounds[1]]
            )
            for wave_start in range(0, len(ranges), policy.jobs):
                wave = ranges[wave_start : wave_start + policy.jobs]
                for (lo, hi), pmfs in zip(
                    wave, run_sharded(sweep, wave, jobs=policy.jobs, mode="thread")
                ):
                    reduce_chunk(lo, hi, pmfs)
        else:
            for lo, hi in ranges:
                reduce_chunk(lo, hi, joint_count_pmf_batch(crash[lo:hi], byz[lo:hi]))
        finished = time.perf_counter()
        tracer = current_tracer()
        if tracer.enabled:
            # One span per shared DP sweep: how many scenarios amortised how
            # many unique-fleet DPs, and what the batch cost wall-clock.
            tracer.record_span(
                "engine.counting_group",
                start,
                finished,
                parent=current_span(),
                n=n,
                batch_size=batch_size,
                fleets=len(unique_fleets),
            )
        share = (finished - start) / batch_size
        provenance = Provenance(
            estimator="counting", batched=True, batch_size=batch_size, seconds=share
        )
        for index, scenario, result in computed:
            outcomes[index] = ScenarioOutcome(scenario, result, provenance)


def _run_single_in_worker(
    payload: tuple[Scenario, str, ExecutionPolicy]
) -> tuple[ReliabilityResult, int, float]:
    """Process-pool entry point: one scenario, resolved from the forked
    global registry (per-engine overrides never reach this path)."""
    scenario, method, policy = payload
    estimator_fn = get_estimator(method)
    start = time.perf_counter()
    result, shards = estimate_under_policy(estimator_fn, scenario, policy, jobs=1)
    return result, shards, time.perf_counter() - start


_DEFAULT_ENGINE: ReliabilityEngine | None = None


def default_engine() -> ReliabilityEngine:
    """The process-wide engine behind ``analyze``/``analyze_batch`` and the
    planner/horizon/CLI consumers.  Sharing one instance is what makes the
    memo cache pay off across layers (a planner sweep warms the cache the
    CLI then hits)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ReliabilityEngine()
    return _DEFAULT_ENGINE
