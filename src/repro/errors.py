"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class InvalidProbabilityError(ReproError, ValueError):
    """A probability argument fell outside the closed interval [0, 1]."""


class InvalidConfigurationError(ReproError, ValueError):
    """A cluster / quorum / protocol configuration is internally inconsistent.

    Examples: a quorum larger than the cluster, a negative node count, or a
    fleet whose per-node crash+Byzantine probabilities exceed 1.
    """


class EstimationError(ReproError, RuntimeError):
    """A probability estimator could not produce a usable estimate."""


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent internal state."""


class ShardExecutionError(ReproError, RuntimeError):
    """A supervised shard exhausted its retry budget (or its worker pool
    could not be kept alive) and the execution policy said to raise.

    Raised by :mod:`repro.engine.runtime` with the failing shard's index
    and failure kind in the message; the original worker exception, when
    there is one, is chained as ``__cause__``.
    """


class FittingError(ReproError, RuntimeError):
    """Fault-curve fitting failed (degenerate data, non-convergence, ...)."""
