"""Protocol specifications: per-configuration safety/liveness predicates (§3).

Available specs:

* :class:`RaftSpec` / :class:`FlexibleRaftSpec` — Theorem 3.2 (CFT);
* :class:`PBFTSpec` — Theorem 3.1 (BFT), with the documented erratum fix;
* :class:`ReliabilityAwareRaftSpec` / :class:`ObliviousDurabilityRaftSpec` —
  pinned-quorum durability (§3 "Raft underutilizes reliable nodes");
* :class:`BenOrSpec` / :class:`ByzantineBenOrSpec` — randomized consensus
  beyond quorums (§4);
* :class:`QuorumSystemSpec` — any :mod:`repro.quorums` construction.
"""

from repro.protocols.base import AsymmetricSpec, ProtocolSpec, SymmetricSpec
from repro.protocols.benor import BenOrSpec, ByzantineBenOrSpec
from repro.protocols.pbft import PBFTSpec, pbft_fault_threshold, pbft_quorum, table1_spec
from repro.protocols.hybrid import StakeWeightedSpec, UprightSpec
from repro.protocols.quorum_based import QuorumSystemSpec
from repro.protocols.raft import FlexibleRaftSpec, RaftSpec, majority
from repro.protocols.reliability_aware import (
    ObliviousDurabilityRaftSpec,
    ReliabilityAwareRaftSpec,
)

__all__ = [
    "ProtocolSpec",
    "SymmetricSpec",
    "AsymmetricSpec",
    "RaftSpec",
    "FlexibleRaftSpec",
    "majority",
    "PBFTSpec",
    "pbft_quorum",
    "pbft_fault_threshold",
    "table1_spec",
    "ReliabilityAwareRaftSpec",
    "ObliviousDurabilityRaftSpec",
    "BenOrSpec",
    "ByzantineBenOrSpec",
    "QuorumSystemSpec",
    "UprightSpec",
    "StakeWeightedSpec",
]
