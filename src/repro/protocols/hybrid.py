"""Hybrid fault-threshold specs: Upright and stake-weighted models (paper §5).

The paper's related work singles out two refinements of the f-threshold
model that move *toward* probability-native consensus:

* **Upright** (Clement et al., SOSP '09) separates the crash budget ``u``
  from the Byzantine budget ``r``: the system stays safe with up to ``r``
  commission failures and live with up to ``u`` total failures, at
  ``n = 2u + r + 1`` replicas.  At the configuration level this gives a
  *two-dimensional* predicate — exactly what the paper's crash/Byzantine
  mixture analysis (§2 point 4) needs.
* **Stake-weighted quorums** (proof-of-stake, §5): nodes carry weight and
  quorums are weight thresholds, so a node's influence — and the damage
  its failure does — is proportional to stake.

Both are symmetric-enough to analyse: Upright by counts, stake by
configuration (weights break exchangeability).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.config import FailureConfig
from repro.errors import InvalidConfigurationError
from repro.protocols.base import AsymmetricSpec, SymmetricSpec


class UprightSpec(SymmetricSpec):
    """Upright-style consensus with separate crash and Byzantine budgets.

    Parameters
    ----------
    u:
        Total failures (crash + Byzantine) tolerated while staying live.
    r:
        Byzantine failures tolerated while staying safe (``r <= u``).

    The deployment size is the classical ``n = 2u + r + 1``.
    """

    name = "Upright"

    def __init__(self, u: int, r: int):
        if u < 0 or r < 0:
            raise InvalidConfigurationError("budgets must be non-negative")
        if r > u:
            raise InvalidConfigurationError(f"r={r} must not exceed u={u}")
        super().__init__(2 * u + r + 1)
        self.u = u
        self.r = r

    @classmethod
    def for_cluster(cls, n: int, r: int) -> "UprightSpec":
        """Largest-u Upright configuration for a fixed cluster size."""
        u = (n - r - 1) // 2
        if u < r:
            raise InvalidConfigurationError(
                f"cluster of {n} cannot support Byzantine budget r={r}"
            )
        spec = cls(u, r)
        if spec.n != n:
            raise InvalidConfigurationError(
                f"no Upright configuration with n={n}, r={r} (closest uses n={spec.n})"
            )
        return spec

    def is_safe_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        # Safety tolerates any number of crashes but at most r commission
        # (Byzantine) failures.
        return num_byzantine <= self.r

    def is_live_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        return num_crashed + num_byzantine <= self.u

    def __repr__(self) -> str:
        return f"UprightSpec(n={self.n}, u={self.u}, r={self.r})"


class StakeWeightedSpec(AsymmetricSpec):
    """CFT consensus with stake-weighted quorums.

    A quorum is any node set holding more than ``threshold_fraction`` of
    total stake.  Safety is structural for ``threshold_fraction >= 0.5``
    (two quorums must share a node) provided no Byzantine nodes exist;
    liveness requires the correct nodes to jointly hold a quorum's worth
    of stake — so one whale outage can stall a nominally large cluster,
    which is exactly the heterogeneity the paper wants surfaced.
    """

    name = "StakeRaft"

    def __init__(self, stakes: Sequence[float], *, threshold_fraction: float = 0.5):
        if not stakes:
            raise InvalidConfigurationError("stakes must be non-empty")
        if any(s < 0 for s in stakes):
            raise InvalidConfigurationError("stakes must be non-negative")
        total = float(sum(stakes))
        if total <= 0:
            raise InvalidConfigurationError("total stake must be positive")
        if not 0.0 < threshold_fraction < 1.0:
            raise InvalidConfigurationError("threshold_fraction must be in (0, 1)")
        super().__init__(len(stakes))
        self.stakes = tuple(float(s) for s in stakes)
        self.total_stake = total
        self.threshold_fraction = threshold_fraction

    def stake_of(self, nodes: frozenset[int]) -> float:
        return sum(self.stakes[i] for i in nodes)

    def is_quorum(self, nodes: frozenset[int]) -> bool:
        """Strict-majority-of-stake rule (strictly more than the threshold)."""
        return self.stake_of(nodes) > self.threshold_fraction * self.total_stake

    def is_safe(self, config: FailureConfig) -> bool:
        self._check_config(config)
        if config.num_byzantine > 0:
            return False
        # Two strict >threshold quorums overlap whenever threshold >= 0.5.
        return self.threshold_fraction >= 0.5

    def is_live(self, config: FailureConfig) -> bool:
        self._check_config(config)
        return self.is_quorum(frozenset(config.correct_indices))

    def nakamoto_coefficient(self) -> int:
        """Fewest nodes whose combined failure can stall the system.

        The blockchain community's concentration metric: the smallest set
        of nodes holding enough stake that, once failed, the survivors no
        longer form a quorum.
        """
        needed = (1.0 - self.threshold_fraction) * self.total_stake
        taken = 0.0
        for count, stake in enumerate(sorted(self.stakes, reverse=True), start=1):
            taken += stake
            if taken >= needed:
                return count
        return self.n

    def __repr__(self) -> str:
        return (
            f"StakeWeightedSpec(n={self.n}, threshold={self.threshold_fraction}, "
            f"nakamoto={self.nakamoto_coefficient()})"
        )
