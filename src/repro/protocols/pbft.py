"""PBFT safety/liveness predicates — Theorem 3.1 of the paper.

    PBFT is safe iff:
        (1) |Byz| < 2|Q_eq|  - N
        (2) |Byz| < |Q_per| + |Q_vc| - N
    PBFT is live iff:
        (1) |Byz| <= |Q_vc| - |Q_vc_t|      (see erratum note below)
        (2) |Correct| >= |Q_eq|, |Q_per|, |Q_vc|
        (3) |Byz| < |Q_vc_t|

**Erratum.** The paper prints liveness condition (1) as
``|Byz| <= |Q_vc_t| - |Q_vc|``, which is negative for every row of Table 1
and would make PBFT never live.  Reproducing Table 1 requires the reading
``|Byz| <= |Q_vc| - |Q_vc_t|``: Byzantine nodes must not be able to both
fabricate a spurious view change (bounded by condition 3) and withhold
votes needed to complete a legitimate one (bounded by condition 1).  With
this reading every printed cell of Table 1 reproduces exactly; see
``tests/test_protocols_pbft.py`` and ``benchmarks/bench_table1_pbft.py``.

Crashes degrade liveness (fewer nodes to form quorums) but only Byzantine
nodes can violate safety, so the worst-case analysis in Table 1 treats
every failure as Byzantine (:meth:`repro.faults.Fleet.as_byzantine`).
"""

from __future__ import annotations

from repro.errors import InvalidConfigurationError
from repro.protocols.base import SymmetricSpec


def pbft_fault_threshold(n: int) -> int:
    """Classical PBFT threshold ``f = floor((n - 1) / 3)``."""
    if n < 1:
        raise InvalidConfigurationError(f"n must be positive, got {n}")
    return (n - 1) // 3


def pbft_quorum(n: int) -> int:
    """Classical PBFT quorum ``ceil((n + f + 1) / 2)``.

    Reduces to the familiar ``2f + 1`` at ``n = 3f + 1`` and reproduces the
    quorum column of Table 1 for n ∈ {4, 5, 7, 8}.
    """
    f = pbft_fault_threshold(n)
    return (n + f + 2) // 2


class PBFTSpec(SymmetricSpec):
    """Predicate-level model of PBFT with configurable quorum sizes.

    Defaults follow deployed PBFT: ``q_eq = q_per = q_vc = ceil((n+f+1)/2)``
    and ``q_vc_t = f + 1`` with ``f = floor((n-1)/3)`` — exactly the sizes
    printed in Table 1.
    """

    name = "PBFT"

    def __init__(
        self,
        n: int,
        *,
        q_eq: int | None = None,
        q_per: int | None = None,
        q_vc: int | None = None,
        q_vc_t: int | None = None,
    ):
        super().__init__(n)
        default_quorum = pbft_quorum(n)
        self.q_eq = default_quorum if q_eq is None else q_eq
        self.q_per = default_quorum if q_per is None else q_per
        self.q_vc = default_quorum if q_vc is None else q_vc
        self.q_vc_t = pbft_fault_threshold(n) + 1 if q_vc_t is None else q_vc_t
        for label, q in (
            ("q_eq", self.q_eq),
            ("q_per", self.q_per),
            ("q_vc", self.q_vc),
            ("q_vc_t", self.q_vc_t),
        ):
            if not 1 <= q <= n:
                raise InvalidConfigurationError(f"{label}={q} outside [1, {n}]")

    # -- Theorem 3.1: safety ------------------------------------------------
    def is_safe_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        byz = num_byzantine
        non_equivocation = byz < 2 * self.q_eq - self.n
        persistence = byz < self.q_per + self.q_vc - self.n
        return non_equivocation and persistence

    # -- Theorem 3.1: liveness (with the erratum-corrected condition 1) -----
    def is_live_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        byz = num_byzantine
        correct = self.n - num_crashed - num_byzantine
        view_change_completion = byz <= self.q_vc - self.q_vc_t
        quorums_formable = correct >= max(self.q_eq, self.q_per, self.q_vc)
        no_spurious_view_change = byz < self.q_vc_t
        return view_change_completion and quorums_formable and no_spurious_view_change

    def __repr__(self) -> str:
        return (
            f"PBFTSpec(n={self.n}, q_eq={self.q_eq}, q_per={self.q_per}, "
            f"q_vc={self.q_vc}, q_vc_t={self.q_vc_t})"
        )


def table1_spec(n: int) -> PBFTSpec:
    """The exact PBFT configuration used for row ``n`` of the paper's Table 1."""
    if n not in (4, 5, 7, 8):
        raise InvalidConfigurationError(f"Table 1 only has rows for n in {{4,5,7,8}}, got {n}")
    return PBFTSpec(n)
