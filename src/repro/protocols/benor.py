"""Ben-Or-style randomized consensus predicates (paper §4 "beyond quorums").

The paper points to Ben-Or (PODC '83) and Rabia as evidence that consensus
can be re-imagined without deterministic quorum intersection.  At the
failure-configuration level the crash-model Ben-Or protocol has a clean
characterisation:

* **Safety** — agreement holds in every run provided the correctness
  threshold ``n > 2f`` is respected; value adoption requires > n/2 matching
  reports, so two nodes can never decide differently.  Safety therefore
  fails only if a Byzantine node forges reports (outside the crash model).
* **Liveness** — termination is probabilistic (with probability 1) rather
  than deterministic; it requires a correct majority to keep making rounds.

We model "live" as "terminates with probability 1", which matches the
paper's per-configuration treatment (a configuration is live when all runs
eventually commit — Ben-Or's coin flips ensure this almost surely once a
correct majority exists).
"""

from __future__ import annotations

from repro.protocols.base import SymmetricSpec


class BenOrSpec(SymmetricSpec):
    """Crash-model Ben-Or randomized binary consensus over ``n`` nodes."""

    name = "Ben-Or"

    def __init__(self, n: int):
        super().__init__(n)

    def is_safe_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        # Crash faults never produce conflicting >n/2 report sets; Byzantine
        # nodes can, and sit outside the model.
        return num_byzantine == 0

    def is_live_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        correct = self.n - num_crashed - num_byzantine
        return correct > self.n // 2


class ByzantineBenOrSpec(SymmetricSpec):
    """Byzantine Ben-Or (n > 5f variant) at the configuration level.

    The classic Byzantine extension tolerates ``f < n/5``: safety needs the
    forged-report margin ``n > 5·|Byz|`` and liveness additionally needs
    enough correct nodes to clear the ``(n+f)/2`` report thresholds.
    """

    name = "Byz-Ben-Or"

    def __init__(self, n: int):
        super().__init__(n)

    @property
    def fault_threshold(self) -> int:
        return (self.n - 1) // 5

    def is_safe_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        return 5 * num_byzantine < self.n

    def is_live_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        correct = self.n - num_crashed - num_byzantine
        threshold = (self.n + self.fault_threshold) // 2 + 1
        return 5 * num_byzantine < self.n and correct >= threshold
