"""Raft safety/liveness predicates — Theorem 3.2 of the paper.

    Raft is safe iff  N < |Q_per| + |Q_vc|  and  N < 2|Q_vc|
    Raft is live iff  |Correct| >= |Q_per|, |Q_vc|

The safety conditions are *structural*: with intersecting quorum sizes no
pattern of crashes can violate agreement, which is why Table 2's Safe&Live
column is governed entirely by liveness.  The spec is parameterised on the
two quorum sizes so that flexible (Paxos-style) configurations — larger
persistence quorums traded against smaller view-change quorums — can be
analysed with the same predicate.

Raft is a CFT protocol: a Byzantine node sits outside its fault model and
can equivocate votes or truncate logs, so any configuration containing a
Byzantine node is classified unsafe (and that node never counts as correct
for liveness).
"""

from __future__ import annotations

from repro.errors import InvalidConfigurationError
from repro.protocols.base import SymmetricSpec


def majority(n: int) -> int:
    """Size of a strict-majority quorum for ``n`` nodes."""
    return n // 2 + 1


class RaftSpec(SymmetricSpec):
    """Predicate-level model of Raft with configurable quorum sizes.

    Parameters
    ----------
    n:
        Deployment size.
    q_per:
        Persistence (log-replication/commit) quorum size; defaults to a
        strict majority.
    q_vc:
        View-change (election) quorum size; defaults to a strict majority.
    """

    name = "Raft"

    def __init__(self, n: int, *, q_per: int | None = None, q_vc: int | None = None):
        super().__init__(n)
        self.q_per = majority(n) if q_per is None else q_per
        self.q_vc = majority(n) if q_vc is None else q_vc
        for label, q in (("q_per", self.q_per), ("q_vc", self.q_vc)):
            if not 1 <= q <= n:
                raise InvalidConfigurationError(f"{label}={q} outside [1, {n}]")

    # -- Theorem 3.2 -----------------------------------------------------
    @property
    def structurally_safe(self) -> bool:
        """Thm 3.2 safety: persistence×view-change and election intersection."""
        return self.n < self.q_per + self.q_vc and self.n < 2 * self.q_vc

    def is_safe_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        # Crashes never break Raft agreement when quorums intersect;
        # Byzantine behaviour is outside the CFT fault model entirely.
        return self.structurally_safe and num_byzantine == 0

    def is_live_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        correct = self.n - num_crashed - num_byzantine
        return correct >= max(self.q_per, self.q_vc)

    # -- durability (paper §3 "Raft underutilizes reliable nodes") -------
    def is_durable_counts(self, num_failed: int) -> bool:
        """Worst-case durability: committed data survives the window.

        Raft is oblivious to node reliability, so the persistence quorum
        may have landed on *any* ``q_per`` nodes; data is lost exactly when
        the failures can cover one such quorum, i.e. when at least
        ``q_per`` nodes failed.
        """
        return num_failed < self.q_per

    def __repr__(self) -> str:
        return f"RaftSpec(n={self.n}, q_per={self.q_per}, q_vc={self.q_vc})"


class FlexibleRaftSpec(RaftSpec):
    """Raft with explicitly asymmetric quorums (Flexible Paxos, paper §4).

    Identical predicates to :class:`RaftSpec`; the subclass exists so
    results and tables are labelled distinctly when exploring the
    |Q_per| + |Q_vc| > N trade-off space.
    """

    name = "FlexRaft"

    def __init__(self, n: int, q_per: int, q_vc: int):
        super().__init__(n, q_per=q_per, q_vc=q_vc)
