"""Generic protocol spec driven by explicit quorum systems.

Bridges :mod:`repro.quorums` and the analysis engine: given a persistence
quorum system and a view-change quorum system, the §3.1 invariants become

* **safe** — every (persistence, view-change) quorum pair intersects in a
  *non-Byzantine* node, and every view-change pair intersects in a
  non-Byzantine node (unique leader).  Crashed nodes still count: fail-stop
  nodes never lie, and their durable state survives, which is why Raft's
  Theorem 3.2 safety is purely structural;
* **live** — a fully-correct quorum exists in both systems.

This lets grid, weighted and other non-threshold constructions be analysed
with exactly the same estimator pipeline as Raft/PBFT.  Predicates may
enumerate minimal quorums, so keep universes small (n ≲ 16) or use
Monte-Carlo estimation.
"""

from __future__ import annotations

from repro.analysis.config import FailureConfig
from repro.errors import InvalidConfigurationError
from repro.protocols.base import AsymmetricSpec
from repro.quorums.system import QuorumSystem


class QuorumSystemSpec(AsymmetricSpec):
    """CFT consensus predicates over arbitrary quorum systems."""

    name = "QuorumSystem"

    def __init__(
        self,
        persistence: QuorumSystem,
        view_change: QuorumSystem,
        *,
        name: str | None = None,
    ):
        if persistence.n != view_change.n:
            raise InvalidConfigurationError("quorum systems must share a universe")
        super().__init__(persistence.n)
        self.persistence = persistence
        self.view_change = view_change
        if name is not None:
            self.name = name

    def is_safe(self, config: FailureConfig) -> bool:
        self._check_config(config)
        # Fail-stop nodes keep their durable state and never equivocate, so
        # intersection in any non-Byzantine node preserves agreement.
        trusted = frozenset(range(self.n)) - config.byzantine_indices
        persists = self.persistence.pairwise_intersection_holds(self.view_change, trusted)
        unique_leader = self.view_change.self_intersection_holds(trusted)
        return persists and unique_leader

    def is_live(self, config: FailureConfig) -> bool:
        self._check_config(config)
        correct = frozenset(config.correct_indices)
        return self.persistence.is_available(correct) and self.view_change.is_available(correct)
