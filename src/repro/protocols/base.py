"""Protocol specifications: safety/liveness predicates over configurations.

The paper's method (§3) is to specialise each protocol's quorum-intersection
invariants into per-configuration predicates ("this failure configuration is
safe / live") and then aggregate over the configuration distribution.  A
:class:`ProtocolSpec` is exactly that pair of predicates.

Two evaluation interfaces are provided:

* ``is_safe(config)`` / ``is_live(config)`` — general, works for any
  predicate including ones that care *which* nodes failed (e.g.
  reliability-aware quorum placement);
* ``is_safe_counts(n, crash, byz)`` / ``is_live_counts`` — for *symmetric*
  protocols whose predicates depend only on the outcome counts.  Symmetric
  predicates unlock the Poisson-binomial counting estimator, which is exact
  and polynomial-time even for 100-node deployments.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.analysis.config import FailureConfig
from repro.errors import InvalidConfigurationError


class _IdentityKey:
    """Hashable stand-in for an unhashable spec attribute.

    Hashes/compares by object identity *while holding a reference*, so the
    id can never be recycled for as long as any cache key embedding this
    wrapper is alive — unlike a bare ``id()`` integer.
    """

    __slots__ = ("obj",)

    def __init__(self, obj: object):
        self.obj = obj

    def __hash__(self) -> int:
        # Stable while self.obj is referenced — which this wrapper ensures.
        return id(self.obj)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _IdentityKey) and self.obj is other.obj

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_IdentityKey({self.obj!r})"


class ProtocolSpec(ABC):
    """Safety/liveness predicates of one consensus protocol deployment.

    Subclasses fix the deployment size ``n`` and quorum parameters at
    construction time; the predicates then classify failure configurations.
    """

    #: Human-readable protocol name used in results and tables.
    name: str = "protocol"

    def __init__(self, n: int):
        if n <= 0:
            raise InvalidConfigurationError(f"deployment size must be positive, got {n}")
        self._n = n

    @property
    def n(self) -> int:
        """Deployment size the spec was instantiated for."""
        return self._n

    # ------------------------------------------------------------------
    # Symmetry: protocols whose predicates depend only on outcome counts
    # should override the *_counts methods and leave `symmetric` True.
    # ------------------------------------------------------------------
    @property
    def symmetric(self) -> bool:
        """Whether predicates depend only on (num_crashed, num_byzantine)."""
        return True

    def is_safe_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        """Count-based safety predicate (symmetric protocols only)."""
        raise NotImplementedError(f"{type(self).__name__} has no count-based safety predicate")

    def is_live_counts(self, num_crashed: int, num_byzantine: int) -> bool:
        """Count-based liveness predicate (symmetric protocols only)."""
        raise NotImplementedError(f"{type(self).__name__} has no count-based liveness predicate")

    def grouping_key(self) -> tuple:
        """Hashable identity used by the engine for dedup and batching.

        Two specs with equal keys evaluate every configuration identically,
        so :class:`repro.engine.ReliabilityEngine` may share cached results
        between them.  The default key is the concrete class plus every
        public constructor-derived attribute; unhashable attributes fall
        back to object identity, which disables sharing (never incorrectly
        enables it) for exotic specs.  Specs are immutable after
        construction, so the key is computed once and stashed.
        """
        cached = getattr(self, "_grouping_key_cache", None)
        if cached is not None:
            return cached
        params: list[tuple[str, object]] = []
        for attr in sorted(self.__dict__):
            if attr.startswith("_"):
                continue
            value = self.__dict__[attr]
            try:
                hash(value)
            except TypeError:
                # Identity wrapper keeps the attribute alive, so the id can
                # never be recycled into a colliding key.
                value = _IdentityKey(value)
            params.append((attr, value))
        # The class object itself anchors the key: same-named classes from
        # different modules must never share cached results.
        key = (type(self), self._n, tuple(params))
        self._grouping_key_cache = key  # type: ignore[attr-defined]
        return key

    def verdict_masks(self):
        """Cached ``(n+1) x (n+1)`` safe/live truth tables over count pairs.

        The hook the vectorized kernels build on: predicates are evaluated
        once per spec instance and every estimator afterwards reduces
        against the boolean arrays.  Specs are immutable after
        construction, so the cache never invalidates.  Symmetric specs
        only; raises :class:`~repro.errors.InvalidConfigurationError`
        otherwise.
        """
        from repro.analysis.kernels import verdict_masks

        return verdict_masks(self)

    # ------------------------------------------------------------------
    # Configuration-based predicates.  Default to the count-based ones;
    # asymmetric protocols override these directly.
    # ------------------------------------------------------------------
    def is_safe(self, config: FailureConfig) -> bool:
        """True when every run under ``config`` preserves agreement."""
        self._check_config(config)
        return self.is_safe_counts(config.num_crashed, config.num_byzantine)

    def is_live(self, config: FailureConfig) -> bool:
        """True when every run under ``config`` eventually commits all ops."""
        self._check_config(config)
        return self.is_live_counts(config.num_crashed, config.num_byzantine)

    def is_safe_and_live(self, config: FailureConfig) -> bool:
        return self.is_safe(config) and self.is_live(config)

    def _check_config(self, config: FailureConfig) -> None:
        if config.n != self._n:
            raise InvalidConfigurationError(
                f"configuration has {config.n} nodes but spec expects {self._n}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n})"


class SymmetricSpec(ProtocolSpec):
    """Convenience base for purely count-based protocol specs."""

    @property
    def symmetric(self) -> bool:
        return True


class AsymmetricSpec(ProtocolSpec):
    """Base for specs whose predicates inspect node identities.

    Subclasses must override :meth:`is_safe` and :meth:`is_live`; the
    count-based interface stays unavailable.
    """

    @property
    def symmetric(self) -> bool:
        return False

    @abstractmethod
    def is_safe(self, config: FailureConfig) -> bool:  # pragma: no cover - interface
        ...

    @abstractmethod
    def is_live(self, config: FailureConfig) -> bool:  # pragma: no cover - interface
        ...
