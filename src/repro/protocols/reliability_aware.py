"""Reliability-aware (pinned-quorum) Raft — the paper's §3 proposal.

"If we required quorums to include at least one reliable node (by
leveraging knowledge of fault curves), data durability would increase to
99.994%."  This module models that rule: a set of node indices is *pinned*
as reliable, and every persistence quorum must contain at least
``require_pinned`` of them.

Durability model (documented per DESIGN.md erratum notes): committed data
is lost when the window's failures can cover *some* valid persistence
quorum — the adversarial placement, since vanilla Raft gives no control
over where a quorum formed.  Pinning shrinks the set of valid quorums, so
covering one now requires killing pinned nodes too, which is exactly the
durability gain the paper quantifies.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.config import FailureConfig
from repro.errors import InvalidConfigurationError
from repro.protocols.base import AsymmetricSpec
from repro.protocols.raft import majority


class ReliabilityAwareRaftSpec(AsymmetricSpec):
    """Raft whose persistence quorums must include pinned reliable nodes.

    Parameters
    ----------
    n:
        Deployment size.
    pinned:
        Indices of the nodes designated reliable.
    require_pinned:
        Minimum number of pinned nodes every persistence quorum must
        contain (the paper's example uses 1).
    q_per / q_vc:
        Quorum sizes; default strict majority.
    placement:
        Which persistence quorums the durability audit considers:

        * ``"policy"`` (default) — the system forms quorums as exactly
          ``require_pinned`` pinned nodes plus unpinned fillers, so data is
          lost only when both pools lose enough members.  This is the model
          matching the paper's 99.994% figure.
        * ``"adversarial"`` — any quorum satisfying the pinning rule may
          have been used (e.g. extra pinned members); strictly more
          pessimistic.
    """

    name = "RA-Raft"

    def __init__(
        self,
        n: int,
        pinned: Iterable[int],
        *,
        require_pinned: int = 1,
        q_per: int | None = None,
        q_vc: int | None = None,
        placement: str = "policy",
    ):
        super().__init__(n)
        self.pinned = frozenset(pinned)
        if any(not 0 <= i < n for i in self.pinned):
            raise InvalidConfigurationError(f"pinned indices must lie in [0, {n})")
        self.require_pinned = require_pinned
        if not 0 <= require_pinned <= len(self.pinned):
            raise InvalidConfigurationError(
                f"require_pinned={require_pinned} exceeds pinned set of {len(self.pinned)}"
            )
        self.q_per = majority(n) if q_per is None else q_per
        self.q_vc = majority(n) if q_vc is None else q_vc
        for label, q in (("q_per", self.q_per), ("q_vc", self.q_vc)):
            if not 1 <= q <= n:
                raise InvalidConfigurationError(f"{label}={q} outside [1, {n}]")
        if self.require_pinned > self.q_per:
            raise InvalidConfigurationError(
                f"require_pinned={require_pinned} exceeds quorum size {self.q_per}"
            )
        if placement not in ("policy", "adversarial"):
            raise InvalidConfigurationError(
                f"placement must be 'policy' or 'adversarial', got {placement!r}"
            )
        self.placement = placement

    # ------------------------------------------------------------------
    # Safety: pinning only *restricts* the quorum set, so the structural
    # intersection argument of Thm 3.2 carries over unchanged.
    # ------------------------------------------------------------------
    def is_safe(self, config: FailureConfig) -> bool:
        self._check_config(config)
        structurally_safe = self.n < self.q_per + self.q_vc and self.n < 2 * self.q_vc
        return structurally_safe and config.num_byzantine == 0

    # ------------------------------------------------------------------
    # Liveness: a valid persistence quorum needs q_per correct nodes of
    # which at least require_pinned are pinned; view change needs q_vc
    # correct nodes (unrestricted).
    # ------------------------------------------------------------------
    def is_live(self, config: FailureConfig) -> bool:
        self._check_config(config)
        correct = config.correct_indices
        correct_pinned = len(correct & self.pinned)
        if correct_pinned < self.require_pinned:
            return False
        return len(correct) >= max(self.q_per, self.q_vc)

    # ------------------------------------------------------------------
    # Durability: can the failures cover some valid persistence quorum?
    # A valid quorum takes x >= require_pinned pinned nodes and
    # q_per - x unpinned ones; it is fully failed iff enough of each pool
    # failed.  Feasibility check over x.
    # ------------------------------------------------------------------
    def is_durable(self, config: FailureConfig) -> bool:
        self._check_config(config)
        failed = config.failed_indices
        failed_pinned = len(failed & self.pinned)
        failed_unpinned = len(failed) - failed_pinned
        unpinned_total = self.n - len(self.pinned)
        if self.placement == "policy":
            # Quorums hold exactly require_pinned pinned nodes plus
            # q_per - require_pinned unpinned fillers (when the unpinned
            # pool is big enough; overflow spills into pinned nodes).
            filler = min(self.q_per - self.require_pinned, unpinned_total)
            pinned_in_quorum = self.q_per - filler
            coverable = failed_pinned >= pinned_in_quorum and failed_unpinned >= filler
            return not coverable
        # Adversarial: any quorum with >= require_pinned pinned members may
        # have been used.  Pick x pinned members (x >= require_pinned, and
        # at least q_per - unpinned_total by pool size) and q_per - x
        # unpinned; coverable iff some feasible x is fully failed.
        x_low = max(self.require_pinned, self.q_per - failed_unpinned, self.q_per - unpinned_total)
        x_high = min(failed_pinned, self.q_per)
        return not x_low <= x_high

    def __repr__(self) -> str:
        return (
            f"ReliabilityAwareRaftSpec(n={self.n}, pinned={sorted(self.pinned)}, "
            f"require_pinned={self.require_pinned}, q_per={self.q_per}, q_vc={self.q_vc})"
        )


class ObliviousDurabilityRaftSpec(AsymmetricSpec):
    """Vanilla Raft viewed through the durability lens (baseline for E4).

    Identical to :class:`repro.protocols.raft.RaftSpec` for safety and
    liveness, but exposes :meth:`is_durable` with the adversarial-placement
    model so oblivious and pinned variants can be compared head-to-head.
    """

    name = "Raft-durability"

    def __init__(self, n: int, *, q_per: int | None = None, q_vc: int | None = None):
        super().__init__(n)
        self.q_per = majority(n) if q_per is None else q_per
        self.q_vc = majority(n) if q_vc is None else q_vc

    def is_safe(self, config: FailureConfig) -> bool:
        self._check_config(config)
        structurally_safe = self.n < self.q_per + self.q_vc and self.n < 2 * self.q_vc
        return structurally_safe and config.num_byzantine == 0

    def is_live(self, config: FailureConfig) -> bool:
        self._check_config(config)
        return config.num_correct >= max(self.q_per, self.q_vc)

    def is_durable(self, config: FailureConfig) -> bool:
        self._check_config(config)
        return config.num_failed < self.q_per
