"""Byzantine behaviour registry: names → runnable misbehaviour classes.

A fault plan names behaviours (``"double-vote"``, ``"equivocate"``, …);
this registry resolves a name against a protocol spec into the
:data:`repro.sim.cluster.NodeFactory` that builds the misbehaving node
with the spec's quorum parameters.  The built-ins wrap the
:mod:`repro.sim.pbft.byzantine` classes for :class:`~repro.protocols.pbft.PBFTSpec`
fleets; third-party protocol families register their own via
:func:`register_behaviour`, exactly as simulation node factories register
via :func:`repro.engine.backends.register_simulation_factory`.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable

from repro.errors import InvalidConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocols.base import ProtocolSpec
    from repro.sim.cluster import NodeFactory

#: (name, spec type, build) rows; later registrations take precedence and
#: subclasses are matched most-recently-registered-first.  The built-in
#: PBFT rows are appended lazily on first use so that importing
#: :mod:`repro.injection` (and therefore :mod:`repro.engine`) never pays
#: the discrete-event sim + PBFT stack import.
_BEHAVIOURS: list[tuple[str, type, Callable]] = []
_BUILTINS_LOADED = False
_BUILTINS_LOCK = threading.Lock()


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_LOCK:
        if _BUILTINS_LOADED:
            return
        # Append the rows before publishing the flag: a concurrent caller
        # either waits on the lock or sees the fully-populated registry.
        _BEHAVIOURS.extend(_builtin_behaviours())
        _BUILTINS_LOADED = True


def register_behaviour(
    name: str, spec_type: type, build: Callable[["ProtocolSpec"], "NodeFactory"]
) -> None:
    """Make behaviour ``name`` runnable for fleets of ``spec_type``.

    ``build(spec)`` must return a node factory whose nodes misbehave as
    advertised while honouring ``spec``'s quorum parameters.
    """
    if not name:
        raise InvalidConfigurationError("behaviour name must be non-empty")
    _ensure_builtins()
    _BEHAVIOURS.insert(0, (name, spec_type, build))


def registered_behaviours(spec: "ProtocolSpec | None" = None) -> tuple[str, ...]:
    """Behaviour names available (for ``spec``'s family when given)."""
    _ensure_builtins()
    names = {
        name
        for name, spec_type, _ in _BEHAVIOURS
        if spec is None or isinstance(spec, spec_type)
    }
    return tuple(sorted(names))


def supports_byzantine(spec: "ProtocolSpec") -> bool:
    """Whether any behaviour is registered for ``spec``'s family."""
    _ensure_builtins()
    return any(isinstance(spec, spec_type) for _, spec_type, _ in _BEHAVIOURS)


def behaviour_build(name: str, spec: "ProtocolSpec") -> Callable:
    """The *registered build callable* behind behaviour ``name`` for ``spec``.

    Unlike :func:`behaviour_factory` (which calls the build and returns a
    fresh factory closure), this returns the stable registered object —
    the identity campaign cache keys carry, so re-registering a behaviour
    naturally invalidates cached answers that used the old implementation.
    """
    _ensure_builtins()
    for entry_name, spec_type, build in _BEHAVIOURS:
        if entry_name == name and isinstance(spec, spec_type):
            return build
    return _raise_unknown(name, spec)


def behaviour_factory(name: str, spec: "ProtocolSpec") -> "NodeFactory":
    """Resolve behaviour ``name`` for ``spec`` into a node factory."""
    return behaviour_build(name, spec)(spec)


def _raise_unknown(name: str, spec: "ProtocolSpec"):
    available = registered_behaviours(spec)
    detail = (
        f"registered for {type(spec).__qualname__}: {list(available)}"
        if available
        else f"none registered for {type(spec).__qualname__} "
        "(built-ins cover PBFTSpec; repro.injection.register_behaviour() adds more)"
    )
    raise InvalidConfigurationError(
        f"unknown Byzantine behaviour {name!r}; {detail}"
    )


def _builtin_behaviours() -> list[tuple[str, type, Callable]]:
    """The built-in PBFT rows (returned, not registered — see _ensure_builtins)."""
    from repro.protocols.pbft import PBFTSpec

    def pbft_behaviour(cls):
        def build(spec):
            def make(node_id, n, scheduler, network, rng, trace):
                return cls(
                    node_id,
                    n,
                    scheduler,
                    network,
                    rng,
                    trace,
                    q_eq=spec.q_eq,
                    q_per=spec.q_per,
                    q_vc=spec.q_vc,
                    q_vc_t=spec.q_vc_t,
                )

            return make

        return build

    from repro.sim.pbft.byzantine import (
        DoubleVoter,
        EquivocatingDoubleVoter,
        EquivocatingPrimary,
        SilentByzantine,
    )

    return [
        ("double-vote", PBFTSpec, pbft_behaviour(DoubleVoter)),
        ("equivocate", PBFTSpec, pbft_behaviour(EquivocatingPrimary)),
        ("equivocate+double-vote", PBFTSpec, pbft_behaviour(EquivocatingDoubleVoter)),
        ("silent", PBFTSpec, pbft_behaviour(SilentByzantine)),
    ]
