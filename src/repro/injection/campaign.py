"""Fault-plan compilation and per-replica campaign execution.

:func:`compile_faults` turns a declarative :class:`~repro.injection.plan.FaultPlan`
into one replica's concrete :class:`CompiledFaults` — window outcomes,
crash/recovery schedule, Byzantine behaviour assignments and network
operations — drawing every stochastic choice from that replica's private
spawned stream.  :func:`run_replica` then executes the replica end to end
(build cluster, inject, drive the workload, audit) and returns the
verdict tuple the simulation backend aggregates.

**Stream contract.**  The default plan consumes the replica stream in the
exact order the pre-fault-plan backend did — one window-configuration
draw, then one crash-time uniform per sampled crash, then the cluster's
``spawn(n + 1)`` — so crash-only campaigns reproduce historical answers
bit-for-bit (pinned by ``tests/test_golden_injection.py``).  Plan
features only *append* draws (MTTR exponentials after each crash uniform,
event draws after the sampled schedule), and uniform draws and
``SeedSequence.spawn`` advance independent counters, so reordering one
never perturbs the other.

**Execution.**  The simulation backend fans replicas across workers and,
under a supervising :class:`~repro.engine.ExecutionPolicy`, through the
fault-tolerant runtime (:mod:`repro.engine.runtime`): a crashed or hung
shard of replicas retries on generators rebuilt from the same spawned
children — sound precisely because of the stream contract above — and
:func:`repro.engine.chaos.chaos_from_fault_plan` turns a
:class:`~repro.injection.plan.FaultPlan` loose on the runtime itself for
its self-tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.analysis.config import FailureConfig, FaultKind
from repro.errors import InvalidConfigurationError
from repro.injection.behaviours import behaviour_factory
from repro.injection.plan import DEFAULT_ADVERSARY, DEFAULT_PLAN, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.correlation import CorrelationModel
    from repro.faults.mixture import Fleet
    from repro.protocols.base import ProtocolSpec
    from repro.sim.cluster import Cluster, NodeFactory


#: One scheduled network operation: ``(kind, at, value, closing)`` where
#: kind is "partition" (value=groups), "heal" (value=None), "drop"
#: (value=probability or None for baseline) or "delay" (value=seconds).
#: ``closing`` marks ops that end a declared window (heals, restores); at
#: a shared boundary they are applied before the next window's opening op.
NetworkOp = tuple


@dataclass
class FaultSchedule:
    """Mutable build target the plan's events compile onto.

    Per-node downtime is a *union of intervals*: each cause contributes a
    ``[crash, recover)`` interval (``recover=None`` = down for good) and
    :meth:`outages` merges overlapping contributions — a node is down
    whenever any declared cause has it down, and two disjoint intervals
    (crash, recover, crash again later) schedule two separate outages.
    """

    n: int
    duration: float
    intervals: dict[int, list[tuple[float, float | None]]] = field(
        default_factory=dict
    )
    network_ops: list[NetworkOp] = field(default_factory=list)
    partition_windows: list[tuple[float, float]] = field(default_factory=list)

    def crash(self, node: int, at: float, *, recover_at: float | None = None) -> None:
        # Crashing exactly at t=0 races node start (see plan_from_curves).
        at = max(float(at), 1e-9)
        recover = None if recover_at is None else float(recover_at)
        self.intervals.setdefault(node, []).append((at, recover))

    def outages(self) -> tuple[tuple[int, float, float | None], ...]:
        """Merged ``(node, crash, recover)`` rows, node-major, time-sorted.

        Overlapping or touching intervals union (a repair mid-way through
        another cause's outage never revives the node); disjoint ones stay
        separate outages.
        """
        rows: list[tuple[int, float, float | None]] = []
        for node in sorted(self.intervals):
            # Terminal intervals (recover=None) sort as infinite recoveries;
            # plain sorted() would compare None with float and raise.
            spans = sorted(
                self.intervals[node],
                key=lambda span: (
                    span[0],
                    float("inf") if span[1] is None else span[1],
                ),
            )
            start, end = spans[0]
            for next_start, next_end in spans[1:]:
                if end is None or next_start <= end:
                    if end is not None:
                        end = None if next_end is None else max(end, next_end)
                else:
                    rows.append((node, start, end))
                    start, end = next_start, next_end
            rows.append((node, start, end))
        return tuple(rows)

    def partition(self, groups, at: float, heal_at: float) -> None:
        self.network_ops.append(("partition", float(at), groups, False))
        if heal_at < self.duration:
            self.network_ops.append(("heal", float(heal_at), None, True))
        self.partition_windows.append((float(at), float(heal_at)))

    def network_op(self, kind: str, at: float, value, *, closing: bool = False) -> None:
        self.network_ops.append((kind, float(at), value, closing))


@dataclass(frozen=True)
class CompiledFaults:
    """One replica's concrete fault realisation.

    ``config`` is the window-outcome view the §3 predicates and the trace
    audit consume: every node the schedule ever crashes is CRASH (even if
    it later recovers — it was not correct for the whole run) and every
    adversary node is BYZANTINE.  ``outages`` are merged
    ``(node, crash, recover)`` downtime intervals (``recover=None`` =
    terminal); ``behaviours`` maps Byzantine node ids to registry
    behaviour names.
    """

    config: FailureConfig
    outages: tuple[tuple[int, float, float | None], ...]
    behaviours: dict[int, str]
    network_ops: tuple[NetworkOp, ...]
    partition_windows: tuple[tuple[float, float], ...]

    def crashed_nodes(self) -> frozenset[int]:
        return frozenset(node for node, _, _ in self.outages)

    def apply(self, cluster: "Cluster") -> None:
        """Schedule the compiled outages on a cluster.

        Crashes first, then recoveries, node-major — the same application
        pattern as :meth:`repro.sim.failures.InjectionPlan.apply`, so the
        default plan schedules its events in the historical order.
        """
        for node, crash_time, _ in self.outages:
            cluster.crash_at(node, crash_time)
        for node, _, recover_time in self.outages:
            if recover_time is not None:
                cluster.recover_at(node, recover_time)

    def apply_network(self, cluster: "Cluster") -> None:
        """Schedule the compiled partition/heal and burst operations.

        Ops are applied time-sorted with window-*closing* ops (heals,
        baseline restores) ahead of same-instant openers: the scheduler
        runs equal-time events in insertion order, so back-to-back windows
        — one healing at the exact instant the next starts, in any
        declaration order — always end up with the new window in force.
        """
        for op in sorted(self.network_ops, key=lambda op: (op[1], not op[3])):
            kind = op[0]
            if kind == "partition":
                cluster.partition_at(op[2], op[1])
            elif kind == "heal":
                cluster.heal_partition_at(op[1])
            elif kind == "drop":
                cluster.set_drop_probability_at(op[2], op[1])
            elif kind == "delay":
                cluster.set_extra_delay_at(op[2], op[1])
            else:  # pragma: no cover - schedule() only emits the four kinds
                raise InvalidConfigurationError(f"unknown network op {kind!r}")


def _sampled_config(
    fleet: "Fleet",
    correlation: "CorrelationModel | None",
    failure_kind: FaultKind,
    rng: np.random.Generator,
) -> FailureConfig:
    """Draw one window configuration — correlated when the model is given."""
    from repro.analysis.montecarlo import sample_configuration

    if correlation is None:
        return sample_configuration(fleet, rng)
    failed = correlation.sample(rng)
    return FailureConfig(
        tuple(failure_kind if bool(hit) else FaultKind.CORRECT for hit in failed)
    )


def compile_faults(
    plan: FaultPlan | None,
    *,
    fleet: "Fleet",
    duration: float,
    crash_window: tuple[float, float],
    correlation: "CorrelationModel | None" = None,
    failure_kind: FaultKind = FaultKind.CRASH,
    rng: np.random.Generator,
) -> CompiledFaults:
    """Compile ``plan`` for one replica, drawing from its private stream."""
    from repro.sim.failures import plan_from_config

    if plan is None:
        plan = DEFAULT_PLAN
    n = fleet.n
    plan.validate(n, duration)

    # 1. Window outcomes (fleet trinomial, or the correlation model).
    if plan.sample_faults:
        config = _sampled_config(fleet, correlation, failure_kind, rng)
    else:
        config = FailureConfig.all_correct(n)

    # 2. Declared adversary nodes are Byzantine regardless of the draw
    #    (and therefore never fail-stop via the sampled schedule).
    adversary = plan.adversary
    if adversary is not None:
        for node in adversary.nodes:
            if config[node] is not FaultKind.BYZANTINE:
                config = config.with_kind(node, FaultKind.BYZANTINE)

    # 3. Sampled crash-stop (or crash-recovery) schedule.
    injection = plan_from_config(
        config,
        duration=duration,
        crash_window=crash_window,
        mean_time_to_repair=plan.mean_time_to_repair,
        seed=rng,
    )
    schedule = FaultSchedule(n=n, duration=duration)
    for node, at in injection.crash_times.items():
        schedule.crash(node, at, recover_at=injection.recovery_times.get(node))

    # 4. Plan events, in declaration order.
    for event in plan.events:
        event.schedule(schedule, rng)

    # 5. Any node the events crashed was not correct for the window.
    for node in schedule.intervals:
        if config[node] is FaultKind.CORRECT:
            config = config.with_kind(node, FaultKind.CRASH)

    mix = adversary if adversary is not None else DEFAULT_ADVERSARY
    behaviours = {
        node: mix.behaviour_for(node) for node in sorted(config.byzantine_indices)
    }

    return CompiledFaults(
        config=config,
        outages=schedule.outages(),
        behaviours=behaviours,
        network_ops=tuple(schedule.network_ops),
        partition_windows=tuple(schedule.partition_windows),
    )


@dataclass(frozen=True)
class ReplicaVerdict:
    """Audited outcome of one replica run (the backend's tally unit)."""

    unsafe: bool
    stalled: bool
    predicate_mismatch: bool
    partition_era_only: bool


def run_replica(
    spec: "ProtocolSpec",
    fleet: "Fleet",
    *,
    node_factory: "NodeFactory",
    duration: float,
    commands: Sequence[tuple[object, float]],
    crash_window: tuple[float, float],
    rng: np.random.Generator,
    plan: FaultPlan | None = None,
    correlation: "CorrelationModel | None" = None,
    failure_kind: FaultKind = FaultKind.CRASH,
) -> ReplicaVerdict:
    """One seeded execution: compile faults, run the cluster, audit the trace.

    Everything stochastic draws from ``rng`` — the replica's private
    spawned stream — so the verdict depends only on that stream.
    ``commands`` is the ``(value, submit_time)`` workload schedule.
    """
    from repro.sim.checker import audit_run
    from repro.sim.cluster import Cluster

    compiled = compile_faults(
        plan,
        fleet=fleet,
        duration=duration,
        crash_window=crash_window,
        correlation=correlation,
        failure_kind=failure_kind,
        rng=rng,
    )
    overrides = {
        node: behaviour_factory(name, spec)
        for node, name in compiled.behaviours.items()
    }
    cluster = Cluster(
        fleet.n, node_factory, seed=rng, node_overrides=overrides or None
    )
    compiled.apply(cluster)
    compiled.apply_network(cluster)
    cluster.start()
    for value, at in commands:
        cluster.submit(value, at=at)
    cluster.run_until(duration)

    config = compiled.config
    correct = sorted(set(range(fleet.n)) - set(config.failed_indices))
    verdict = audit_run(
        cluster.trace,
        [value for value, _ in commands],
        correct_nodes=correct,
        partition_windows=compiled.partition_windows,
        submit_times={value: at for value, at in commands},
    )
    predicted_live = spec.is_live(config)
    missing = verdict.liveness.missing
    partition_era = verdict.liveness.partition_era
    return ReplicaVerdict(
        unsafe=not verdict.safe,
        stalled=not verdict.live,
        predicate_mismatch=verdict.live != predicted_live,
        partition_era_only=bool(missing) and set(missing) == set(partition_era),
    )
