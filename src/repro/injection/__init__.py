"""Declarative fault injection: the adversary & outage layer of campaigns.

The paper's validation loop only closes if protocol executions suffer the
*same* fault universe the analysis layer reasons about — crash,
crash-recovery, correlated bursts, partitions and Byzantine behaviour.
This package packages that universe as one pluggable subsystem:

* :class:`FaultPlan` — a frozen, JSON-embeddable specification: typed
  :class:`FaultEvent` rows (:class:`CrashStop`, :class:`PartitionEvent`,
  :class:`LossBurst`, :class:`DelayBurst`, :class:`CorrelatedBurst`) plus
  an :class:`Adversary` mix for Byzantine outcomes;
* :func:`compile_faults` — per-replica compilation from
  ``SeedSequence.spawn`` streams (campaign answers stay jobs-invariant);
* :func:`run_replica` — the full compile → inject → execute → audit
  pipeline the engine's simulation backend fans across workers;
* :func:`register_behaviour` — the registry resolving behaviour names
  (``"double-vote"``, ``"equivocate"``, ``"silent"``, …) into runnable
  misbehaving node classes per protocol family.

Fault plans ride inside :class:`repro.engine.SimulationQuery` via its
``faults`` field, so one JSON query file can describe an entire outage or
attack campaign.
"""

from repro.injection.behaviours import (
    behaviour_build,
    behaviour_factory,
    register_behaviour,
    registered_behaviours,
    supports_byzantine,
)
from repro.injection.campaign import (
    CompiledFaults,
    FaultSchedule,
    ReplicaVerdict,
    compile_faults,
    run_replica,
)
from repro.injection.plan import (
    DEFAULT_PLAN,
    Adversary,
    CorrelatedBurst,
    CrashStop,
    DelayBurst,
    FaultEvent,
    FaultPlan,
    LossBurst,
    PartitionEvent,
    fault_event_from_dict,
    register_fault_event,
    registered_fault_events,
)

__all__ = [
    "FaultPlan",
    "FaultEvent",
    "CrashStop",
    "PartitionEvent",
    "LossBurst",
    "DelayBurst",
    "CorrelatedBurst",
    "Adversary",
    "DEFAULT_PLAN",
    "register_fault_event",
    "registered_fault_events",
    "fault_event_from_dict",
    "register_behaviour",
    "registered_behaviours",
    "behaviour_factory",
    "behaviour_build",
    "supports_byzantine",
    "compile_faults",
    "run_replica",
    "CompiledFaults",
    "FaultSchedule",
    "ReplicaVerdict",
]
