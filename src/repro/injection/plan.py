"""Declarative fault plans: typed events + adversary mix, JSON-embeddable.

The simulator's historical injector (:mod:`repro.sim.failures`) answered
one question shape — window-sampled fail-stops.  A :class:`FaultPlan` is
the declarative superset: an ordered tuple of typed :class:`FaultEvent`
rows (crash-stop, crash-recovery, partition/heal, delay/loss bursts,
correlated bursts) plus an :class:`Adversary` section mapping Byzantine
outcomes to registered misbehaviour classes.  Plans are frozen values
with dict/JSON codecs, so they embed directly in scenario/query files and
hash into the engine's campaign cache keys.

Plans are *specifications*, not schedules: anything stochastic (sampled
window outcomes, MTTR repair delays, burst lethality) is drawn at
compile time from the per-replica spawned stream — see
:func:`repro.injection.campaign.compile_faults` — which is what keeps
campaign answers invariant to worker counts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import ClassVar, Mapping, Type

from repro.errors import InvalidConfigurationError


def jsonable_value(value):
    """JSON-ready form of one codec field value.

    The single helper behind every fault-plan and query codec: objects
    exposing ``to_dict`` serialize through it, tuples become lists
    (recursively — partition groups nest), everything else passes through.
    """
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(value, tuple):
        return [jsonable_value(item) for item in value]
    return value


def _freeze(value):
    """Canonical hashable form of a codec payload (for cache keys)."""
    if isinstance(value, Mapping):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value


def _fields_to_dict(obj) -> dict:
    """Serialize a frozen codec dataclass, omitting default-valued fields."""
    data: dict = {}
    for spec in fields(obj):
        value = getattr(obj, spec.name)
        if value != spec.default:
            data[spec.name] = jsonable_value(value)
    return data


def _check_unknown_fields(label: str, payload: Mapping, known: set[str]) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        raise InvalidConfigurationError(
            f"unknown {label} fields {unknown}; expected a subset of {sorted(known)}"
        )


# ---------------------------------------------------------------------------
# Typed fault events
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """Base class: one declarative fault with a ``kind`` codec tag.

    Subclasses add their parameters as dataclass fields (round-tripped by
    :meth:`to_dict` / :func:`fault_event_from_dict` automatically) and
    implement :meth:`validate` (bounds against the deployment) plus
    :meth:`schedule` (compilation onto a :class:`FaultSchedule`, drawing
    any randomness from the replica's stream).
    """

    #: Codec tag; also the ``"kind"`` field of the dict form.
    kind: ClassVar[str] = ""

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        return {"kind": self.kind, **_fields_to_dict(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultEvent":
        payload = dict(data)
        payload.pop("kind", None)
        _check_unknown_fields(
            f"{cls.kind} event", payload, {spec.name for spec in fields(cls)}
        )
        return cls(**cls._coerce(payload))

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        """Hook for subclasses to coerce JSON primitives into field types."""
        return payload

    # -- compilation -------------------------------------------------------
    def validate(self, n: int, duration: float) -> None:
        """Check the event fits an ``n``-node run of ``duration`` seconds."""

    def schedule(self, schedule, rng) -> None:  # pragma: no cover - interface
        """Compile onto a :class:`FaultSchedule` using the replica stream."""
        raise NotImplementedError


_EVENT_KINDS: dict[str, Type[FaultEvent]] = {}


def register_fault_event(cls: Type[FaultEvent]) -> Type[FaultEvent]:
    """Class decorator: make ``cls`` addressable by its :attr:`kind`.

    Feeds :func:`fault_event_from_dict` (and therefore JSON fault-plan
    sections).  Idempotent per kind — last registration wins.
    """
    if not cls.kind:
        raise InvalidConfigurationError(f"{cls.__name__} must define a non-empty kind")
    _EVENT_KINDS[cls.kind] = cls
    return cls


def registered_fault_events() -> tuple[str, ...]:
    return tuple(sorted(_EVENT_KINDS))


def fault_event_from_dict(data: Mapping) -> FaultEvent:
    """Rebuild any registered fault event from its dict form."""
    if not isinstance(data, Mapping):
        raise InvalidConfigurationError(
            f"fault event must be an object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    if kind is None:
        raise InvalidConfigurationError("fault event dict needs a 'kind' field")
    cls = _EVENT_KINDS.get(str(kind))
    if cls is None:
        raise InvalidConfigurationError(
            f"unknown fault event kind {kind!r}; registered: {sorted(_EVENT_KINDS)}"
        )
    return cls.from_dict(data)


def _check_node(node: int, n: int) -> None:
    if not 0 <= node < n:
        raise InvalidConfigurationError(
            f"fault event references node {node} outside fleet of {n}"
        )


def _check_time(name: str, value: float, duration: float) -> None:
    if not 0.0 <= value < duration:
        raise InvalidConfigurationError(
            f"fault event {name}={value:g} outside run [0, {duration:g})"
        )


@register_fault_event
@dataclass(frozen=True)
class CrashStop(FaultEvent):
    """Fail-stop one node at ``at``; optionally recover it.

    ``recover_at`` schedules a deterministic repair; ``mean_time_to_repair``
    instead draws an exponential repair delay from the replica stream
    (crash-recovery, the MTTR model of
    :func:`repro.sim.failures.plan_from_curves`).  Repairs landing past the
    run's duration are dropped — the node stays down, matching the
    analysis model where an unrepaired window failure is terminal.
    """

    kind: ClassVar[str] = "crash"

    node: int = 0
    at: float = 0.0
    recover_at: float | None = None
    mean_time_to_repair: float | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise InvalidConfigurationError(f"node must be non-negative, got {self.node}")
        if self.at < 0:
            raise InvalidConfigurationError(f"crash time must be non-negative, got {self.at}")
        if self.recover_at is not None and self.mean_time_to_repair is not None:
            raise InvalidConfigurationError(
                "crash event takes recover_at or mean_time_to_repair, not both"
            )
        if self.recover_at is not None and self.recover_at <= self.at:
            raise InvalidConfigurationError(
                f"recovery at {self.recover_at:g} precedes the crash at {self.at:g}"
            )
        if self.mean_time_to_repair is not None and self.mean_time_to_repair <= 0:
            raise InvalidConfigurationError("mean_time_to_repair must be positive")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "node" in payload:
            payload["node"] = int(payload["node"])
        for name in ("at", "recover_at", "mean_time_to_repair"):
            if payload.get(name) is not None:
                payload[name] = float(payload[name])
        return payload

    def validate(self, n: int, duration: float) -> None:
        _check_node(self.node, n)
        _check_time("at", self.at, duration)

    def schedule(self, schedule, rng) -> None:
        from repro.sim.failures import draw_repair_time

        recover = self.recover_at
        if self.mean_time_to_repair is not None:
            recover = draw_repair_time(
                self.at, self.mean_time_to_repair, schedule.duration, rng
            )
        elif recover is not None and recover >= schedule.duration:
            recover = None
        schedule.crash(self.node, self.at, recover_at=recover)


@register_fault_event
@dataclass(frozen=True)
class PartitionEvent(FaultEvent):
    """Split the network into ``groups`` at ``at``; heal at ``heal_at``.

    ``heal_at=None`` leaves the partition in place to the end of the run.
    Nodes outside every group are isolated from grouped nodes (the
    :meth:`repro.sim.network.Network.set_partition` semantics).
    """

    kind: ClassVar[str] = "partition"

    groups: tuple[tuple[int, ...], ...] = ()
    at: float = 0.0
    heal_at: float | None = None

    def __post_init__(self) -> None:
        groups = tuple(tuple(int(node) for node in group) for group in self.groups)
        object.__setattr__(self, "groups", groups)
        if not groups:
            raise InvalidConfigurationError("partition event needs at least one group")
        seen: set[int] = set()
        for group in groups:
            if set(group) & seen:
                raise InvalidConfigurationError("partition groups must be disjoint")
            seen |= set(group)
        if self.at < 0:
            raise InvalidConfigurationError("partition time must be non-negative")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise InvalidConfigurationError(
                f"heal at {self.heal_at:g} precedes the partition at {self.at:g}"
            )

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "groups" in payload:
            payload["groups"] = tuple(tuple(g) for g in payload["groups"])
        for name in ("at", "heal_at"):
            if payload.get(name) is not None:
                payload[name] = float(payload[name])
        return payload

    def validate(self, n: int, duration: float) -> None:
        for group in self.groups:
            for node in group:
                _check_node(node, n)
        _check_time("at", self.at, duration)

    def schedule(self, schedule, rng) -> None:
        heal = self.heal_at if self.heal_at is not None else schedule.duration
        schedule.partition(self.groups, self.at, min(heal, schedule.duration))


@register_fault_event
@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Raise the network's message-drop probability to ``drop_probability``
    over ``[at, until)``, then restore the baseline."""

    kind: ClassVar[str] = "loss-burst"

    at: float = 0.0
    until: float = 0.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.until <= self.at:
            raise InvalidConfigurationError(
                f"loss burst needs 0 <= at < until, got [{self.at:g}, {self.until:g})"
            )
        if not 0.0 <= self.drop_probability < 1.0:
            raise InvalidConfigurationError("drop_probability must be in [0, 1)")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        for name in ("at", "until", "drop_probability"):
            if name in payload:
                payload[name] = float(payload[name])
        return payload

    def validate(self, n: int, duration: float) -> None:
        _check_time("at", self.at, duration)

    def schedule(self, schedule, rng) -> None:
        schedule.network_op("drop", self.at, self.drop_probability)
        if self.until < schedule.duration:
            # None = restore the baseline; closing ops yield to any burst
            # opening at the same instant.
            schedule.network_op("drop", self.until, None, closing=True)


@register_fault_event
@dataclass(frozen=True)
class DelayBurst(FaultEvent):
    """Add ``extra_delay`` seconds to every message over ``[at, until)``
    (a congestion/gray-failure burst), then restore the baseline."""

    kind: ClassVar[str] = "delay-burst"

    at: float = 0.0
    until: float = 0.0
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0 or self.until <= self.at:
            raise InvalidConfigurationError(
                f"delay burst needs 0 <= at < until, got [{self.at:g}, {self.until:g})"
            )
        if self.extra_delay < 0:
            raise InvalidConfigurationError("extra_delay must be non-negative")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        for name in ("at", "until", "extra_delay"):
            if name in payload:
                payload[name] = float(payload[name])
        return payload

    def validate(self, n: int, duration: float) -> None:
        _check_time("at", self.at, duration)

    def schedule(self, schedule, rng) -> None:
        schedule.network_op("delay", self.at, self.extra_delay)
        if self.until < schedule.duration:
            schedule.network_op("delay", self.until, 0.0, closing=True)


@register_fault_event
@dataclass(frozen=True)
class CorrelatedBurst(FaultEvent):
    """A correlated group outage at ``at``, drawn per replica via
    :class:`repro.faults.correlation.CommonShockModel`.

    With probability ``probability`` the burst fires, killing each member
    independently with probability ``lethality`` (the Marshall–Olkin shock
    of §2).  ``mean_time_to_repair`` draws an exponential repair delay per
    victim; without it victims stay down.  The draws come from the replica
    stream, so which replicas suffer the burst is seeded and
    jobs-invariant.
    """

    kind: ClassVar[str] = "correlated-burst"

    members: tuple[int, ...] = ()
    at: float = 0.0
    probability: float = 1.0
    lethality: float = 1.0
    mean_time_to_repair: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "members", tuple(int(m) for m in self.members))
        if not self.members:
            raise InvalidConfigurationError("correlated burst needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise InvalidConfigurationError("correlated burst has duplicate members")
        if self.at < 0:
            raise InvalidConfigurationError("burst time must be non-negative")
        if not 0.0 <= self.probability <= 1.0:
            raise InvalidConfigurationError("burst probability must be in [0, 1]")
        if not 0.0 <= self.lethality <= 1.0:
            raise InvalidConfigurationError("burst lethality must be in [0, 1]")
        if self.mean_time_to_repair is not None and self.mean_time_to_repair <= 0:
            raise InvalidConfigurationError("mean_time_to_repair must be positive")

    @classmethod
    def _coerce(cls, payload: dict) -> dict:
        if "members" in payload:
            payload["members"] = tuple(payload["members"])
        for name in ("at", "probability", "lethality", "mean_time_to_repair"):
            if payload.get(name) is not None:
                payload[name] = float(payload[name])
        return payload

    def validate(self, n: int, duration: float) -> None:
        for node in self.members:
            _check_node(node, n)
        _check_time("at", self.at, duration)

    def _shock_model(self, n: int):
        """The burst's :class:`CommonShockModel`, memoised per fleet size.

        ``schedule`` runs once per replica; the model depends only on the
        event's frozen fields and ``n``, so build it once (the same
        frozen-dataclass memo pattern as :meth:`FaultPlan.validate`).
        """
        cache = getattr(self, "_models", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_models", cache)
        model = cache.get(n)
        if model is None:
            from repro.faults.correlation import CommonShockModel, ShockGroup
            from repro.faults.mixture import uniform_fleet

            shock = ShockGroup(
                self.members, self.probability, self.lethality, name="burst"
            )
            model = CommonShockModel(uniform_fleet(n, 0.0), (shock,))
            cache[n] = model
        return model

    def schedule(self, schedule, rng) -> None:
        import numpy as np

        from repro.sim.failures import draw_repair_time

        victims = np.flatnonzero(self._shock_model(schedule.n).sample(rng))
        for node in victims:
            recover = None
            if self.mean_time_to_repair is not None:
                recover = draw_repair_time(
                    self.at, self.mean_time_to_repair, schedule.duration, rng
                )
            schedule.crash(int(node), self.at, recover_at=recover)


# ---------------------------------------------------------------------------
# Adversary mix
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Adversary:
    """How Byzantine outcomes become running misbehaviour classes.

    ``nodes`` pins an always-Byzantine set (on top of any window outcomes
    sampled from the fleet/correlation model); behaviours are names from
    the :mod:`repro.injection.behaviours` registry.  Node 0 — the initial
    PBFT primary — runs ``primary_behaviour`` when Byzantine, every other
    Byzantine node runs ``behaviour`` (the
    :func:`repro.sim.pbft.byzantine.mixed_pbft_factory` convention).  The
    defaults compose the paper's Theorem 3.1 attack: an equivocating,
    double-voting primary with double-voting accomplices.
    """

    nodes: tuple[int, ...] = ()
    behaviour: str = "double-vote"
    primary_behaviour: str = "equivocate+double-vote"

    def __post_init__(self) -> None:
        nodes = tuple(int(node) for node in self.nodes)
        object.__setattr__(self, "nodes", nodes)
        if len(set(nodes)) != len(nodes):
            raise InvalidConfigurationError("adversary has duplicate nodes")
        if any(node < 0 for node in nodes):
            raise InvalidConfigurationError("adversary nodes must be non-negative")
        if not self.behaviour or not self.primary_behaviour:
            raise InvalidConfigurationError("adversary behaviours must be non-empty")

    def behaviour_for(self, node: int) -> str:
        return self.primary_behaviour if node == 0 else self.behaviour

    def to_dict(self) -> dict:
        return _fields_to_dict(self)

    @classmethod
    def from_dict(cls, data: Mapping) -> "Adversary":
        payload = dict(data)
        _check_unknown_fields(
            "adversary", payload, {spec.name for spec in fields(cls)}
        )
        if "nodes" in payload:
            payload["nodes"] = tuple(payload["nodes"])
        return cls(**payload)


#: Default behaviour mix for fleets that sample Byzantine outcomes without
#: declaring an adversary section.
DEFAULT_ADVERSARY = Adversary()


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """One replica-independent fault specification for a campaign.

    ``sample_faults`` keeps the historical per-replica window draw (from
    the scenario's fleet, or its correlation model when present);
    ``mean_time_to_repair`` turns those sampled crash-stops into
    crash-recoveries (exponential repair, sim-seconds).  ``events`` add
    deterministic or stochastic scheduled faults on top, in order, and
    ``adversary`` maps Byzantine outcomes to behaviour classes.  The
    default plan — no events, no adversary, sampling on — compiles to the
    exact pre-fault-plan campaign behaviour, stream draw for stream draw.
    """

    events: tuple[FaultEvent, ...] = ()
    adversary: Adversary | None = None
    sample_faults: bool = True
    mean_time_to_repair: float | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        if not all(isinstance(event, FaultEvent) for event in self.events):
            raise InvalidConfigurationError("plan events must be FaultEvent instances")
        if self.adversary is not None and not isinstance(self.adversary, Adversary):
            raise InvalidConfigurationError("adversary must be an Adversary instance")
        if self.mean_time_to_repair is not None and self.mean_time_to_repair <= 0:
            raise InvalidConfigurationError("mean_time_to_repair must be positive")

    @property
    def declares_byzantine(self) -> bool:
        return self.adversary is not None and bool(self.adversary.nodes)

    def validate(self, n: int, duration: float) -> None:
        """Check every event (and the adversary set) fits the deployment.

        Memoised per ``(n, duration)``: the plan is frozen, so a campaign
        that validated at query-parse time costs nothing per replica.
        """
        memo = getattr(self, "_validated", None)
        if memo is None:
            memo = set()
            object.__setattr__(self, "_validated", memo)
        if (n, duration) in memo:
            return
        for event in self.events:
            event.validate(n, duration)
        if self.adversary is not None:
            for node in self.adversary.nodes:
                _check_node(node, n)
        # The network holds one partition, one drop probability and one
        # extra delay at a time: a second same-kind window opening before
        # the first closes would silently overwrite it, and the first
        # window's close would restore the baseline mid-burst (or heal the
        # standing partition early), under-reporting the declared
        # degradation.  Reject the overlap at parse time.
        def window(event) -> tuple[float, float]:
            if isinstance(event, PartitionEvent):
                return (event.at, duration if event.heal_at is None else event.heal_at)
            return (event.at, event.until)

        for cls, what, advice in (
            (PartitionEvent, "partition", "heal the first before declaring the next"),
            (LossBurst, "loss-burst", "end the first burst before the next starts"),
            (DelayBurst, "delay-burst", "end the first burst before the next starts"),
        ):
            windows = sorted(
                window(event) for event in self.events if isinstance(event, cls)
            )
            for (start_a, end_a), (start_b, _) in zip(windows, windows[1:]):
                if start_b < end_a:
                    raise InvalidConfigurationError(
                        f"{what} events overlap: [{start_a:g}, {end_a:g}) and one "
                        f"starting at {start_b:g} — the network holds one "
                        f"{what} at a time; {advice}"
                    )
        memo.add((n, duration))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        data: dict = {}
        if self.events:
            data["events"] = [event.to_dict() for event in self.events]
        if self.adversary is not None:
            data["adversary"] = self.adversary.to_dict()
        if not self.sample_faults:
            data["sample_faults"] = False
        if self.mean_time_to_repair is not None:
            data["mean_time_to_repair"] = self.mean_time_to_repair
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        payload = dict(data)
        _check_unknown_fields(
            "fault-plan",
            payload,
            {"events", "adversary", "sample_faults", "mean_time_to_repair"},
        )
        rows = payload.get("events", ())
        if isinstance(rows, (Mapping, str)) or not hasattr(rows, "__iter__"):
            raise InvalidConfigurationError(
                "'events' must be a list of event objects "
                "(a single event still needs the enclosing list)"
            )
        events = tuple(fault_event_from_dict(row) for row in rows)
        adversary_data = payload.get("adversary")
        adversary = None if adversary_data is None else Adversary.from_dict(adversary_data)
        mttr = payload.get("mean_time_to_repair")
        sample_faults = payload.get("sample_faults", True)
        if not isinstance(sample_faults, bool):
            # bool("false") is True: coercing strings would silently run the
            # sampling the user disabled — reject like any malformed field.
            raise InvalidConfigurationError(
                f"sample_faults must be a JSON boolean, got {sample_faults!r}"
            )
        return cls(
            events=events,
            adversary=adversary,
            sample_faults=sample_faults,
            mean_time_to_repair=None if mttr is None else float(mttr),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, Mapping):
            raise InvalidConfigurationError("fault-plan JSON must be an object")
        return cls.from_dict(data)

    def cache_key(self) -> tuple:
        """Canonical hashable identity (campaign memo-cache component).

        Built from the codec form *plus the concrete event classes*: two
        plans that serialize identically share cache entries only when
        their events are the same implementations, so shadowing a kind via
        :func:`register_fault_event` never serves answers computed with
        the replaced event class (the re-registration invariant the
        behaviour registry and the engine's estimator keys uphold).
        """
        return (
            _freeze(self.to_dict()),
            tuple(type(event) for event in self.events),
        )


#: The plan a ``SimulationQuery`` without a ``faults`` section runs.
DEFAULT_PLAN = FaultPlan()
